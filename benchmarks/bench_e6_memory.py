"""E6 — Claims 3.5/3.11: local memory O(n^δ + B) and global memory O(nB + m).

For each workload the full layering pipeline runs on a simulated cluster with
δ = 0.5; the peak per-machine and global memory observed by the simulator are
recorded against the paper's bounds (with explicit constants).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import record_row
from repro.analysis.validators import validate_global_memory, validate_local_memory
from repro.core.full_assignment import complete_layer_assignment
from repro.experiments.registry import get_experiment
from repro.graph.arboricity import degeneracy
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig

SPEC = get_experiment("E6")
DELTA = 0.5


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e6_memory(benchmark, workload):
    graph = workload.materialize()
    k = max(2, 2 * degeneracy(graph))

    def run():
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=DELTA))
        cluster.load_graph(graph)
        complete_layer_assignment(graph, k=k, delta=DELTA, cluster=cluster)
        return cluster

    cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    budget = max(int(math.ceil(4 * graph.num_vertices**DELTA)), 64)
    local = validate_local_memory(cluster.stats, graph.num_vertices, budget=budget, delta=DELTA)
    global_report = validate_global_memory(
        cluster.stats, graph.num_vertices, graph.num_edges, budget=budget
    )
    record_row(
        "E6 — " + SPEC.claim,
        SPEC.columns,
        {
            "workload": workload.describe(),
            "n": graph.num_vertices,
            "S": cluster.words_per_machine,
            "peak_machine_words": cluster.stats.peak_machine_memory_words,
            "local_bound": local.allowed,
            "peak_global_words": cluster.stats.peak_global_memory_words,
            "global_bound": global_report.allowed,
        },
    )
    assert local.passed
    assert global_report.passed
