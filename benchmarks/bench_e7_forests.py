"""E7 — Forests (λ = 1): the general pipeline vs the forest-specialised baseline.

[GLM+23] orient forests with outdegree ≤ 2 and 3-color them; the paper's
general algorithm is allowed an extra O(log log n) factor.  This experiment
records both algorithms' outdegree, palette and simulated rounds on random
forests of increasing size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.baselines.forest import forest_orient_and_color
from repro.core.coloring import color
from repro.core.orientation import orient
from repro.experiments.registry import get_experiment

SPEC = get_experiment("E7")


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e7_forests(benchmark, workload):
    graph = workload.materialize()

    def run():
        general_orientation = orient(graph, seed=0)
        general_coloring = color(graph, seed=0)
        specialist = forest_orient_and_color(graph)
        return general_orientation, general_coloring, specialist

    general_orientation, general_coloring, specialist = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    record_row(
        "E7 — " + SPEC.claim,
        SPEC.columns,
        {
            "workload": workload.describe(),
            "n": graph.num_vertices,
            "outdeg_general": general_orientation.max_outdegree,
            "outdeg_forest": specialist.max_outdegree,
            "colors_general": general_coloring.num_colors,
            "colors_forest": specialist.num_colors,
            "rounds_general": general_orientation.rounds + general_coloring.rounds,
            "rounds_forest": specialist.rounds,
        },
    )
    assert specialist.max_outdegree <= 2
    assert specialist.num_colors <= 3
    assert general_coloring.coloring.is_proper()
    # The general algorithm stays within its O(λ log log n) budget on forests.
    assert general_orientation.max_outdegree <= 8
