"""A1 — ablation of the design choices DESIGN.md calls out.

Not a paper table; this benchmark quantifies the knobs of the reproduction so
a user can see what each piece buys:

* **pruning parameter k** — Claim 3.12 ties the layer out-degree bound to
  ``(s+1)·k``; sweeping k shows the measured out-degree and assigned fraction
  moving with it.
* **tree-view budget B** — Lemma 3.9's hypothesis (``NumPathsIn ≤ √B``) means
  a larger budget assigns more vertices per call of Algorithm 4.
* **Stage-1 peeling of Lemma 3.15** — disabling the initial peeling forces the
  exponentiation machinery to do all the work, costing more rounds for the
  same quality (the reason the paper peels first).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.core.full_assignment import complete_layer_assignment, iterated_partial_assignment
from repro.core.parameters import Parameters
from repro.core.partial_assignment import partial_layer_assignment
from repro.graph import generators
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig

GRAPH = generators.chung_lu_power_law(1024, exponent=2.3, average_degree=6.0, seed=17)

ABLATION_COLUMNS = ("variant", "k", "budget", "assigned_fraction", "max_out_degree", "rounds")


@pytest.mark.parametrize("k", [2, 4, 8, 16])
def test_a1_pruning_parameter(benchmark, k):
    params = Parameters(k=k, budget=256, steps=3, num_layers=3)
    cluster = MPCCluster(MPCConfig.for_graph(GRAPH))

    result = benchmark.pedantic(
        partial_layer_assignment, args=(GRAPH, params), kwargs={"cluster": cluster},
        rounds=1, iterations=1,
    )
    assignment = result.assignment
    assignment.validate()
    record_row(
        "A1a — ablation: pruning parameter k (Algorithm 4 on a power-law graph)",
        ABLATION_COLUMNS,
        {
            "variant": "vary k",
            "k": k,
            "budget": params.budget,
            "assigned_fraction": round(assignment.fraction_assigned(), 3),
            "max_out_degree": assignment.max_observed_out_degree(),
            "rounds": cluster.stats.num_rounds,
        },
    )


@pytest.mark.parametrize("budget", [16, 64, 256, 1024])
def test_a1_budget(benchmark, budget):
    params = Parameters(k=6, budget=budget, steps=3, num_layers=3)
    cluster = MPCCluster(MPCConfig.for_graph(GRAPH))

    result = benchmark.pedantic(
        partial_layer_assignment, args=(GRAPH, params), kwargs={"cluster": cluster},
        rounds=1, iterations=1,
    )
    assignment = result.assignment
    record_row(
        "A1b — ablation: tree-view budget B (Algorithm 4 on a power-law graph)",
        ABLATION_COLUMNS,
        {
            "variant": "vary B",
            "k": params.k,
            "budget": budget,
            "assigned_fraction": round(assignment.fraction_assigned(), 3),
            "max_out_degree": assignment.max_observed_out_degree(),
            "rounds": cluster.stats.num_rounds,
        },
    )


@pytest.mark.parametrize("use_peeling", [True, False], ids=["with-peeling", "without-peeling"])
def test_a1_stage1_peeling(benchmark, use_peeling):
    k = 8

    def run():
        cluster = MPCCluster(MPCConfig.for_graph(GRAPH))
        if use_peeling:
            result = complete_layer_assignment(GRAPH, k=k, cluster=cluster)
        else:
            result = iterated_partial_assignment(GRAPH, k=k, budget=256, cluster=cluster)
        return result, cluster

    result, cluster = benchmark.pedantic(run, rounds=1, iterations=1)
    partition = result.to_hpartition()
    record_row(
        "A1c — ablation: Lemma 3.15 Stage-1 peeling on vs off",
        ABLATION_COLUMNS,
        {
            "variant": "peeling on" if use_peeling else "peeling off",
            "k": k,
            "budget": 256,
            "assigned_fraction": 1.0,
            "max_out_degree": partition.max_out_degree(),
            "rounds": cluster.stats.num_rounds,
        },
    )
    assert result.is_complete()
