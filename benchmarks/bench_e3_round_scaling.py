"""E3 — Round-complexity separation: ours vs GLM19-style vs LOCAL-in-MPC.

Two sweeps are measured:

* the registry's union-of-forests sweep (the typical-input regime, where all
  three algorithms finish in a handful of rounds), and
* a deep complete 4-ary tree sweep (the slow-peeling regime, where the LOCAL
  baseline pays one MPC round per tree level, ~log₄ n rounds, while the
  poly(log log n) pipeline stays flat).

The shape reproduced from the paper: our round count is essentially constant
over the size sweep while the LOCAL baseline grows with log n; the GLM19-style
baseline sits between the two asymptotically (its advantage over LOCAL only
materialises at depths beyond laptop-scale n, which EXPERIMENTS.md discusses).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.baselines.be_mpc import barenboim_elkin_in_mpc
from repro.baselines.glm19 import glm19_orientation
from repro.core.orientation import orient
from repro.experiments.harness import run_round_scaling_experiment
from repro.experiments.registry import get_experiment
from repro.graph import generators

SPEC = get_experiment("E3")

DEEP_TREE_SIZES = (256, 1024, 4096, 16384, 65536)


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e3_round_scaling_random(benchmark, workload):
    row = benchmark.pedantic(
        run_round_scaling_experiment, args=(workload,), rounds=1, iterations=1
    )
    data = row.as_dict()
    record_row("E3a — round scaling on union-of-forests", SPEC.columns, data)
    assert data["rounds_ours"] >= 1


@pytest.mark.parametrize("num_vertices", DEEP_TREE_SIZES)
def test_e3_round_scaling_deep_tree(benchmark, num_vertices):
    graph = generators.complete_ary_tree(4, num_vertices)

    def run():
        ours = orient(graph, k=3, seed=0)
        local = barenboim_elkin_in_mpc(graph, arboricity=1)
        glm = glm19_orientation(graph, arboricity=1)
        return ours, glm, local

    ours, glm, local = benchmark.pedantic(run, rounds=1, iterations=1)
    record_row(
        "E3b — round scaling on deep 4-ary trees (slow-peeling regime)",
        SPEC.columns,
        {
            "workload": f"ary_tree(4) n={num_vertices}",
            "n": num_vertices,
            "rounds_ours": ours.rounds,
            "rounds_glm19": glm.rounds,
            "rounds_local": local.rounds,
            "outdeg_ours": ours.max_outdegree,
            "outdeg_glm19": glm.max_outdegree,
            "outdeg_local": local.max_outdegree,
        },
    )
    # The reproduced shape: the LOCAL baseline's rounds track the tree depth,
    # ours do not (they are bounded by a constant over this sweep).
    assert ours.rounds <= 16
    assert local.rounds >= num_vertices.bit_length() // 2 - 1
