"""Timestamped JSON snapshots of benchmark results.

Every bench run that goes through :func:`write_snapshot` leaves one
``BENCH_<name>_<UTC timestamp>.json`` file next to the benchmarks, so perf
numbers can be compared across commits without scraping stdout.  The module
is deliberately standalone (no pytest imports): bench ``main()`` entry
points call it directly, and ``benchmarks/conftest.py`` re-exports it for
pytest-driven runs.
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time

# Version of the snapshot payload layout.  Bump when the header shape
# changes; readers (repro bench-report) accept older snapshots without the
# field.
SCHEMA_VERSION = 1


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def write_snapshot(name: str, results: dict, meta: dict | None = None) -> str:
    """Write one ``BENCH_<name>_<timestamp>.json`` snapshot; returns its path.

    ``results`` is the bench's flat metric dict (floats/ints/strings);
    ``meta`` adds bench-specific context (workload sizes, worker counts).
    Host facts (CPU count, Python version) are stamped automatically so a
    snapshot is interpretable on its own.
    """
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    payload = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "timestamp_utc": stamp,
        "host": {
            "cpus": _available_cpus(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "meta": dict(meta or {}),
        "results": dict(results),
    }
    directory = os.path.dirname(os.path.abspath(__file__))
    path = os.path.join(directory, f"BENCH_{name}_{stamp}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def list_snapshots(name: str | None = None) -> list[str]:
    """Paths of persisted snapshots, oldest first (all benches by default)."""
    directory = os.path.dirname(os.path.abspath(__file__))
    pattern = f"BENCH_{name}_*.json" if name else "BENCH_*.json"
    return sorted(glob.glob(os.path.join(directory, pattern)))
