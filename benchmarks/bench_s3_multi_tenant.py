"""S3 — multi-tenant streaming: N tenants multiplexed on one shared engine.

Every engine tick serves one batch per tenant as parallel supersteps on the
shared :class:`~repro.mpc.cluster.MPCCluster` ledger, so the aggregate round
charge is the *max* over the tenants served — not the sum a sequential
scheduler would pay.  The S3 registry suite sweeps the tenant count at a
fixed per-tenant workload; the headline metric is ``round_savings`` (the
sequential-sum / parallel-max ratio), which should grow with the tenant
count and approach it on balanced fleets.

Checks:

* per-tenant invariants hold at stream end (the runner verifies them);
* ``round_savings > 1`` for every fleet, and the 4-tenant fleet saves more
  rounds than the 2-tenant fleet;
* every tenant's coloring is proper and the worst outdegree stays inside
  the streaming O(λ) envelope.

Run directly (``python benchmarks/bench_s3_multi_tenant.py``) for the table,
or through pytest (``pytest benchmarks/bench_s3_multi_tenant.py``).
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.streaming import run_multi_tenant_experiment

SPEC = get_experiment("S3")


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_s3_multi_tenant_row(workload):
    # Imported here so the module also runs directly (`python benchmarks/...`),
    # where the benchmarks package is not importable.
    from benchmarks.conftest import record_row

    row = run_multi_tenant_experiment(workload)
    data = row.as_dict()
    record_row("S3 — " + SPEC.claim, SPEC.columns, data)
    assert data["proper"] == 1.0
    assert data["outdegree_ok"] == 1.0
    assert data["round_savings"] > 1.0, data


def test_s3_savings_grow_with_the_tenant_count():
    rows = sorted(
        (run_multi_tenant_experiment(workload).as_dict() for workload in SPEC.workloads),
        key=lambda data: data["tenants"],
    )
    savings = [data["round_savings"] for data in rows]
    assert all(a < b for a, b in zip(savings, savings[1:])), savings


def main() -> None:
    from repro.analysis.reporting import Table

    table = Table(title="S3 — " + SPEC.claim, columns=list(SPEC.columns))
    for workload in SPEC.workloads:
        table.add_row(run_multi_tenant_experiment(workload).as_dict())
    table.print()


if __name__ == "__main__":
    main()
