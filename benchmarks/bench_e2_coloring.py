"""E2 — Theorem 1.2: proper coloring with O(λ log log n) colors.

Each workload is colored by the full pipeline; the number of colors is
recorded next to the theorem bound, the Δ+1 greedy baseline and the
degeneracy-order baseline (the centralised quality target).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.experiments.harness import run_coloring_experiment
from repro.experiments.registry import get_experiment

SPEC = get_experiment("E2")


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e2_coloring(benchmark, workload):
    row = benchmark.pedantic(
        run_coloring_experiment, args=(workload,), rounds=1, iterations=1
    )
    data = row.as_dict()
    record_row("E2 — " + SPEC.claim, SPEC.columns, data)
    benchmark.extra_info.update(
        {key: data[key] for key in ("colors", "rounds", "lambda_hi")}
    )
    assert data["proper"] == 1.0
    assert data["colors_ok"] == 1.0
