"""Engine-backed Theorem 1.2 — parallel Lemma 2.2 vertex-partition coloring.

The coloring twin of ``bench_engine_parallel.py``: with 4 process workers on
the resident shared-memory pool, large-λ ``color()`` on a 100k-vertex
workload must be **≥ 4× faster** end-to-end than the serial path, with
results (per-vertex colors, palette, rounds) byte-identical to
``workers=1``.  Each run writes one timestamped
``BENCH_e2_parallel_coloring_*.json`` snapshot (see ``_bench_results.py``).

Workload: a union of 10 random spanning forests on 100k vertices (m ≈ 1M,
λ ≤ 10) pushed through the Lemma 2.2 branch with an explicit ``k = 160`` —
``⌈k / log2 n⌉ = 10`` parts.  Vertex partitioning drops cross-part edges, so
the per-part work (layering + directed exponentiation + list coloring) is
what dominates; the explicit ``k`` pins the part count so the serial and
parallel runs color the exact same partition.

Run directly (``python benchmarks/bench_e2_parallel_coloring.py``) for a
table, or through pytest (``pytest benchmarks/bench_e2_parallel_coloring.py``).
The speedup assertion needs real cores and is skipped on hosts with fewer
than 4 CPUs (the identity assertions always run).  ``--smoke`` runs the
identity checks only, on a tiny instance — the CI benchmark-smoke job's mode.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import pytest

from _bench_results import write_snapshot
from repro.core.coloring import color
from repro.engine import PROCESS, ParallelExecutor
from repro.graph.generators import union_of_random_forests

NUM_VERTICES = 100_000
ARBORICITY = 10
EXPLICIT_K = 160  # forces ⌈k / log2 n⌉ = 10 Lemma 2.2 parts at this scale
WORKERS = 4
COLOR_SPEEDUP_TARGET = 4.0

SMOKE_NUM_VERTICES = 2_000
SMOKE_ARBORICITY = 4
SMOKE_K = 64


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _color_once(graph, k, executor):
    start = time.perf_counter()
    run = color(graph, k=k, seed=7, force_vertex_partitioning=True, executor=executor)
    return time.perf_counter() - start, run


def run_coloring_benchmark(
    num_vertices: int = NUM_VERTICES,
    arboricity: int = ARBORICITY,
    k: int = EXPLICIT_K,
) -> dict[str, float]:
    graph = union_of_random_forests(num_vertices, arboricity=arboricity, seed=42)
    with ParallelExecutor(workers=1) as serial_executor:
        serial_s, serial_run = _color_once(graph, k, serial_executor)
    with ParallelExecutor(workers=WORKERS, backend=PROCESS) as parallel_executor:
        parallel_s, parallel_run = _color_once(graph, k, parallel_executor)
    identical = (
        serial_run.coloring.as_dict() == parallel_run.coloring.as_dict()
        and serial_run.rounds == parallel_run.rounds
        and serial_run.palette_size == parallel_run.palette_size
        and serial_run.part_rounds == parallel_run.part_rounds
    )
    return {
        "num_parts": float(serial_run.num_parts),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "rounds": float(serial_run.rounds),
        "sequential_part_rounds": float(sum(serial_run.part_rounds)),
        "colors": float(serial_run.num_colors),
        "proper": 1.0 if serial_run.coloring.is_proper() else 0.0,
        "identical": 1.0 if identical else 0.0,
    }


def _meta(smoke: bool = False) -> dict:
    return {
        "num_vertices": SMOKE_NUM_VERTICES if smoke else NUM_VERTICES,
        "arboricity": SMOKE_ARBORICITY if smoke else ARBORICITY,
        "k": SMOKE_K if smoke else EXPLICIT_K,
        "workers": WORKERS,
        "smoke": smoke,
    }


def test_parallel_coloring_identical_and_faster():
    results = run_coloring_benchmark()
    write_snapshot("e2_parallel_coloring", results, meta=_meta())
    assert results["identical"] == 1.0, results
    assert results["proper"] == 1.0, results
    # The engine fold, not the old sequential loop: reported rounds stay
    # strictly below the sum of the per-part sub-ledger rounds.
    assert results["rounds"] < results["sequential_part_rounds"], results
    if _available_cpus() < WORKERS:
        pytest.skip(
            f"host has {_available_cpus()} CPUs; the {COLOR_SPEEDUP_TARGET}x "
            f"bar needs {WORKERS} real cores (identity already verified)"
        )
    assert results["speedup"] >= COLOR_SPEEDUP_TARGET, (
        f"parallel large-λ color only {results['speedup']:.2f}x faster than "
        f"serial (target {COLOR_SPEEDUP_TARGET}x): {results}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance, identity checks only (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        results = run_coloring_benchmark(SMOKE_NUM_VERTICES, SMOKE_ARBORICITY, SMOKE_K)
    else:
        results = run_coloring_benchmark()
    print(
        f"engine parallel coloring: n={SMOKE_NUM_VERTICES if args.smoke else NUM_VERTICES}, "
        f"k={SMOKE_K if args.smoke else EXPLICIT_K}, workers={WORKERS}, "
        f"cpus={_available_cpus()}{' [smoke]' if args.smoke else ''}"
    )
    width = max(len(key) for key in results)
    for key, value in results.items():
        print(f"  {key:<{width}}  {value:,.4f}")
    path = write_snapshot("e2_parallel_coloring", results, meta=_meta(args.smoke))
    print(f"  snapshot: {path}")
    ok = results["identical"] == 1.0 and results["proper"] == 1.0
    if args.smoke:
        print(f"  identity: {'PASS' if ok else 'FAIL'}")
    else:
        verdict = "PASS" if results["speedup"] >= COLOR_SPEEDUP_TARGET else "FAIL"
        if _available_cpus() < WORKERS:
            verdict += f" n/a ({_available_cpus()} CPUs < {WORKERS})"
        print(f"  speedup target: {COLOR_SPEEDUP_TARGET}x -> {verdict}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
