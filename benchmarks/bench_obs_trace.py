"""Observability costs: no-op tracer overhead and the traced-run smoke.

Two contracts from the tracing layer (PR 7):

1. **No-op overhead** — the default ``NULL_TRACER`` must be free enough to
   leave permanently wired through the hot paths: wrapping every chunk of a
   hot loop in ``NULL_TRACER.span(...)`` must cost < 5% over the bare loop
   (measured as best-of-N on interleaved passes, so machine noise hits both
   sides equally).
2. **Traced-run smoke** — a multi-tenant engine run with a live tracer must
   produce a Chrome trace-event payload where every event carries
   ``ph/ts/pid/tid``, the tick → tenant → batch parent chain is intact, tick
   spans carry their simulated-ledger deltas, and the metrics snapshot rides
   along.

Run directly (``python benchmarks/bench_obs_trace.py``) for the numbers
(non-smoke mode also persists a ``BENCH_obs_trace_*.json`` snapshot),
``--smoke`` for the CI contract checks, or through pytest
(``pytest benchmarks/bench_obs_trace.py``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs import NULL_TRACER, Tracer
from repro.stream.engine import StreamEngine
from repro.stream.workloads import multi_tenant_traces

OVERHEAD_LIMIT = 1.05
CHUNKS = 64
CHUNK_WORK = 2000
REPEATS = 7

SMOKE_FLEET = dict(num_tenants=2, num_vertices=48, num_batches=2, batch_size=16, seed=5)


# --------------------------------------------------------------------------- #
# No-op tracer overhead
# --------------------------------------------------------------------------- #


def _chunk(acc: int) -> int:
    for i in range(CHUNK_WORK):
        acc = (acc + i * i) & 0xFFFFFFF
    return acc


def _plain_pass() -> int:
    acc = 0
    for _ in range(CHUNKS):
        acc = _chunk(acc)
    return acc


def _traced_pass(tracer) -> int:
    acc = 0
    for _ in range(CHUNKS):
        with tracer.span("chunk"):
            acc = _chunk(acc)
    return acc


def run_overhead_check(repeats: int = REPEATS) -> dict:
    """Best-of-N timings of the bare loop vs the NULL_TRACER-wrapped loop."""
    # Warm-up so the first measured pass is not paying compilation/cache cost.
    _plain_pass()
    _traced_pass(NULL_TRACER)
    plain_best = float("inf")
    traced_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _plain_pass()
        plain_best = min(plain_best, time.perf_counter() - start)
        start = time.perf_counter()
        _traced_pass(NULL_TRACER)
        traced_best = min(traced_best, time.perf_counter() - start)
    return {
        "plain_s": plain_best,
        "nulltracer_s": traced_best,
        "overhead_ratio": traced_best / plain_best,
        "spans_per_pass": float(CHUNKS),
    }


# --------------------------------------------------------------------------- #
# Traced-run smoke
# --------------------------------------------------------------------------- #


def run_trace_smoke(fleet_params=None, seed: int = 5) -> dict:
    """Trace a small multi-tenant run and validate the exported payload."""
    fleet_params = fleet_params or SMOKE_FLEET
    tracer = Tracer()
    traces = multi_tenant_traces(**fleet_params)
    with StreamEngine(seed=seed, tracer=tracer) as engine:
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        engine.run_until_drained()
        engine.verify()
    payload = tracer.chrome_payload()
    events = payload["traceEvents"]
    schema_ok = all(
        all(key in event for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"))
        for event in events
    )
    by_id = {event["args"]["id"]: event for event in events}
    chain_ok = False
    for event in events:
        if event["name"] != "batch":
            continue
        parent = by_id.get(event["args"].get("parent"))
        if parent is None or parent["name"] != "tenant":
            continue
        grandparent = by_id.get(parent["args"].get("parent"))
        if grandparent is not None and grandparent["name"] == "tick":
            chain_ok = True
            break
    tick_events = [event for event in events if event["name"] == "tick"]
    ledger_ok = bool(tick_events) and all(
        "rounds" in event["args"] and "volume" in event["args"] for event in tick_events
    )
    counters = payload.get("metrics", {}).get("counters", {})
    return {
        "events": float(len(events)),
        "ticks": float(len(tick_events)),
        "schema_ok": 1.0 if schema_ok else 0.0,
        "chain_ok": 1.0 if chain_ok else 0.0,
        "ledger_ok": 1.0 if ledger_ok else 0.0,
        "metrics_ok": 1.0 if counters.get("engine.ticks", 0) == len(tick_events) else 0.0,
    }


# --------------------------------------------------------------------------- #
# pytest entry points
# --------------------------------------------------------------------------- #


def test_obs_nulltracer_overhead():
    results = run_overhead_check()
    assert results["overhead_ratio"] < OVERHEAD_LIMIT, results


def test_obs_traced_run_contracts():
    results = run_trace_smoke()
    assert results["events"] > 0, results
    assert results["schema_ok"] == 1.0, results
    assert results["chain_ok"] == 1.0, results
    assert results["ledger_ok"] == 1.0, results
    assert results["metrics_ok"] == 1.0, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="contract checks only; skip the snapshot write (CI smoke mode)",
    )
    args = parser.parse_args(argv)

    overhead = run_overhead_check()
    smoke = run_trace_smoke()
    results = {**overhead, **{f"trace_{key}": value for key, value in smoke.items()}}
    width = max(len(key) for key in results)
    print("observability contracts")
    for key, value in results.items():
        print(f"  {key:<{width}}  {value:,.6f}")

    ok = overhead["overhead_ratio"] < OVERHEAD_LIMIT
    ok = ok and smoke["schema_ok"] == 1.0
    ok = ok and smoke["chain_ok"] == 1.0
    ok = ok and smoke["ledger_ok"] == 1.0
    ok = ok and smoke["metrics_ok"] == 1.0

    if not args.smoke:
        from _bench_results import write_snapshot

        path = write_snapshot("obs_trace", results, meta={"chunks": CHUNKS, "repeats": REPEATS})
        print(f"\nsnapshot: {path}")

    print(f"\ncontracts: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
