"""S1 — incremental maintenance vs. recompute-per-batch on a churn trace.

The streaming subsystem's reason to exist: once the graph changes under a
stream of updates, recomputing the Theorem 1.1 orientation from scratch after
every batch wastes almost all of its work, while the incremental maintainer
(Brodal–Fagerberg flip paths + amortised compaction) touches only the updated
region.

Setup: a union-of-forests graph on 100k vertices (λ ≤ 4, m ≈ 400k) under
uniform churn — ``NUM_BATCHES`` batches of ``BATCH_SIZE`` balanced
insertions/deletions each.

* **incremental** — one :class:`~repro.stream.service.StreamingService`
  (coloring maintenance included) applies every batch.
* **recompute** — a plain :class:`~repro.stream.dynamic_graph.DynamicGraph`
  absorbs each batch, then the full static pipeline
  (:func:`repro.core.orientation.orient`) reruns on the snapshot — exactly
  what a one-shot system must do to stay correct.  Measured on
  ``RECOMPUTE_BATCHES`` batches (its per-batch cost is flat, dominated by the
  O(n + m) rebuild, so a short measurement is honest).

Acceptance bar (ISSUE 2): incremental maintenance is **≥ 5× faster** per
batch than recompute-per-batch.  In practice the gap is orders of magnitude;
5× leaves room for slow CI machines.

Run directly (``python benchmarks/bench_s1_streaming.py``) for a table, or
through pytest (``pytest benchmarks/bench_s1_streaming.py``).
"""

from __future__ import annotations

import time

from repro.core.orientation import orient
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.service import StreamingService
from repro.stream.workloads import uniform_churn_trace

NUM_VERTICES = 100_000
ARBORICITY = 4
NUM_BATCHES = 6
BATCH_SIZE = 1_000
RECOMPUTE_BATCHES = 2
SPEEDUP_TARGET = 5.0


def _make_trace():
    return uniform_churn_trace(
        NUM_VERTICES,
        arboricity=ARBORICITY,
        num_batches=NUM_BATCHES,
        batch_size=BATCH_SIZE,
        seed=42,
    )


def measure_incremental(trace) -> tuple[float, StreamingService]:
    """Seconds per batch for the maintained service (init excluded: both
    contenders start from an already-built orientation of the initial graph)."""
    service = StreamingService(trace.initial, seed=0)
    start = time.perf_counter()
    for batch in trace.batches:
        service.apply(batch)
    elapsed = time.perf_counter() - start
    service.verify()
    return elapsed / len(trace.batches), service


def measure_recompute(trace) -> tuple[float, int]:
    """Seconds per batch for apply-updates-then-rerun-Theorem-1.1."""
    dynamic = DynamicGraph(trace.initial)
    batches = trace.batches[:RECOMPUTE_BATCHES]
    max_outdegree = 0
    start = time.perf_counter()
    for batch in batches:
        for update in batch.updates:
            if update.is_insert:
                dynamic.add_edge(update.u, update.v)
            else:
                dynamic.remove_edge(update.u, update.v)
        run = orient(dynamic.snapshot(), seed=0)
        max_outdegree = max(max_outdegree, run.max_outdegree)
    elapsed = time.perf_counter() - start
    return elapsed / len(batches), max_outdegree


def run_benchmark() -> dict[str, float]:
    trace = _make_trace()
    per_batch_incremental, service = measure_incremental(trace)
    per_batch_recompute, recompute_outdeg = measure_recompute(trace)
    speedup = per_batch_recompute / per_batch_incremental
    return {
        "per_batch_incremental_s": per_batch_incremental,
        "per_batch_recompute_s": per_batch_recompute,
        "speedup": speedup,
        "incremental_max_outdegree": float(service.orientation.max_outdegree()),
        "recompute_max_outdegree": float(recompute_outdeg),
        "flips": float(service.summary.total_flips),
        "rebuilds": float(service.summary.total_rebuilds),
        "rounds": float(service.cluster.stats.num_rounds),
    }


def test_incremental_beats_recompute_per_batch():
    results = run_benchmark()
    assert results["speedup"] >= SPEEDUP_TARGET, (
        f"incremental maintenance only {results['speedup']:.1f}x faster than "
        f"recompute-per-batch (target {SPEEDUP_TARGET}x): {results}"
    )
    # The maintained orientation must stay in the same quality class as the
    # recomputed one (both O(λ); the maintained cap is 4λ̂).
    assert results["incremental_max_outdegree"] <= 4 * results["recompute_max_outdegree"] + 4


if __name__ == "__main__":
    rows = run_benchmark()
    width = max(len(k) for k in rows)
    print(f"S1 streaming churn: n={NUM_VERTICES}, {NUM_BATCHES} batches x {BATCH_SIZE} updates")
    for key, value in rows.items():
        print(f"  {key:<{width}}  {value:,.4f}")
    print(f"  speedup target: {SPEEDUP_TARGET}x -> "
          f"{'PASS' if rows['speedup'] >= SPEEDUP_TARGET else 'FAIL'}")
