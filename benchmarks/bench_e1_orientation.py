"""E1 — Theorem 1.1: O(λ log log n)-outdegree orientation in poly(log log n) rounds.

For every workload in the E1 suite, run the full orientation pipeline, record
the achieved maximum outdegree against the theorem's bound and the simulated
MPC round count, and benchmark the wall-clock time of one run.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.experiments.harness import run_orientation_experiment
from repro.experiments.registry import get_experiment

SPEC = get_experiment("E1")


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e1_orientation(benchmark, workload):
    row = benchmark.pedantic(
        run_orientation_experiment, args=(workload,), rounds=1, iterations=1
    )
    data = row.as_dict()
    record_row("E1 — " + SPEC.claim, SPEC.columns, data)
    benchmark.extra_info.update(
        {key: data[key] for key in ("max_outdegree", "rounds", "lambda_hi")}
    )
    assert data["outdegree_ok"] == 1.0
    assert data["rounds_ok"] == 1.0
