"""Streaming data plane — columnar tick hot paths, numpy vs. pure.

Two acceptance bars for the columnar streaming rework (see ROADMAP):

* **Tick-throughput composite ≥ 3×.**  A 100k-vertex churn trace (10 ticks
  × 500 mixed updates against a ~300k-edge base) is streamed through a full
  :class:`~repro.stream.service.StreamingService` — kernel-validated
  batches, columnar absorb, batch recolor scan, per-tick palette/outdegree
  stats, and real mid-batch compactions (the journal threshold is tightened
  so every tick compacts, exercising the ``compact_journal`` kernel at full
  base size).  The numpy backend must finish the identical trace ≥ 3×
  faster than ``pure``, with byte-identical outputs (reports, colors,
  outdegree column, snapshot edge columns).
* **Snapshot-cache microbench ≥ 5×.**  Between compactions, repeated
  snapshot consumers (quality checks, properness scans, exports) must not
  each replay the journal: with the generation-tagged cache on, a tick that
  reads the snapshot 6 times replays the journal once, so the cache must
  cut journal-replay ops per tick by ≥ 5× versus ``snapshot_caching=False``.

Methodology matches ``bench_kernels.py``: both backends run the *same*
pre-generated batch sequence from identically constructed services, trials
interleaved (pure, numpy, pure, ...) so thermal ramp-up cannot flatter
either side, best-of-N reported, GC on.  Services are *constructed* outside
the timed region (static pipeline cost, already benchmarked elsewhere) on
whatever backend is active — construction is byte-identical by the kernel
contract, so both sides start from the same state.

Run directly (``python benchmarks/bench_stream_hotpaths.py``) for the
full-scale run, or through pytest.  Each run writes one timestamped
``BENCH_stream_hotpaths_*.json`` snapshot.  ``--smoke`` runs a tiny trace
and checks identity + the replay ratio only — the CI benchmark-smoke mode,
also what a numpy-less host degrades to (the speedup bar is then skipped).
"""

from __future__ import annotations

import argparse
import random
import sys
import time

import pytest

from _bench_results import write_snapshot
from repro import kernels
from repro.graph.generators import union_of_random_forests
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch

NUM_VERTICES = 100_000
ARBORICITY = 3  # base m ≈ 300k edges
TICKS = 10
BATCH_SIZE = 500
COMPACT_JOURNAL = 400  # overlay entries per forced mid-tick compaction
SPEEDUP_TARGET = 3.0
REPLAY_TARGET = 5.0
REPEATS = 3
SNAPSHOT_READS = 6  # snapshot consumers per microbench tick

SMOKE_VERTICES = 2_000
SMOKE_TICKS = 3
SMOKE_BATCH = 100
SMOKE_REPEATS = 1


def make_trace(graph, ticks: int, batch_size: int, seed: int = 97) -> list[UpdateBatch]:
    """A deterministic churn trace: per batch ~half inserts of fresh edges,
    ~half deletes of currently live ones (base edges included), never
    illegal.  Batches are frozen value objects, safely shared by every
    service that replays the trace."""
    rng = random.Random(seed)
    n = graph.num_vertices
    # The live edge set as a parallel list + index map, so deletions sample
    # in O(1) (swap-remove) with fully deterministic order — no set
    # iteration, no per-op sort.
    live_list = list(zip(*graph.edge_endpoints))
    live_index = {edge: i for i, edge in enumerate(live_list)}
    batches = []
    for _ in range(ticks):
        ops = []
        for _ in range(batch_size):
            if live_list and rng.random() < 0.5:
                i = rng.randrange(len(live_list))
                edge = live_list[i]
                last = live_list.pop()
                if last is not edge:
                    live_list[i] = last
                    live_index[last] = i
                del live_index[edge]
                ops.append(("-", edge[0], edge[1]))
            else:
                while True:
                    u, v = rng.randrange(n), rng.randrange(n)
                    if u == v:
                        continue
                    edge = (u, v) if u < v else (v, u)
                    if edge not in live_index:
                        break
                live_index[edge] = len(live_list)
                live_list.append(edge)
                ops.append(("+", edge[0], edge[1]))
        batches.append(UpdateBatch.from_ops(ops))
    return batches


def _build_service(graph) -> StreamingService:
    # Construction (static orient + degeneracy coloring) is not the unit
    # under test and is byte-identical across backends by the kernel
    # contract, so it always runs on the fastest backend available.
    with kernels.use_backend(kernels.NUMPY):
        service = StreamingService(graph, maintain_coloring=True, workers=1)
    # Tighten the compaction threshold so the trace exercises the
    # compact_journal kernel at full base size every tick (the default
    # fraction would never trip at this journal/edge ratio).  Both backends
    # get the same threshold, so compaction timing is identical.
    service.dynamic.min_compaction_journal = COMPACT_JOURNAL
    service.dynamic.compaction_fraction = 1e-9
    return service


def _fingerprint(service: StreamingService) -> tuple:
    snapshot = service.dynamic.snapshot()
    edge_u, edge_v = snapshot.edge_endpoints
    return (
        [report.as_dict() for report in service.summary.reports],
        service.coloring._colors.tobytes(),
        service.orientation._outdeg.tobytes(),
        edge_u.tobytes(),
        edge_v.tobytes(),
    )


def _timed_trace(graph, batches, backend: str) -> tuple[float, tuple]:
    service = _build_service(graph)
    try:
        with kernels.use_backend(backend):
            start = time.perf_counter()
            for batch in batches:
                service.apply(batch)
            elapsed = time.perf_counter() - start
        return elapsed, _fingerprint(service)
    finally:
        service.close()


def snapshot_cache_microbench(
    graph, batches, reads_per_tick: int = SNAPSHOT_READS
) -> dict[str, float]:
    """Journal-replay ops per tick, cached vs. replay-always snapshots."""
    replay_ops = {}
    for caching in (True, False):
        dynamic = DynamicGraph(
            graph, min_compaction_journal=2**60, snapshot_caching=caching
        )
        for batch in batches:
            dynamic.apply_ops(*batch.columns())
            for _ in range(reads_per_tick):
                dynamic.snapshot()
        replay_ops[caching] = dynamic.journal_replay_ops
    return {
        "replay_ops_cached": float(replay_ops[True]),
        "replay_ops_uncached": float(replay_ops[False]),
        "replay_ratio": replay_ops[False] / max(replay_ops[True], 1),
    }


def run_stream_benchmark(
    num_vertices: int = NUM_VERTICES,
    ticks: int = TICKS,
    batch_size: int = BATCH_SIZE,
    repeats: int = REPEATS,
) -> dict[str, float]:
    graph = union_of_random_forests(num_vertices, arboricity=ARBORICITY, seed=23)
    batches = make_trace(graph, ticks, batch_size)

    with kernels.use_backend(kernels.NUMPY) as resolved:
        numpy_ran = resolved == kernels.NUMPY

    best = {kernels.PURE: float("inf"), kernels.NUMPY: float("inf")}
    prints = {}
    for _ in range(repeats):
        for backend in (kernels.PURE, kernels.NUMPY):
            elapsed, fingerprint = _timed_trace(graph, batches, backend)
            best[backend] = min(best[backend], elapsed)
            previous = prints.setdefault(backend, fingerprint)
            assert previous == fingerprint, f"{backend}: run-to-run divergence"
    assert prints[kernels.PURE] == prints[kernels.NUMPY], (
        "streaming outputs diverged between kernel backends"
    )

    updates = ticks * batch_size
    results = {
        "numpy_available": 1.0 if numpy_ran else 0.0,
        "trace_pure_s": best[kernels.PURE],
        "trace_numpy_s": best[kernels.NUMPY],
        "throughput_pure_ups": updates / max(best[kernels.PURE], 1e-9),
        "throughput_numpy_ups": updates / max(best[kernels.NUMPY], 1e-9),
        "composite_speedup": best[kernels.PURE] / max(best[kernels.NUMPY], 1e-9),
    }
    results.update(snapshot_cache_microbench(graph, batches))
    return results


def _meta(smoke: bool = False) -> dict:
    return {
        "num_vertices": SMOKE_VERTICES if smoke else NUM_VERTICES,
        "arboricity": ARBORICITY,
        "ticks": SMOKE_TICKS if smoke else TICKS,
        "batch_size": SMOKE_BATCH if smoke else BATCH_SIZE,
        "compact_journal": COMPACT_JOURNAL,
        "snapshot_reads": SNAPSHOT_READS,
        "repeats": SMOKE_REPEATS if smoke else REPEATS,
        "kernel_backends": list(kernels.available_backends()),
        "smoke": smoke,
    }


def _print_table(results: dict[str, float], num_vertices: int) -> None:
    print(
        f"\nstreaming hot paths @ n={num_vertices}, base m≈{num_vertices * ARBORICITY} "
        f"(union-of-forests λ≤{ARBORICITY})"
    )
    print(
        f"  trace      pure {results['trace_pure_s']:8.3f}s   "
        f"numpy {results['trace_numpy_s']:8.3f}s   "
        f"{results['composite_speedup']:6.1f}x"
    )
    print(
        f"  throughput pure {results['throughput_pure_ups']:8.0f} upd/s   "
        f"numpy {results['throughput_numpy_ups']:8.0f} upd/s"
    )
    print(
        f"  snapshot cache: {results['replay_ops_cached']:.0f} replay ops cached vs "
        f"{results['replay_ops_uncached']:.0f} uncached "
        f"({results['replay_ratio']:.1f}x, target ≥ {REPLAY_TARGET}x)"
    )
    print(f"  composite speedup target: ≥ {SPEEDUP_TARGET}x")


def test_stream_hotpaths_speedup():
    """Full-scale bars: ≥3× tick composite, ≥5× fewer journal replays."""
    results = run_stream_benchmark()
    write_snapshot("stream_hotpaths", results, meta=_meta())
    _print_table(results, NUM_VERTICES)
    assert results["replay_ratio"] >= REPLAY_TARGET, (
        f"snapshot cache saved only {results['replay_ratio']:.2f}x journal "
        f"replays, below the {REPLAY_TARGET}x bar: {results}"
    )
    if not results["numpy_available"]:
        pytest.skip("numpy not importable; identity trivially holds on pure alone")
    assert results["composite_speedup"] >= SPEEDUP_TARGET, (
        f"composite speedup {results['composite_speedup']:.2f}x below the "
        f"{SPEEDUP_TARGET}x bar: {results}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny trace, identity + replay-ratio checks only (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        n, ticks, batch, repeats = SMOKE_VERTICES, SMOKE_TICKS, SMOKE_BATCH, SMOKE_REPEATS
    else:
        n, ticks, batch, repeats = NUM_VERTICES, TICKS, BATCH_SIZE, REPEATS
    results = run_stream_benchmark(n, ticks, batch, repeats)
    _print_table(results, n)
    path = write_snapshot("stream_hotpaths", results, meta=_meta(args.smoke))
    print(f"  snapshot: {path}")
    ok = results["replay_ratio"] >= REPLAY_TARGET
    print(f"  replay-ratio target: {REPLAY_TARGET}x -> {'PASS' if ok else 'FAIL'}")
    if args.smoke or not results["numpy_available"]:
        print("  identity: PASS (speedup bar skipped: smoke mode or numpy unavailable)")
        return 0 if ok else 1
    fast = results["composite_speedup"] >= SPEEDUP_TARGET
    print(f"  speedup target: {SPEEDUP_TARGET}x -> {'PASS' if fast else 'FAIL'}")
    return 0 if (ok and fast) else 1


if __name__ == "__main__":
    sys.exit(main())
