"""S2 — windowed streaming: batch size vs. amortised MPC rounds per update.

Delivering an update batch costs one communication round regardless of its
size (until the batch outgrows the per-machine memory ``S``), while the
repair primitives are charged per batch in which they occur — so at a fixed
total update budget, batching more updates together should drive the
amortised rounds/update down roughly like ``1/batch_size`` without hurting
the maintained quality.  The S2 registry suite fixes the window (512 edges
on 512 vertices) and the insert budget, sweeping only the batch size.

Checks:

* amortised rounds/update decreases monotonically along the sweep and the
  largest batch size is ≥ 4× cheaper per update than the smallest;
* the maintained max outdegree stays within the streaming O(λ) envelope for
  every batch size (batching must not degrade quality).

Run directly (``python benchmarks/bench_s2_batch_size.py``) for the table,
or through pytest (``pytest benchmarks/bench_s2_batch_size.py``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.experiments.registry import get_experiment
from repro.experiments.streaming import run_batch_size_experiment

SPEC = get_experiment("S2")
SWEEP_SPEEDUP_TARGET = 4.0

_ROWS: list[dict] = []


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_s2_batch_size_row(benchmark, workload):
    row = benchmark.pedantic(
        run_batch_size_experiment, args=(workload,), rounds=1, iterations=1
    )
    data = row.as_dict()
    record_row("S2 — " + SPEC.claim, SPEC.columns, data)
    benchmark.extra_info.update(
        {key: data[key] for key in ("batch_size", "rounds_per_update", "flips")}
    )
    _ROWS.append(data)
    assert data["updates"] > 0


def test_s2_amortised_rounds_fall_with_batch_size():
    """The sweep's point: bigger batches amortise the round cost away."""
    rows = sorted(
        (run_batch_size_experiment(workload).as_dict() for workload in SPEC.workloads),
        key=lambda data: data["batch_size"],
    )
    per_update = [data["rounds_per_update"] for data in rows]
    assert all(a >= b for a, b in zip(per_update, per_update[1:])), per_update
    assert per_update[0] / max(per_update[-1], 1e-9) >= SWEEP_SPEEDUP_TARGET
    # Batching must not cost quality: same envelope at every batch size.
    caps = {data["final_max_outdegree"] for data in rows}
    assert max(caps) <= min(data["outdegree_cap"] for data in rows)


def main() -> None:
    from repro.analysis.reporting import Table

    table = Table(title="S2 — " + SPEC.claim, columns=list(SPEC.columns))
    for workload in SPEC.workloads:
        table.add_row(run_batch_size_experiment(workload).as_dict())
    table.print()


if __name__ == "__main__":
    main()
