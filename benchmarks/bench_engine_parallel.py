"""Engine — resident-pool Lemma 2.1 orientation and batch-parallel flip repair.

The worker pool's acceptance bars: with 4 process workers, large-λ
``orient()`` on a 100k-vertex dense workload must be **≥ 4× faster** than
the serial path end-to-end, with engine results (orientation heads, rounds)
byte-identical to ``workers=1``; and the repeated-superstep microbench must
show the resident shared-memory shards amortise the per-call fan-out cost
**≥ 10×** against the old re-pickle-every-call path (measured as bytes
shipped per superstep — deterministic, so it holds on any host; the
wall-clock ratio is reported alongside).  The same module pins the
batch-parallel flip-repair path of the streaming service against its serial
counterpart — identical maintained state (heads, colors, rounds) for any
worker count, with the wall-clock ratio reported (thread backend: the GIL
bounds the speedup, so only identity is asserted).

Workload: a union of 12 random spanning forests on 100k vertices
(m ≈ 1.2M, λ ≤ 12) pushed through the Lemma 2.1 branch with an explicit
``k = 256`` — ``⌈k / log2 n⌉ = 16`` parts, four even waves for 4 workers.
The explicit ``k`` pins the part count, so the serial/parallel comparison
runs the exact same partition.

Run directly (``python benchmarks/bench_engine_parallel.py``) for a table,
or through pytest (``pytest benchmarks/bench_engine_parallel.py``).  Either
way each run writes one timestamped ``BENCH_engine_parallel_*.json``
snapshot (see ``_bench_results.py``).  The speedup assertion needs real
cores and is skipped on hosts with fewer than 4 CPUs (the identity and
amortisation assertions always run).  ``--smoke`` runs the identity checks
only, on tiny instances — the CI benchmark-smoke job's mode.
"""

from __future__ import annotations

import argparse
import os
import pickle
import random
import sys
import time

import pytest

from _bench_results import write_snapshot
from repro.core.orientation import orient
from repro.core.partitioning import random_edge_partition
from repro.engine import PROCESS, ParallelExecutor, WorkerPool
from repro.engine import shm
from repro.graph.generators import union_of_random_forests
from repro.stream.service import StreamingService
from repro.stream.workloads import uniform_churn_trace

NUM_VERTICES = 100_000
ARBORICITY = 12
EXPLICIT_K = 256  # forces ⌈k / log2 n⌉ = 16 Lemma 2.1 parts at this scale
WORKERS = 4
ORIENT_SPEEDUP_TARGET = 4.0
AMORTIZATION_TARGET = 10.0
AMORTIZATION_SUPERSTEPS = 8

STREAM_BATCHES = 4
STREAM_BATCH_SIZE = 2_000


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


SMOKE_NUM_VERTICES = 2_000
SMOKE_K = 64
SMOKE_STREAM_BATCH_SIZE = 200


def _make_graph(num_vertices=NUM_VERTICES):
    return union_of_random_forests(num_vertices, arboricity=ARBORICITY, seed=42)


def _orient_once(graph, k, executor):
    start = time.perf_counter()
    run = orient(
        graph,
        k=k,
        seed=7,
        force_edge_partitioning=True,
        executor=executor,
    )
    return time.perf_counter() - start, run


def run_orientation_benchmark(
    num_vertices: int = NUM_VERTICES, k: int = EXPLICIT_K
) -> dict[str, float]:
    graph = _make_graph(num_vertices)
    serial_s, serial_run = _orient_once(graph, k, ParallelExecutor(workers=1))
    parallel_s, parallel_run = _orient_once(
        graph, k, ParallelExecutor(workers=WORKERS, backend=PROCESS)
    )
    identical = (
        serial_run.orientation.direction == parallel_run.orientation.direction
        and serial_run.rounds == parallel_run.rounds
        and serial_run.max_outdegree == parallel_run.max_outdegree
    )
    return {
        "num_parts": float(serial_run.num_parts),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "rounds": float(serial_run.rounds),
        "max_outdegree": float(serial_run.max_outdegree),
        "identical": 1.0 if identical else 0.0,
    }


def _touch_shard_task(handle, index):
    """Resident-path superstep task: read the part from shared memory."""
    return shm.shard_graph(handle, index).num_edges


def _touch_part_task(part):
    """Re-pickle-path superstep task: the part itself travelled in the task."""
    return part.num_edges


def run_amortization_microbench(
    num_vertices: int = NUM_VERTICES,
    k: int = EXPLICIT_K,
    supersteps: int = AMORTIZATION_SUPERSTEPS,
) -> dict[str, float]:
    """Repeated supersteps over one resident part set vs. re-pickling per call.

    The quantity under test is the per-superstep fan-out cost.  The resident
    path publishes the Lemma 2.1 parts once and ships ``(handle, index)``
    descriptors every superstep; the re-pickle path (what the executor did
    before the pool existed) ships every part in every task tuple.  Bytes
    shipped per superstep is measured exactly (``pickle.dumps`` of the task
    tuples — what ``ProcessPoolExecutor`` serialises); wall-clock for the
    repeated supersteps is reported alongside, after one warm-up superstep
    per path so pool startup is off the clock.
    """
    graph = _make_graph(num_vertices)
    parts = [
        part
        for part in random_edge_partition(
            graph, arboricity_bound=k, rng=random.Random(7)
        ).parts
        if part.num_edges
    ]
    expected = [part.num_edges for part in parts]
    proto = pickle.HIGHEST_PROTOCOL
    repickle_bytes = sum(len(pickle.dumps((part,), protocol=proto)) for part in parts)

    with WorkerPool(workers=WORKERS, backend=PROCESS) as pool:
        handle = pool.publish_edge_parts("amortize-parts", graph.num_vertices, parts)
        tasks = [(handle, index) for index in range(len(parts))]
        resident_bytes = sum(len(pickle.dumps(task, protocol=proto)) for task in tasks)
        assert pool.map(_touch_shard_task, tasks, handles=(handle,)) == expected
        start = time.perf_counter()
        for _ in range(supersteps):
            assert pool.map(_touch_shard_task, tasks, handles=(handle,)) == expected
        resident_s = time.perf_counter() - start

    with ParallelExecutor(workers=WORKERS, backend=PROCESS) as executor:
        pickle_tasks = [(part,) for part in parts]
        assert executor.map(_touch_part_task, pickle_tasks) == expected
        start = time.perf_counter()
        for _ in range(supersteps):
            assert executor.map(_touch_part_task, pickle_tasks) == expected
        repickle_s = time.perf_counter() - start

    return {
        "num_parts": float(len(parts)),
        "supersteps": float(supersteps),
        "repickle_bytes_per_superstep": float(repickle_bytes),
        "resident_bytes_per_superstep": float(resident_bytes),
        "shipping_amortization": repickle_bytes / resident_bytes,
        "repickle_s": repickle_s,
        "resident_s": resident_s,
        "wall_clock_ratio": repickle_s / max(resident_s, 1e-9),
    }


def _stream_once(trace, workers):
    service = StreamingService(trace.initial, seed=0, workers=workers)
    start = time.perf_counter()
    summary = service.apply_all(trace.batches)
    elapsed = time.perf_counter() - start
    service.verify()
    state = (
        tuple(tuple(sorted(out)) for out in service.orientation._out),
        tuple(service.coloring._colors),
        service.cluster.stats.num_rounds,
        summary.total_flips,
    )
    return elapsed, state, summary


def run_repair_benchmark(
    num_vertices: int = NUM_VERTICES, batch_size: int = STREAM_BATCH_SIZE
) -> dict[str, float]:
    trace = uniform_churn_trace(
        num_vertices,
        arboricity=4,
        num_batches=STREAM_BATCHES,
        batch_size=batch_size,
        seed=42,
    )
    serial_s, serial_state, _ = _stream_once(trace, workers=1)
    parallel_s, parallel_state, summary = _stream_once(trace, workers=WORKERS)
    groups = sum(report.conflict_groups for report in summary.reports)
    parallel_groups = sum(report.parallel_groups for report in summary.reports)
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "conflict_groups": float(groups),
        "parallel_groups": float(parallel_groups),
        "identical": 1.0 if serial_state == parallel_state else 0.0,
    }


def test_parallel_orientation_identical_and_faster():
    results = run_orientation_benchmark()
    write_snapshot("engine_parallel_orient", results, meta=_meta())
    assert results["identical"] == 1.0, results
    if _available_cpus() < WORKERS:
        pytest.skip(
            f"host has {_available_cpus()} CPUs; the {ORIENT_SPEEDUP_TARGET}x "
            f"bar needs {WORKERS} real cores (identity already verified)"
        )
    assert results["speedup"] >= ORIENT_SPEEDUP_TARGET, (
        f"parallel large-λ orient only {results['speedup']:.2f}x faster than "
        f"serial (target {ORIENT_SPEEDUP_TARGET}x): {results}"
    )


def test_resident_pool_amortizes_fanout_shipping():
    """Ship-once beats ship-every-superstep ≥ 10× on bytes per call."""
    results = run_amortization_microbench()
    write_snapshot("engine_parallel_amortization", results, meta=_meta())
    assert results["shipping_amortization"] >= AMORTIZATION_TARGET, results


def test_batch_parallel_repair_identical():
    results = run_repair_benchmark()
    write_snapshot("engine_parallel_repair", results, meta=_meta())
    assert results["identical"] == 1.0, results
    assert results["parallel_groups"] > 0  # the parallel phase actually ran


def _meta(smoke: bool = False) -> dict:
    return {
        "num_vertices": SMOKE_NUM_VERTICES if smoke else NUM_VERTICES,
        "arboricity": ARBORICITY,
        "k": SMOKE_K if smoke else EXPLICIT_K,
        "workers": WORKERS,
        "smoke": smoke,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances, identity checks only (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        n, k, batch_size = SMOKE_NUM_VERTICES, SMOKE_K, SMOKE_STREAM_BATCH_SIZE
    else:
        n, k, batch_size = NUM_VERTICES, EXPLICIT_K, STREAM_BATCH_SIZE
    print(
        f"engine parallel: n={n}, m≈{n * ARBORICITY}, k={k}, "
        f"workers={WORKERS}, cpus={_available_cpus()}"
        f"{' [smoke]' if args.smoke else ''}"
    )
    ok = True
    snapshot: dict[str, float] = {}
    amortization = run_amortization_microbench(n, k)
    for title, rows, target in (
        (
            "large-λ orientation (resident pool, process backend)",
            run_orientation_benchmark(n, k),
            ORIENT_SPEEDUP_TARGET,
        ),
        (
            "repeated-superstep fan-out amortization",
            amortization,
            None,
        ),
        (
            "batch-parallel flip repair (thread backend)",
            run_repair_benchmark(n, batch_size),
            None,
        ),
    ):
        print(f"\n{title}")
        width = max(len(key) for key in rows)
        for key, value in rows.items():
            print(f"  {key:<{width}}  {value:,.4f}")
        for key, value in rows.items():
            snapshot[f"{title.split(' (')[0].replace(' ', '_')}:{key}"] = value
        if "identical" in rows:
            ok = ok and rows["identical"] == 1.0
            if args.smoke:
                print(f"  identity: {'PASS' if rows['identical'] == 1.0 else 'FAIL'}")
        if not args.smoke and target is not None:
            verdict = "PASS" if rows["speedup"] >= target else "FAIL"
            if _available_cpus() < WORKERS:
                verdict += f" n/a ({_available_cpus()} CPUs < {WORKERS})"
            print(f"  speedup target: {target}x -> {verdict}")
    amortized = amortization["shipping_amortization"] >= AMORTIZATION_TARGET
    ok = ok and amortized
    print(
        f"\n  shipping amortization target: {AMORTIZATION_TARGET}x -> "
        f"{'PASS' if amortized else 'FAIL'} "
        f"({amortization['shipping_amortization']:.1f}x)"
    )
    path = write_snapshot("engine_parallel", snapshot, meta=_meta(args.smoke))
    print(f"  snapshot: {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
