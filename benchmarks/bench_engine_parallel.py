"""Engine — parallel Lemma 2.1 orientation and batch-parallel flip repair.

The superstep engine's acceptance bar (ISSUE 3): with 4 process workers,
large-λ ``orient()`` on a 100k-vertex dense workload must be **≥ 2× faster**
than the serial path, with engine results (orientation heads, rounds)
byte-identical to ``workers=1``.  The same module pins the batch-parallel
flip-repair path of the streaming service against its serial counterpart —
identical maintained state (heads, colors, rounds) for any worker count,
with the wall-clock ratio reported (thread backend: the GIL bounds the
speedup, so only identity is asserted).

Workload: a union of 12 random spanning forests on 100k vertices
(m ≈ 1.2M, λ ≤ 12) pushed through the Lemma 2.1 branch with an explicit
``k = 256`` — ``⌈k / log2 n⌉ = 16`` parts, four even waves for 4 workers.
The explicit ``k`` pins the part count, so the serial/parallel comparison
runs the exact same partition.

Run directly (``python benchmarks/bench_engine_parallel.py``) for a table,
or through pytest (``pytest benchmarks/bench_engine_parallel.py``).  The
speedup assertion needs real cores and is skipped on hosts with fewer than
4 CPUs (the identity assertions always run).  ``--smoke`` runs the identity
checks only, on tiny instances — the CI benchmark-smoke job's mode.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import pytest

from repro.core.orientation import orient
from repro.engine import PROCESS, ParallelExecutor
from repro.graph.generators import union_of_random_forests
from repro.stream.service import StreamingService
from repro.stream.workloads import uniform_churn_trace

NUM_VERTICES = 100_000
ARBORICITY = 12
EXPLICIT_K = 256  # forces ⌈k / log2 n⌉ = 16 Lemma 2.1 parts at this scale
WORKERS = 4
ORIENT_SPEEDUP_TARGET = 2.0

STREAM_BATCHES = 4
STREAM_BATCH_SIZE = 2_000


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


SMOKE_NUM_VERTICES = 2_000
SMOKE_K = 64
SMOKE_STREAM_BATCH_SIZE = 200


def _make_graph(num_vertices=NUM_VERTICES):
    return union_of_random_forests(num_vertices, arboricity=ARBORICITY, seed=42)


def _orient_once(graph, k, executor):
    start = time.perf_counter()
    run = orient(
        graph,
        k=k,
        seed=7,
        force_edge_partitioning=True,
        executor=executor,
    )
    return time.perf_counter() - start, run


def run_orientation_benchmark(
    num_vertices: int = NUM_VERTICES, k: int = EXPLICIT_K
) -> dict[str, float]:
    graph = _make_graph(num_vertices)
    serial_s, serial_run = _orient_once(graph, k, ParallelExecutor(workers=1))
    parallel_s, parallel_run = _orient_once(
        graph, k, ParallelExecutor(workers=WORKERS, backend=PROCESS)
    )
    identical = (
        serial_run.orientation.direction == parallel_run.orientation.direction
        and serial_run.rounds == parallel_run.rounds
        and serial_run.max_outdegree == parallel_run.max_outdegree
    )
    return {
        "num_parts": float(serial_run.num_parts),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "rounds": float(serial_run.rounds),
        "max_outdegree": float(serial_run.max_outdegree),
        "identical": 1.0 if identical else 0.0,
    }


def _stream_once(trace, workers):
    service = StreamingService(trace.initial, seed=0, workers=workers)
    start = time.perf_counter()
    summary = service.apply_all(trace.batches)
    elapsed = time.perf_counter() - start
    service.verify()
    state = (
        tuple(tuple(sorted(out)) for out in service.orientation._out),
        tuple(service.coloring._colors),
        service.cluster.stats.num_rounds,
        summary.total_flips,
    )
    return elapsed, state, summary


def run_repair_benchmark(
    num_vertices: int = NUM_VERTICES, batch_size: int = STREAM_BATCH_SIZE
) -> dict[str, float]:
    trace = uniform_churn_trace(
        num_vertices,
        arboricity=4,
        num_batches=STREAM_BATCHES,
        batch_size=batch_size,
        seed=42,
    )
    serial_s, serial_state, _ = _stream_once(trace, workers=1)
    parallel_s, parallel_state, summary = _stream_once(trace, workers=WORKERS)
    groups = sum(report.conflict_groups for report in summary.reports)
    parallel_groups = sum(report.parallel_groups for report in summary.reports)
    return {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "conflict_groups": float(groups),
        "parallel_groups": float(parallel_groups),
        "identical": 1.0 if serial_state == parallel_state else 0.0,
    }


def test_parallel_orientation_identical_and_faster():
    results = run_orientation_benchmark()
    assert results["identical"] == 1.0, results
    if _available_cpus() < WORKERS:
        pytest.skip(
            f"host has {_available_cpus()} CPUs; the {ORIENT_SPEEDUP_TARGET}x "
            f"bar needs {WORKERS} real cores (identity already verified)"
        )
    assert results["speedup"] >= ORIENT_SPEEDUP_TARGET, (
        f"parallel large-λ orient only {results['speedup']:.2f}x faster than "
        f"serial (target {ORIENT_SPEEDUP_TARGET}x): {results}"
    )


def test_batch_parallel_repair_identical():
    results = run_repair_benchmark()
    assert results["identical"] == 1.0, results
    assert results["parallel_groups"] > 0  # the parallel phase actually ran


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances, identity checks only (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        n, k, batch_size = SMOKE_NUM_VERTICES, SMOKE_K, SMOKE_STREAM_BATCH_SIZE
    else:
        n, k, batch_size = NUM_VERTICES, EXPLICIT_K, STREAM_BATCH_SIZE
    print(
        f"engine parallel: n={n}, m≈{n * ARBORICITY}, k={k}, "
        f"workers={WORKERS}, cpus={_available_cpus()}"
        f"{' [smoke]' if args.smoke else ''}"
    )
    ok = True
    for title, rows, target in (
        (
            "large-λ orientation (process backend)",
            run_orientation_benchmark(n, k),
            ORIENT_SPEEDUP_TARGET,
        ),
        (
            "batch-parallel flip repair (thread backend)",
            run_repair_benchmark(n, batch_size),
            None,
        ),
    ):
        print(f"\n{title}")
        width = max(len(key) for key in rows)
        for key, value in rows.items():
            print(f"  {key:<{width}}  {value:,.4f}")
        ok = ok and rows["identical"] == 1.0
        if args.smoke:
            print(f"  identity: {'PASS' if rows['identical'] == 1.0 else 'FAIL'}")
        elif target is not None:
            verdict = "PASS" if rows["speedup"] >= target else "FAIL"
            if _available_cpus() < WORKERS:
                verdict += f" n/a ({_available_cpus()} CPUs < {WORKERS})"
            print(f"  speedup target: {target}x -> {verdict}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
