"""E5 — Lemma 3.15: complete layering with bounded out-degree and geometric decay.

For each workload, compute the complete layer assignment (H-partition) with
``k = 2 · degeneracy`` and record the number of layers, the measured maximum
out-degree against the ``(s+1)·k``-style bound, and whether the suffix sizes
decay geometrically (ratio ≤ 0.5 with slack 2).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_row
from repro.analysis.validators import validate_layer_decay
from repro.core.full_assignment import complete_layer_assignment
from repro.experiments.registry import get_experiment
from repro.graph.arboricity import degeneracy

SPEC = get_experiment("E5")


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e5_layer_decay(benchmark, workload):
    graph = workload.materialize()
    k = max(2, 2 * degeneracy(graph))

    run = benchmark.pedantic(
        complete_layer_assignment, args=(graph,), kwargs={"k": k}, rounds=1, iterations=1
    )
    partition = run.to_hpartition()
    decay = validate_layer_decay(partition, ratio=0.5, slack=2.0)
    record_row(
        "E5 — " + SPEC.claim,
        SPEC.columns,
        {
            "workload": workload.describe(),
            "n": graph.num_vertices,
            "k": k,
            "num_layers": partition.num_layers,
            "max_out_degree": partition.max_out_degree(),
            "out_degree_bound": run.out_degree_bound,
            "decay_ok": 1.0 if decay.passed else 0.0,
        },
    )
    assert partition.max_out_degree() <= run.out_degree_bound
    assert decay.passed
