"""Kernel layer — vectorized numpy backends vs. the pure-python reference.

The acceptance bar for the kernel layer (see ROADMAP): on a 1M-vertex /
~10M-edge workload, the **peel + orient composite** must run **≥ 3× faster**
on the numpy backend than on ``pure``, with byte-identical outputs (same
``array('l')`` layers column, same round count, same heads column).  The
other kernel families (outdegree tally, orientation merge, palette
assembly) are timed and identity-checked alongside but carry no bar of
their own — they share the composite's data plane and their wins ride
along.

Both backends run the *same dispatcher calls* on the *same inputs*, trials
interleaved (pure, numpy, pure, numpy, ...) so thermal ramp-up and cache
warming cannot flatter either side; best-of-N is reported.  GC stays on —
allocation pressure is a real cost of the python loops being displaced.

Run directly (``python benchmarks/bench_kernels.py``) for the full-scale
table, or through pytest (``pytest benchmarks/bench_kernels.py``).  Either
way each run writes one timestamped ``BENCH_kernels_*.json`` snapshot (see
``_bench_results.py``) recording which backend actually ran.  ``--smoke``
runs tiny instances and checks identity only — the CI benchmark-smoke
job's mode, also what a numpy-less host degrades to (both "backends" then
resolve to ``pure`` and the ratio is meaningless, so the bar is skipped).
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from _bench_results import write_snapshot
from repro import kernels
from repro.graph.generators import union_of_random_forests

NUM_VERTICES = 1_000_000
ARBORICITY = 10  # m ≈ 10M edges (ten spanning forests)
PEEL_THRESHOLD = 2 * ARBORICITY  # clears the graph: degeneracy ≤ λ ≤ 10
SPEEDUP_TARGET = 3.0
REPEATS = 3

SMOKE_VERTICES = 20_000
SMOKE_REPEATS = 2


def _timed_pair(pure_fn, numpy_fn, repeats: int = REPEATS):
    """Best-of-``repeats`` for both backends, trials interleaved."""
    best_pure = best_numpy = float("inf")
    pure_result = numpy_result = None
    for _ in range(repeats):
        start = time.perf_counter()
        pure_result = pure_fn()
        best_pure = min(best_pure, time.perf_counter() - start)
        start = time.perf_counter()
        numpy_result = numpy_fn()
        best_numpy = min(best_numpy, time.perf_counter() - start)
    return best_pure, pure_result, best_numpy, numpy_result


def run_kernel_benchmark(
    num_vertices: int = NUM_VERTICES, repeats: int = REPEATS
) -> dict[str, float]:
    graph = union_of_random_forests(num_vertices, arboricity=ARBORICITY, seed=11)
    n = graph.num_vertices
    # Materialise every input column outside the timed region — the kernels
    # are the unit under test, not the CSR build.
    indptr, indices, degrees = graph.csr_indptr, graph.csr_indices, graph.degrees
    edge_u, edge_v = graph.edge_endpoints
    rank = list(range(n))

    with kernels.use_backend(kernels.NUMPY) as resolved:
        numpy_ran = resolved == kernels.NUMPY

    results: dict[str, float] = {"numpy_available": 1.0 if numpy_ran else 0.0}

    def timed(name, fn):
        pure_s, pure_out, numpy_s, numpy_out = _timed_pair(
            lambda: fn(kernels.PURE), lambda: fn(kernels.NUMPY), repeats
        )
        assert pure_out == numpy_out, f"{name}: backends diverged"
        results[f"{name}_pure_s"] = pure_s
        results[f"{name}_numpy_s"] = numpy_s
        results[f"{name}_speedup"] = pure_s / max(numpy_s, 1e-9)
        return pure_out

    layers, _rounds = timed(
        "peel",
        lambda backend: kernels.peel_layers(
            n, indptr, indices, degrees, PEEL_THRESHOLD, backend=backend
        ),
    )
    assert all(layers), "peel threshold must clear the whole graph"

    heads = timed(
        "orient",
        lambda backend: kernels.orient_by_rank(edge_u, edge_v, rank, backend=backend),
    )

    timed(
        "tally",
        lambda backend: kernels.tally_outdegrees(
            n, edge_u, edge_v, heads, backend=backend
        ),
    )

    # Merge inputs: split the canonical columns into even/odd edge halves —
    # disjoint, sorted, and interleaved (the shape Lemma 2.1 produces).
    a_u, a_v, a_h = edge_u[0::2], edge_v[0::2], heads[0::2]
    b_u, b_v, b_h = edge_u[1::2], edge_v[1::2], heads[1::2]
    timed(
        "merge",
        lambda backend: kernels.merge_oriented_columns(
            n, a_u, a_v, a_h, b_u, b_v, b_h, backend=backend
        ),
    )

    results["composite_pure_s"] = results["peel_pure_s"] + results["orient_pure_s"]
    results["composite_numpy_s"] = results["peel_numpy_s"] + results["orient_numpy_s"]
    results["composite_speedup"] = results["composite_pure_s"] / max(
        results["composite_numpy_s"], 1e-9
    )
    return results


def _meta(smoke: bool = False) -> dict:
    return {
        "num_vertices": SMOKE_VERTICES if smoke else NUM_VERTICES,
        "arboricity": ARBORICITY,
        "peel_threshold": PEEL_THRESHOLD,
        "repeats": SMOKE_REPEATS if smoke else REPEATS,
        "kernel_backends": list(kernels.available_backends()),
        "smoke": smoke,
    }


def _print_table(results: dict[str, float], num_vertices: int) -> None:
    print(
        f"\nkernel backends @ n={num_vertices}, m≈{num_vertices * ARBORICITY} "
        f"(union-of-forests λ≤{ARBORICITY})"
    )
    for name in ("peel", "orient", "tally", "merge", "composite"):
        pure_s = results[f"{name}_pure_s"]
        numpy_s = results[f"{name}_numpy_s"]
        print(
            f"  {name:<10} pure {pure_s:8.3f}s   numpy {numpy_s:8.3f}s   "
            f"{results[f'{name}_speedup']:6.1f}x"
        )
    print(
        f"  composite (peel+orient) speedup: {results['composite_speedup']:.1f}x "
        f"(target ≥ {SPEEDUP_TARGET}x)"
    )


def test_kernel_composite_speedup():
    """Full-scale bar: numpy ≥ 3× on peel+orient, outputs byte-identical."""
    results = run_kernel_benchmark()
    write_snapshot("kernels", results, meta=_meta())
    _print_table(results, NUM_VERTICES)
    if not results["numpy_available"]:
        pytest.skip("numpy not importable; identity trivially holds on pure alone")
    assert results["composite_speedup"] >= SPEEDUP_TARGET, (
        f"composite speedup {results['composite_speedup']:.2f}x below the "
        f"{SPEEDUP_TARGET}x bar: {results}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances, identity checks only (CI smoke mode)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        n, repeats = SMOKE_VERTICES, SMOKE_REPEATS
    else:
        n, repeats = NUM_VERTICES, REPEATS
    results = run_kernel_benchmark(n, repeats)
    _print_table(results, n)
    path = write_snapshot("kernels", results, meta=_meta(args.smoke))
    print(f"  snapshot: {path}")
    if args.smoke or not results["numpy_available"]:
        print("  identity: PASS (bar skipped: smoke mode or numpy unavailable)")
        return 0
    ok = results["composite_speedup"] >= SPEEDUP_TARGET
    print(f"  speedup target: {SPEEDUP_TARGET}x -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
