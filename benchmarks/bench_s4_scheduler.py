"""S4 — round-budgeted cross-tenant scheduling on a skewed fleet.

The S4 registry suite serves one fleet shape — 8 tenants (2 bursty,
6 steady) — under the three scheduling policies and two round budgets.  The
headline trade is **tail latency / backlog vs. round budget**: ``serve-all``
unbudgeted has zero latency but unbounded per-tick work; the budgeted
policies defer tenants (their batches carry over intact) to keep every
tick's folded rounds within the cap.

Checks (the ISSUE 5 acceptance scenario):

* with ``top-k-backlog, K=3`` the per-tick folded rounds stay ≤ the round
  budget on **every** tick;
* total updates applied equals total submitted for every policy
  (conservation — nothing lost or duplicated by deferral);
* each served tenant's final orientation/coloring/report stream is
  byte-identical to the same tenant run standalone;
* a quota-breaching tenant is quarantined while its siblings' results are
  unchanged.

Run directly (``python benchmarks/bench_s4_scheduler.py``) for the table,
``--smoke`` for the tiny CI mode (contract checks only), or through pytest
(``pytest benchmarks/bench_s4_scheduler.py``).
"""

from __future__ import annotations

import argparse
import sys

import pytest

from repro.engine import derive_seed
from repro.errors import QuotaExceededError
from repro.experiments.registry import get_experiment
from repro.experiments.streaming import run_scheduler_experiment
from repro.stream.engine import StreamEngine
from repro.stream.scheduler import make_planner
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch
from repro.stream.workloads import skewed_tenant_traces

SPEC = get_experiment("S4")

SMOKE_FLEET = dict(
    num_tenants=4,
    num_vertices=48,
    num_bursty=1,
    num_batches=2,
    batch_size=16,
    burst_factor=3,
    burst_period=2,
    seed=3,
)
SMOKE_BUDGET = 12


def _service_fingerprint(service):
    return (
        tuple(tuple(sorted(out)) for out in service.orientation._out),
        tuple(service.coloring._colors),
        [tuple(sorted(report.as_dict().items())) for report in service.summary.reports],
    )


def run_acceptance_checks(
    fleet_params=None, policy="top-k-backlog", options=None, budget=SMOKE_BUDGET, seed=9
):
    """The S4 contracts on one fleet/policy/budget; returns a metrics dict."""
    fleet_params = fleet_params or SMOKE_FLEET
    options = options if options is not None else {"k": 3}
    traces = skewed_tenant_traces(**fleet_params)
    submitted = sum(trace.num_updates for trace in traces)
    with StreamEngine(
        seed=seed, planner=make_planner(policy, **options), round_budget=budget
    ) as engine:
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        engine.run_until_drained(max_ticks=500)
        engine.verify()
        budget_ok = all(tick.rounds <= budget for tick in engine.ticks)
        applied = sum(
            engine.tenant_summary(name).total_updates for name in engine.tenant_names()
        )
        identical = True
        for index, trace in enumerate(traces):
            standalone = StreamingService(trace.initial, seed=derive_seed(seed, index))
            standalone.apply_all(trace.batches)
            identical = identical and (
                _service_fingerprint(engine.tenant_service(trace.name))
                == _service_fingerprint(standalone)
            )
            standalone.close()
        return {
            "ticks": float(len(engine.ticks)),
            "deferred": float(engine.summary.total_deferred),
            "budget_ok": 1.0 if budget_ok else 0.0,
            "submitted": float(submitted),
            "applied": float(applied),
            "identical": 1.0 if identical else 0.0,
        }


def run_quota_isolation_check(seed=9):
    """A quota-breaching tenant is quarantined; its sibling is unchanged."""
    traces = skewed_tenant_traces(
        num_tenants=1, num_vertices=48, num_bursty=0, num_batches=2,
        batch_size=16, seed=4,
    )
    good = traces[0]
    hog_initial = good.initial
    probe = StreamingService(hog_initial, seed=derive_seed(seed, 1))
    quota = max(
        probe.cluster.stats.peak_global_memory_words,
        probe.cluster.global_memory_in_use(),
    ) + 4  # room for ≤2 net inserts
    probe.close()
    inserts = []
    for u in range(hog_initial.num_vertices):
        for v in range(u + 1, hog_initial.num_vertices):
            if not hog_initial.has_edge(u, v):
                inserts.append(("+", u, v))
                if len(inserts) == 10:
                    break
        if len(inserts) == 10:
            break
    with StreamEngine(seed=seed) as engine:
        engine.add_tenant(good.name, good.initial)
        engine.add_tenant("hog", hog_initial, memory_quota=quota)
        engine.submit_all(good.name, good.batches)
        engine.submit("hog", UpdateBatch.from_ops(inserts))
        breached = False
        try:
            engine.run_until_drained(max_ticks=50)
        except QuotaExceededError:
            breached = True
            engine.run_until_drained(max_ticks=50)  # siblings keep draining
        engine.verify()
        standalone = StreamingService(good.initial, seed=derive_seed(seed, 0))
        standalone.apply_all(good.batches)
        sibling_ok = _service_fingerprint(
            engine.tenant_service(good.name)
        ) == _service_fingerprint(standalone)
        standalone.close()
        return {
            "breached": 1.0 if breached else 0.0,
            "quarantined": 1.0 if set(engine.quarantined()) == {"hog"} else 0.0,
            "hog_batch_intact": 1.0 if engine.pending("hog") == 1 else 0.0,
            "sibling_identical": 1.0 if sibling_ok else 0.0,
        }


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_s4_scheduler_row(workload):
    # Imported here so the module also runs directly (`python benchmarks/...`),
    # where the benchmarks package is not importable.
    from benchmarks.conftest import record_row

    row = run_scheduler_experiment(workload)
    data = row.as_dict()
    record_row("S4 — " + SPEC.claim, SPEC.columns, data)
    assert data["budget_ok"] == 1.0, data
    assert data["conserved"] == 1.0, data
    assert data["proper"] == 1.0, data


def test_s4_budgeted_policies_defer_while_serve_all_does_not():
    rows = {
        workload.name: run_scheduler_experiment(workload).as_dict()
        for workload in SPEC.workloads
    }
    assert rows["serve-all-unbudgeted"]["deferred"] == 0.0
    assert rows["serve-all-unbudgeted"]["tail_latency"] == 0.0
    for name, data in rows.items():
        if name != "serve-all-unbudgeted":
            assert data["deferred"] > 0.0, (name, data)
            assert data["tail_latency"] > 0.0, (name, data)
    # A larger budget can only help the same policy's latency.
    assert (
        rows["top3-backlog-b36"]["tail_latency"]
        <= rows["top3-backlog-b18"]["tail_latency"]
    )


def test_s4_acceptance_contracts():
    results = run_acceptance_checks()
    assert results["budget_ok"] == 1.0, results
    assert results["applied"] == results["submitted"], results
    assert results["identical"] == 1.0, results
    assert results["deferred"] > 0.0, results  # the budget actually bound


def test_s4_quota_breach_isolation():
    results = run_quota_isolation_check()
    assert results == {
        "breached": 1.0,
        "quarantined": 1.0,
        "hog_batch_intact": 1.0,
        "sibling_identical": 1.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fleet, contract checks only (CI smoke mode)",
    )
    args = parser.parse_args(argv)

    ok = True
    print("S4 scheduling contracts (top-k-backlog, K=3, smoke fleet)")
    contracts = run_acceptance_checks()
    width = max(len(key) for key in contracts)
    for key, value in contracts.items():
        print(f"  {key:<{width}}  {value:,.1f}")
    ok = ok and contracts["budget_ok"] == 1.0
    ok = ok and contracts["applied"] == contracts["submitted"]
    ok = ok and contracts["identical"] == 1.0

    print("\nquota breach isolation")
    quota = run_quota_isolation_check()
    width = max(len(key) for key in quota)
    for key, value in quota.items():
        print(f"  {key:<{width}}  {value:,.1f}")
    ok = ok and all(value == 1.0 for value in quota.values())

    if not args.smoke:
        from repro.analysis.reporting import Table

        table = Table(title="S4 — " + SPEC.claim, columns=list(SPEC.columns))
        for workload in SPEC.workloads:
            table.add_row(run_scheduler_experiment(workload).as_dict())
        table.print()

    print(f"\ncontracts: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
