"""E4 — Lemmas 2.1/2.2: random partitioning reduces per-part arboricity to O(log n).

For dense planted-community workloads (λ ≫ log n), partition the edges and the
vertices into ⌈k / log n⌉ random parts and record the worst per-part
degeneracy (our arboricity proxy) against the O(log n) target.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import record_row
from repro.core.partitioning import random_edge_partition, random_vertex_partition
from repro.experiments.registry import get_experiment
from repro.graph.arboricity import degeneracy

SPEC = get_experiment("E4")


@pytest.mark.parametrize("workload", SPEC.workloads, ids=lambda w: w.name)
def test_e4_partitioning(benchmark, workload):
    graph = workload.materialize()
    original = degeneracy(graph)

    def run():
        edge_partition = random_edge_partition(graph, arboricity_bound=original, seed=4)
        vertex_partition = random_vertex_partition(graph, arboricity_bound=original, seed=5)
        worst_edges = max(degeneracy(part) for part in edge_partition.parts)
        worst_vertices = max(
            (degeneracy(part) for part in vertex_partition.parts if part.num_vertices),
            default=0,
        )
        return edge_partition.num_parts, worst_edges, worst_vertices

    parts, worst_edges, worst_vertices = benchmark.pedantic(run, rounds=1, iterations=1)
    log_n = math.log2(graph.num_vertices)
    record_row(
        "E4 — " + SPEC.claim,
        SPEC.columns,
        {
            "workload": workload.describe(),
            "n": graph.num_vertices,
            "lambda_hi": original,
            "parts": parts,
            "max_part_arboricity_edges": worst_edges,
            "max_part_arboricity_vertices": worst_vertices,
            "log_n_budget": round(4 * log_n, 1),
        },
    )
    if parts > 1:
        assert worst_edges <= 4 * log_n
        assert worst_vertices <= 4 * log_n
