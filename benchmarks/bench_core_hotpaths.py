"""Pin the CSR-core speedup on the three hot paths the refactor targeted.

Composite benchmark at n=100k (union of 8 random spanning forests, λ ≤ 8):

1. ``PartialLayerAssignment.from_peeling`` — frontier peel kernel vs. the
   seed's per-round full-vertex rescan into a ``dict[int, float]``;
2. ``Graph.induced_subgraph`` — CSR slice walk over the kept vertices vs. the
   seed's scan of every parent edge plus eager rebuild of the sorted
   adjacency tuples;
3. orientation merge — sorted two-pointer merge of edge-indexed head arrays
   vs. the seed's set-overlap + dict-union + per-edge re-validation.

The reference implementations below replicate the seed algorithms *and* the
seed's eager data-structure builds, so the measured ratio is the real
before/after of the refactor.  To keep the comparison symmetric, the fast
paths fully materialise their outputs (CSR adjacency included) inside the
timed region — laziness is not allowed to hide work the seed performed.

The acceptance bar for the refactor is a composite speedup of at least 3×.
Run directly (``python benchmarks/bench_core_hotpaths.py``) for a quick
table, or through pytest (``pytest benchmarks/bench_core_hotpaths.py``).
"""

from __future__ import annotations

import time

from _bench_results import write_snapshot
from repro import kernels
from repro.core.layering import UNASSIGNED, PartialLayerAssignment
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph, normalize_edge
from repro.graph.orientation import Orientation

NUM_VERTICES = 100_000
ARBORICITY = 8
PEEL_THRESHOLD = 2 * ARBORICITY
SPEEDUP_TARGET = 3.0


# --------------------------------------------------------------------------- #
# Seed-replica reference implementations
# --------------------------------------------------------------------------- #


def reference_from_peeling(graph: Graph, threshold: int) -> PartialLayerAssignment:
    """The seed peel loop: full vertex rescan per round, dict-backed layers."""
    n = graph.num_vertices
    degree = list(graph.degrees)
    removed = [False] * n
    layer_of: dict[int, float] = {v: UNASSIGNED for v in range(n)}
    current_layer = 1
    remaining = n
    while remaining > 0:
        peel = [v for v in range(n) if not removed[v] and degree[v] <= threshold]
        if not peel:
            break
        for v in peel:
            layer_of[v] = current_layer
            removed[v] = True
        remaining -= len(peel)
        for v in peel:
            for w in graph.neighbors(v):
                if not removed[w]:
                    degree[w] -= 1
        current_layer += 1
    return PartialLayerAssignment(
        graph=graph,
        layer_of=layer_of,
        num_layers=max(current_layer - 1, 1),
        out_degree=threshold,
    )


class SeedGraph:
    """The seed's eager representation: edge set + sorted adjacency tuples."""

    def __init__(self, num_vertices: int, edges):
        self.num_vertices = num_vertices
        edge_set = set()
        adjacency = [[] for _ in range(num_vertices)]
        for u, v in edges:
            e = normalize_edge(u, v)
            if e in edge_set:
                raise ValueError(f"duplicate edge {e}")
            edge_set.add(e)
            adjacency[e[0]].append(e[1])
            adjacency[e[1]].append(e[0])
        self.edges = tuple(sorted(edge_set))
        self.adjacency = tuple(tuple(sorted(a)) for a in adjacency)
        self.degrees = tuple(len(a) for a in self.adjacency)


def reference_induced_subgraph(graph: Graph, vertex_subset) -> SeedGraph:
    """The seed extraction: scan every parent edge, rebuild eagerly."""
    kept = sorted(set(int(v) for v in vertex_subset))
    local_of = {p: i for i, p in enumerate(kept)}
    kept_set = set(kept)
    edges = [
        (local_of[u], local_of[v])
        for (u, v) in graph.edges
        if u in kept_set and v in kept_set
    ]
    return SeedGraph(len(kept), edges)


def reference_merge(a: Orientation, b: Orientation):
    """The seed merge: set overlap check, dict union, eager re-validation."""
    overlap = set(a.direction) & set(b.direction)
    if overlap:
        raise ValueError("parts overlap")
    merged = SeedGraph(
        a.graph.num_vertices, set(a.graph.edges) | set(b.graph.edges)
    )
    # Build the dicts the way the seed's merge did (C-speed dict copies).
    direction = dict(zip(a.graph.edges, a._heads))
    direction.update(zip(b.graph.edges, b._heads))
    # The seed Orientation.__post_init__: coverage check via sets, endpoint
    # check + outdegree tally via a dict scan.
    expected = set(merged.edges)
    provided = set(direction.keys())
    if provided != expected:
        raise ValueError("orientation does not cover the edge set")
    outdegree = [0] * merged.num_vertices
    for (u, v), head in direction.items():
        if head not in (u, v):
            raise ValueError("bad head")
        tail = u if head == v else v
        outdegree[tail] += 1
    return merged, direction, tuple(outdegree)


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #


def _timed_pair(fast_fn, ref_fn, repeats: int = 5):
    """Best-of-``repeats`` wall time for both sides, trials interleaved.

    Interleaving (fast, ref, fast, ref, ...) cancels systematic drift —
    thermal ramp-up, cache warming, background load — that would otherwise
    flatter whichever side runs last.  GC stays on: allocation-induced GC
    pressure is a real cost of the dict-heavy seed design being compared.
    """
    best_fast = best_ref = float("inf")
    fast_result = ref_result = None
    for _ in range(repeats):
        start = time.perf_counter()
        fast_result = fast_fn()
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        ref_result = ref_fn()
        best_ref = min(best_ref, time.perf_counter() - start)
    return best_fast, fast_result, best_ref, ref_result


def run_composite(num_vertices: int = NUM_VERTICES) -> dict[str, float]:
    graph = union_of_random_forests(num_vertices, ARBORICITY, seed=7)
    # Warm every memoised view of the *input* graph so neither side pays (or
    # dodges) first-touch costs: the seed had all of these prebuilt.
    graph.csr_indptr, graph.edges, graph.degrees
    for v in graph.vertices:
        graph.neighbors(v)

    # A 25% residue — the shape the iterated layer assignment actually
    # extracts (the unassigned remainder shrinks geometrically).
    kept = list(range(0, num_vertices, 4))
    # Interleaved random halves, the shape Lemma 2.1's partition produces.
    import random as _random

    rng = _random.Random(3)
    mask = [rng.random() < 0.5 for _ in range(graph.num_edges)]
    part_a = Graph._from_canonical_sorted(
        num_vertices, [e for e, pick in zip(graph.edges, mask) if pick]
    )
    part_b = Graph._from_canonical_sorted(
        num_vertices, [e for e, pick in zip(graph.edges, mask) if not pick]
    )
    rank = list(range(num_vertices))
    orient_a = Orientation.from_vertex_order(part_a, rank)
    orient_b = Orientation.from_vertex_order(part_b, rank)
    part_a.edges, part_b.edges

    results: dict[str, float] = {}

    results["peel_new"], fast_peel, results["peel_ref"], ref_peel = _timed_pair(
        lambda: PartialLayerAssignment.from_peeling(graph, PEEL_THRESHOLD),
        lambda: reference_from_peeling(graph, PEEL_THRESHOLD),
    )
    assert fast_peel.layer_of == ref_peel.layer_of
    assert fast_peel.num_layers == ref_peel.num_layers

    def fast_subgraph():
        sub = graph.induced_subgraph(kept)
        sub.csr_indptr  # materialise the adjacency, as the seed did
        sub.degrees
        return sub

    results["subgraph_new"], fast_sub, results["subgraph_ref"], ref_sub = _timed_pair(
        fast_subgraph,
        lambda: reference_induced_subgraph(graph, kept),
    )
    assert fast_sub.edges == ref_sub.edges
    assert fast_sub.degrees == ref_sub.degrees

    def fast_merge():
        merged = orient_a.merge_with(orient_b)
        merged.graph.csr_indptr  # materialise, as the seed did
        return merged

    results["merge_new"], fast_merged, results["merge_ref"], ref_merged = _timed_pair(
        fast_merge,
        lambda: reference_merge(orient_a, orient_b),
    )
    assert fast_merged.graph.edges == ref_merged[0].edges
    assert fast_merged.outdegrees == ref_merged[2]

    results["composite_new"] = (
        results["peel_new"] + results["subgraph_new"] + results["merge_new"]
    )
    results["composite_ref"] = (
        results["peel_ref"] + results["subgraph_ref"] + results["merge_ref"]
    )
    results["speedup"] = results["composite_ref"] / max(results["composite_new"], 1e-9)
    return results


def _print_table(results: dict[str, float]) -> None:
    print(f"\ncore hot paths @ n={NUM_VERTICES}, union-of-forests λ={ARBORICITY}")
    for name in ("peel", "subgraph", "merge", "composite"):
        new = results[f"{name}_new"]
        ref = results[f"{name}_ref"]
        print(f"  {name:<10} seed-style {ref:7.3f}s   csr {new:7.3f}s   {ref / max(new, 1e-9):5.1f}x")
    print(f"  composite speedup: {results['speedup']:.1f}x (target ≥ {SPEEDUP_TARGET}x)")


def _meta() -> dict:
    return {
        "num_vertices": NUM_VERTICES,
        "arboricity": ARBORICITY,
        "peel_threshold": PEEL_THRESHOLD,
        "kernel_backend": kernels.active_backend(),
    }


def test_core_hotpaths_speedup():
    results = run_composite()
    write_snapshot("core_hotpaths", results, meta=_meta())
    _print_table(results)
    assert results["speedup"] >= SPEEDUP_TARGET, (
        f"composite speedup {results['speedup']:.2f}x below the {SPEEDUP_TARGET}x bar: {results}"
    )


if __name__ == "__main__":
    results = run_composite()
    _print_table(results)
    print(f"  snapshot: {write_snapshot('core_hotpaths', results, meta=_meta())}")
