"""Streaming subsystem: dynamic graphs with incremental maintenance.

The static pipeline (Theorems 1.1/1.2) computes an orientation or coloring of
a frozen graph from scratch.  This package serves the *dynamic* workload
class: the graph changes under a stream of edge insertions and deletions and
the bounded-outdegree orientation (and a proper coloring) must be
*maintained*, not recomputed.

* :mod:`repro.stream.dynamic_graph` — :class:`DynamicGraph`, a mutable overlay
  (add journal + deletion tombstones) over the immutable CSR
  :class:`~repro.graph.graph.Graph`, with amortised compaction back into CSR
  so all read-path kernels keep working on snapshots.
* :mod:`repro.stream.orientation` — :class:`IncrementalOrientation`,
  Brodal–Fagerberg-style flip-path maintenance of a max-outdegree ``O(λ)``
  orientation, with a full Theorem 1.1 rebuild as quality fallback.
* :mod:`repro.stream.coloring` — :class:`IncrementalColoring`, repair-only
  recoloring of vertices whose palette an insertion invalidates.
* :mod:`repro.stream.updates` — update/batch value objects and per-batch
  metric reports.
* :mod:`repro.stream.service` — :class:`StreamingService`, the batch API that
  applies updates, charges them through :class:`~repro.mpc.cluster.MPCCluster`
  rounds, and reports per-batch metrics.
* :mod:`repro.stream.engine` — :class:`StreamEngine`, the multi-tenant
  multiplexer: N independent services on one shared executor + one shared
  ledger, with ticks charged as parallel supersteps (max-over-tenants).
  Runs resident (a background ticker drains concurrent submissions) and
  moves tenants through a typed lifecycle
  (provisioning → active → quarantined → lifted → retired).
* :mod:`repro.stream.checkpoint` — versioned, checksummed on-disk snapshots
  of a complete engine (journal columns, orientation heads, colors, ledgers,
  queues, planner credits); restore is byte-identical and verified against
  the recorded fingerprint.
* :mod:`repro.stream.scheduler` — cross-tenant tick scheduling:
  :class:`TickPlanner` policies (serve-all / top-k-backlog /
  deficit-round-robin) admitting tenants under a per-tick round budget.
* :mod:`repro.stream.workloads` — streaming trace generators (uniform churn,
  sliding window, densifying-core adversary) and the :class:`StreamWorkload`
  descriptions used by the experiment registry.
"""

from repro.stream.coloring import IncrementalColoring
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.engine import StreamEngine, TenantState, TickReport
from repro.stream.orientation import IncrementalOrientation
from repro.stream.scheduler import (
    POLICIES,
    DeficitRoundRobinPlanner,
    ServeAllPlanner,
    TenantLoad,
    TickPlanner,
    TopKBacklogPlanner,
    estimate_batch_rounds,
    make_planner,
)
from repro.stream.service import StreamingService
from repro.stream.updates import BatchReport, EdgeUpdate, StreamSummary, UpdateBatch
from repro.stream.workloads import (
    MultiTenantWorkload,
    SchedulerWorkload,
    StreamTrace,
    StreamWorkload,
    bursty_churn_trace,
    densifying_core_trace,
    generate_trace,
    multi_tenant_suite,
    multi_tenant_traces,
    scheduler_suite,
    skewed_tenant_traces,
    sliding_window_trace,
    stream_family_names,
    streaming_suite,
    uniform_churn_trace,
)

__all__ = [
    "POLICIES",
    "BatchReport",
    "DeficitRoundRobinPlanner",
    "DynamicGraph",
    "EdgeUpdate",
    "IncrementalColoring",
    "IncrementalOrientation",
    "MultiTenantWorkload",
    "SchedulerWorkload",
    "ServeAllPlanner",
    "StreamEngine",
    "StreamSummary",
    "StreamTrace",
    "StreamWorkload",
    "StreamingService",
    "TenantLoad",
    "TenantState",
    "TickPlanner",
    "TickReport",
    "TopKBacklogPlanner",
    "UpdateBatch",
    "bursty_churn_trace",
    "densifying_core_trace",
    "estimate_batch_rounds",
    "generate_trace",
    "make_planner",
    "multi_tenant_suite",
    "multi_tenant_traces",
    "scheduler_suite",
    "skewed_tenant_traces",
    "sliding_window_trace",
    "stream_family_names",
    "streaming_suite",
    "uniform_churn_trace",
]
