"""Incremental maintenance of a bounded-outdegree orientation.

This is the Brodal–Fagerberg-style dynamic counterpart of Theorem 1.1: an
orientation of a :class:`~repro.stream.dynamic_graph.DynamicGraph` whose
maximum outdegree stays ``O(λ)`` per update.

* **Insertion** orients the new edge out of the endpoint with the smaller
  outdegree.  If that pushes the tail past the cap ``flip_slack · λ̂`` (where
  ``λ̂`` is the maintained arboricity estimate), a BFS along *out*-edges finds
  the nearest vertex with spare out-capacity and the whole path is flipped —
  the classical argument shows such flip paths are short (O(log n) for
  ``cap ≥ 2λ``) and their total length is amortised O(log n) per insertion.
* **Deletion** simply drops the oriented edge; outdegrees only decrease, so
  the invariant is preserved for free.
* **Fallback.** When no flip path exists (the reachable region is saturated,
  which certifies that the density outgrew the estimate) the maintainer falls
  back to the full Theorem 1.1 pipeline (:func:`repro.core.orientation.orient`)
  on a compacted snapshot, refreshing ``λ̂`` from the degeneracy.  The same
  fallback runs — amortised, via :meth:`ensure_quality` — when deletions make
  ``λ̂`` stale-high, so the cap tracks the *current* graph's arboricity in
  both directions.

Invariant (checked by tests): ``max_outdegree() ≤ outdegree_cap`` at all
times, and after a quality check the cap is at most
``2 · flip_slack · degeneracy(G)`` (≤ ``4 · flip_slack · λ(G)``), i.e. O(λ)
of the current graph, up to the Theorem 1.1 ``log log n`` factor immediately
after a fallback rebuild.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GraphError
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.graph import Graph, normalize_edge
from repro.graph.orientation import Orientation
from repro.stream.dynamic_graph import DynamicGraph


class IncrementalOrientation:
    """Maintains ``out[v]`` — the heads of edges oriented out of ``v``.

    Parameters
    ----------
    dynamic:
        The dynamic graph being maintained.  The maintainer does **not**
        mutate it; callers apply each update to the graph first (or use
        :class:`~repro.stream.service.StreamingService`, which sequences
        both).
    lambda_bound:
        Initial arboricity estimate ``λ̂``; computed from the degeneracy of
        the initial snapshot when omitted.
    flip_slack:
        The outdegree cap is ``flip_slack · λ̂`` (Brodal–Fagerberg need
        ``> 2λ`` for short flip paths; we default to 4).
    quality_interval:
        Floor on the number of updates between degeneracy re-estimations
        (rebuild if ``λ̂`` went stale-high).  The effective interval is
        ``max(quality_interval, m/4)``, so the O(n + m) check is amortised
        O(1) per update at every scale.
    cluster:
        Optional :class:`~repro.mpc.cluster.MPCCluster`; fallback rebuilds run
        the Theorem 1.1 pipeline against it so their rounds are accounted.
    """

    def __init__(
        self,
        dynamic: DynamicGraph,
        lambda_bound: int | None = None,
        flip_slack: int = 4,
        quality_interval: int = 1024,
        delta: float = 0.5,
        seed: int = 0,
        cluster=None,
    ) -> None:
        if flip_slack < 2:
            raise GraphError("flip_slack must be at least 2 for flip paths to exist")
        self._dynamic = dynamic
        self.flip_slack = flip_slack
        self.quality_interval = max(int(quality_interval), 1)
        self._delta = delta
        self._seed = seed
        self._cluster = cluster
        self._out: list[set[int]] = [set() for _ in range(dynamic.num_vertices)]
        self.flips = 0
        self.rebuilds = 0
        self._updates_since_check = 0
        snapshot = dynamic.snapshot()
        if lambda_bound is None:
            lambda_bound = max(1, arboricity_upper_bound(snapshot))
        self.lambda_bound = max(1, int(lambda_bound))
        self.outdegree_cap = max(self.flip_slack * self.lambda_bound, 1)
        if snapshot.num_edges:
            self._install_full_orientation(snapshot)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def outdegree(self, v: int) -> int:
        """Current outdegree of vertex ``v``."""
        return len(self._out[v])

    def max_outdegree(self) -> int:
        """Maximum outdegree over all vertices (O(n) scan)."""
        return max((len(s) for s in self._out), default=0)

    def out_neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted heads of the edges oriented out of ``v``."""
        return tuple(sorted(self._out[v]))

    def head(self, u: int, v: int) -> int:
        """The head of the (live) edge ``{u, v}`` under the maintained orientation."""
        if v in self._out[u]:
            return v
        if u in self._out[v]:
            return u
        raise GraphError(f"edge {normalize_edge(u, v)} is not oriented")

    def to_orientation(self, graph: Graph | None = None) -> Orientation:
        """Freeze the maintained directions into an :class:`Orientation`.

        ``graph`` defaults to a fresh snapshot of the dynamic graph; it must
        have exactly the currently live edge set.
        """
        if graph is None:
            graph = self._dynamic.snapshot()
        return Orientation(
            graph, {(u, v): self.head(u, v) for u, v in zip(*graph.edge_endpoints)}
        )

    def oriented_edge_count(self) -> int:
        """Number of oriented edges (equals the live edge count, invariantly)."""
        return sum(len(s) for s in self._out)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def insert(self, u: int, v: int) -> None:
        """Orient a newly inserted edge, flipping a path if the tail saturates."""
        out = self._out
        if len(out[u]) <= len(out[v]):
            tail, head = u, v
        else:
            tail, head = v, u
        out[tail].add(head)
        if len(out[tail]) > self.outdegree_cap:
            self._repair(tail)
        self._tick()

    def delete(self, u: int, v: int) -> None:
        """Drop a deleted edge from whichever endpoint owns it."""
        if v in self._out[u]:
            self._out[u].discard(v)
        elif u in self._out[v]:
            self._out[v].discard(u)
        else:
            raise GraphError(f"edge {normalize_edge(u, v)} is not oriented")
        self._tick()

    def _repair(self, overloaded: int) -> None:
        """BFS along out-edges for spare capacity; flip the path, else rebuild."""
        cap = self.outdegree_cap
        out = self._out
        parent: dict[int, int] = {overloaded: overloaded}
        frontier = deque([overloaded])
        target = -1
        while frontier:
            x = frontier.popleft()
            for w in out[x]:
                if w in parent:
                    continue
                parent[w] = x
                if len(out[w]) < cap:
                    target = w
                    frontier.clear()
                    break
                frontier.append(w)
        if target < 0:
            # Every vertex reachable along out-edges is saturated, so the
            # reachable region has density ≥ cap: the graph outgrew λ̂.  Fall
            # back to the full static pipeline with a strictly larger estimate
            # (the fresh degeneracy is ≥ the old cap here, so no thrashing).
            fresh = max(1, arboricity_upper_bound(self._dynamic.snapshot()))
            self._rebuild(reason="saturated", lambda_bound=max(fresh, self.lambda_bound + 1))
            return
        length = 0
        x = target
        while x != overloaded:
            p = parent[x]
            out[p].discard(x)
            out[x].add(p)
            x = p
            length += 1
        self.flips += length

    def _quality_threshold(self) -> int:
        """Updates between quality checks: Θ(m), floored by ``quality_interval``."""
        return max(self.quality_interval, self._dynamic.num_edges // 4)

    def _tick(self) -> None:
        self._updates_since_check += 1
        if self._updates_since_check >= self._quality_threshold():
            self.ensure_quality()

    # ------------------------------------------------------------------ #
    # Quality fallback
    # ------------------------------------------------------------------ #

    def ensure_quality(self, force: bool = False) -> bool:
        """Refresh ``λ̂`` from the current degeneracy; rebuild if stale-high.

        Deletions never violate the cap, but they can leave ``λ̂`` (and hence
        the cap) far above what the *current* graph needs.  A rebuild is
        triggered when the estimate exceeds twice the fresh degeneracy — the
        comparison is against ``λ̂`` rather than the cap so that a cap widened
        by a fallback rebuild's realised outdegree cannot cause a rebuild loop
        that would never lower it.  Returns whether a rebuild happened.
        Called automatically every ``max(quality_interval, m/4)`` updates;
        ``force=True`` runs it now.
        """
        if not force and self._updates_since_check < self._quality_threshold():
            return False
        self._updates_since_check = 0
        fresh = max(1, arboricity_upper_bound(self._dynamic.snapshot()))
        if self.lambda_bound > 2 * fresh:
            self._rebuild(reason="stale-bound", lambda_bound=fresh)
            return True
        return False

    def _rebuild(self, reason: str, lambda_bound: int | None = None) -> None:
        """Full Theorem 1.1 rebuild on a compacted snapshot (quality fallback)."""
        snapshot = self._dynamic.compact()
        if lambda_bound is None:
            lambda_bound = max(1, arboricity_upper_bound(snapshot))
        self.lambda_bound = lambda_bound
        self.outdegree_cap = max(self.flip_slack * self.lambda_bound, 1)
        self._install_full_orientation(snapshot)
        self.rebuilds += 1
        if self._cluster is not None:
            self._cluster.charge_rounds(1, label=f"stream:rebuild:{reason}")

    def _install_full_orientation(self, snapshot: Graph) -> None:
        from repro.core.orientation import orient  # deferred: core imports stream-free

        run = orient(
            snapshot,
            delta=self._delta,
            k=max(2, 2 * self.lambda_bound),
            seed=self._seed,
            cluster=self._cluster,
        )
        out: list[set[int]] = [set() for _ in range(self._dynamic.num_vertices)]
        for tail, head in run.orientation.iter_directed_edges():
            out[tail].add(head)
        self._out = out
        # The static pipeline guarantees O(λ log log n), which can exceed the
        # flip cap on small graphs; widen the cap so the invariant holds.
        self.outdegree_cap = max(self.outdegree_cap, run.max_outdegree)

    def __repr__(self) -> str:
        return (
            f"IncrementalOrientation(lambda={self.lambda_bound}, cap={self.outdegree_cap}, "
            f"flips={self.flips}, rebuilds={self.rebuilds})"
        )
