"""Incremental maintenance of a bounded-outdegree orientation.

This is the Brodal–Fagerberg-style dynamic counterpart of Theorem 1.1: an
orientation of a :class:`~repro.stream.dynamic_graph.DynamicGraph` whose
maximum outdegree stays ``O(λ)`` per update.

* **Insertion** orients the new edge out of the endpoint with the smaller
  outdegree.  If that pushes the tail past the cap ``flip_slack · λ̂`` (where
  ``λ̂`` is the maintained arboricity estimate), a BFS along *out*-edges finds
  the nearest vertex with spare out-capacity and the whole path is flipped —
  the classical argument shows such flip paths are short (O(log n) for
  ``cap ≥ 2λ``) and their total length is amortised O(log n) per insertion.
* **Deletion** drops the oriented edge; outdegrees only decrease, so the
  invariant is preserved for free.  The freed out-slot is then used
  *proactively*: if some in-neighbor of the freed tail sits exactly at the
  outdegree cap, one of its in-edges is flipped toward the slot, draining
  the population of at-cap vertices between rebuilds (so the realised
  maximum outdegree tracks the current density down, not just the cap).
* **Fallback.** When no flip path exists (the reachable region is saturated,
  which certifies that the density outgrew the estimate) the maintainer falls
  back to the full Theorem 1.1 pipeline (:func:`repro.core.orientation.orient`)
  on a compacted snapshot, refreshing ``λ̂`` from the degeneracy.  The same
  fallback runs — amortised, via :meth:`ensure_quality` — when deletions make
  ``λ̂`` stale-high, so the cap tracks the *current* graph's arboricity in
  both directions.

Invariant (checked by tests): ``max_outdegree() ≤ outdegree_cap`` at all
times, and after a quality check the cap is at most
``2 · flip_slack · degeneracy(G)`` (≤ ``4 · flip_slack · λ(G)``), i.e. O(λ)
of the current graph, up to the Theorem 1.1 ``log log n`` factor immediately
after a fallback rebuild.

**Batch-parallel repair.**  :meth:`IncrementalOrientation.apply_batch`
resolves a whole :class:`~repro.stream.updates.UpdateBatch` at once by
partitioning it into *conflict groups* — connected components of updates
sharing an endpoint (:func:`plan_conflict_groups`).  Distinct groups touch
disjoint vertices, so groups whose updates provably never overflow the cap
(no flip path can start) mutate disjoint out-sets and resolve concurrently
through the engine; groups that may need a flip path — which can roam
anywhere along out-edges — fall back to serial execution, one group at a
time in deterministic group order, *after* the conflict-free phase.  The
final structure is identical for any worker count: the parallel phase's
effects are vertex-disjoint (order-free), and everything order-sensitive is
serial and deterministically ordered.

Cap-safe groups run on **any** backend.  In-process backends (serial,
thread) mutate the shared out-table directly through its disjoint slices;
the process backend cannot (workers would mutate pickled copies), so the
groups' out-table *shards* — the slices of ``out[·]`` covering exactly each
group's vertices — are published into the worker pool's shared-memory shard
registry (:mod:`repro.engine.shm`), each task ships only a shard handle, a
slot index and the group's updates to :func:`_apply_group_shm` (whose pure
core is :func:`_apply_group_sharded`), and the returned *deltas* are written
back into the table.  Cap-safety proves the group's pointer work never
leaves its vertex set, so the shard is closed under every read and write the
group performs, and the write-back is conflict-free.  The determinism
contract is unchanged: the sharded function replays the exact same tail
rule (:func:`_choose_tail`) on the exact same degrees.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro import kernels
from repro.engine import IN_PROCESS, PROCESS, WorkerPool
from repro.engine import shm
from repro.engine.shm import ShardHandle
from repro.errors import GraphError
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.graph import Graph, normalize_edge
from repro.graph.orientation import Orientation
from repro.stream.dynamic_graph import DynamicGraph


def plan_conflict_groups(updates: Sequence) -> list[list[int]]:
    """Partition batch updates into vertex-disjoint conflict groups.

    Two updates conflict when they share an endpoint; groups are the
    connected components of the conflict relation (union–find over the
    endpoints), so distinct groups touch disjoint vertex sets and their
    pointer work commutes.  Returns lists of update *indices*, each list in
    batch order, with groups ordered by their first update's index — a
    deterministic plan for any input.
    """
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for update in updates:
        for endpoint in (update.u, update.v):
            if endpoint not in parent:
                parent[endpoint] = endpoint
        ru, rv = find(update.u), find(update.v)
        if ru != rv:
            parent[rv] = ru

    groups: dict[int, list[int]] = {}
    for index, update in enumerate(updates):
        groups.setdefault(find(update.u), []).append(index)
    return sorted(groups.values(), key=lambda group: group[0])


def _choose_tail(u: int, v: int, outdeg_u: int, outdeg_v: int) -> int:
    """The insertion rule: orient out of the smaller outdegree, ``u`` on ties.

    One definition shared by ``insert``, the cap-safety precheck, and both
    batch execution paths (in-process and sharded) — the safety proof of the
    parallel phase requires the precheck and the execution to replay the
    exact same decisions, so the rule must not be duplicated.  Module-level
    so the process backend's sharded task can call it without shipping the
    maintainer object.
    """
    return u if outdeg_u <= outdeg_v else v


def _apply_group_sharded(
    shard: dict[int, tuple[int, ...]],
    group_updates: list,
    cap: int,
) -> tuple[dict[int, list[int]], list[int]]:
    """Apply one cap-safe conflict group to its out-table shard (pure).

    The process-backend twin of ``IncrementalOrientation._apply_group`` with
    ``allow_repair=False``: ``shard`` maps every vertex the group touches to
    its current out-heads, the updates are replayed against the shard alone,
    and the mutated shard plus the freed tails (deletion order) ship back
    for write-back.  Cap-safety was proved by the precheck, so an overflow —
    or an insert/delete that does not match the shard — means the precheck
    or the shard extraction is broken, and the task raises rather than
    returning a corrupt shard.  Module-level and dependent only on its
    arguments so ``ProcessPoolExecutor`` can pickle it by reference.

    The replay itself is the :func:`repro.kernels.flip_repair_group` kernel:
    the per-update decisions are inherently serial (each tail choice depends
    on the outdegrees the previous updates produced), but the numpy backend
    vectorizes the data movement around them — shard decode, membership
    tests, head writes along the flip-free paths — with byte-identical
    shards and freed lists.  The tail rule is injected so this module keeps
    its single definition of :func:`_choose_tail`.
    """
    return kernels.flip_repair_group(shard, group_updates, cap, _choose_tail)


def _apply_group_shm(
    handle: ShardHandle,
    slot: int,
    group_updates: list,
    cap: int,
) -> tuple[dict[int, list[int]], list[int]]:
    """The shared-memory twin of :func:`_apply_group_sharded`.

    The group's out-table shard is *not* in the task tuple: it is read from
    the published shard segment (:func:`repro.engine.shm.out_shard`) — the
    owner's dict zero-copy in-process, rebuilt from flat columns in a process
    worker.  The task ships only the handle, the slot, and the group's
    updates (the batch delta), and ships back only the shard *delta* — the
    vertices whose out-sets actually changed — plus the freed tails.
    """
    shard = shm.out_shard(handle, slot)
    new_shard, freed = _apply_group_sharded(shard, group_updates, cap)
    delta = {
        vertex: heads
        for vertex, heads in new_shard.items()
        if tuple(heads) != shard[vertex]
    }
    return delta, freed


def _peel_guess_task(graph: Graph, threshold: int) -> tuple[bool, int]:
    """One coreness-ladder guess: does the ``threshold``-peel clear the graph?

    Module-level so the engine's process backend can pickle it by reference.
    Returns ``(cleared, rounds_used)`` — ``cleared`` means every vertex got a
    layer, i.e. the graph's degeneracy is at most ``threshold``.
    """
    layers, rounds_used = graph.peel_layers(threshold)
    return all(layers), rounds_used


def seed_lambda_from_coreness(
    snapshot: Graph,
    epsilon: float = 0.5,
    executor=None,
    cluster=None,
) -> int:
    """Seed λ̂ from the coreness guess ladder instead of the static degeneracy.

    The default estimate (``arboricity_upper_bound``) is one serial O(n + m)
    bucket peel yielding the exact degeneracy ``d``.  This helper instead
    runs the [GLM19] guess ladder ``g = ⌈(1+ε)^i⌉`` — each guess one
    threshold-``2g`` frontier peel, fanned out through the engine when an
    ``executor`` is given (the guesses are independent, so rounds charge as
    the max over guesses plus one combine, exactly like
    :func:`repro.core.coreness.approximate_coreness`) — and returns
    ``2 · g*`` where ``g*`` is the smallest guess whose peel clears the
    graph.  Since the peel clears iff ``2g ≥ d``, the seed lands in
    ``[d, (1+ε)·d]``: never below the degeneracy, and usually *above* it by
    the ladder's round-up.  That headroom is the point — on a densifying
    trace the wider cap absorbs growth that would saturate the
    degeneracy-seeded cap, so fewer ``"saturated"`` rebuilds fire (pinned by
    the regression test).  Each peel itself runs on the active kernel
    backend, so with numpy the whole estimate is a few vectorized sweeps.
    """
    from repro.core.coreness import geometric_guesses  # deferred: core imports stream-free

    if snapshot.num_vertices == 0 or snapshot.num_edges == 0:
        return 1
    guesses = geometric_guesses(max(snapshot.max_degree(), 1), epsilon)
    tasks = [(snapshot, 2 * guess) for guess in guesses]
    if executor is not None and len(tasks) > 1:
        work = len(tasks) * (snapshot.num_vertices + snapshot.num_edges)
        results = executor.map(_peel_guess_task, tasks, total_work=work)
    else:
        results = [_peel_guess_task(*task) for task in tasks]
    cleared_at = next(
        (guess for guess, (cleared, _rounds) in zip(guesses, results) if cleared),
        guesses[-1],
    )
    if cluster is not None:
        max_rounds = max((rounds for _cleared, rounds in results), default=0)
        cluster.charge_rounds(max_rounds + 1, label="stream:lambda-seed")
    return max(1, 2 * cleared_at)


@dataclass(frozen=True)
class GroupedApplyReport:
    """What one batch-parallel repair pass did (see ``apply_batch``)."""

    num_updates: int
    num_groups: int
    parallel_groups: int
    serial_groups: int
    proactive_flips: int


class IncrementalOrientation:
    """Maintains ``out[v]`` — the heads of edges oriented out of ``v``.

    Parameters
    ----------
    dynamic:
        The dynamic graph being maintained.  The maintainer does **not**
        mutate it; callers apply each update to the graph first (or use
        :class:`~repro.stream.service.StreamingService`, which sequences
        both).
    lambda_bound:
        Initial arboricity estimate ``λ̂``; computed from the degeneracy of
        the initial snapshot when omitted.
    flip_slack:
        The outdegree cap is ``flip_slack · λ̂`` (Brodal–Fagerberg need
        ``> 2λ`` for short flip paths; we default to 4).
    quality_interval:
        Floor on the number of updates between degeneracy re-estimations
        (rebuild if ``λ̂`` went stale-high).  The effective interval is
        ``max(quality_interval, m/4)``, so the O(n + m) check is amortised
        O(1) per update at every scale.
    cluster:
        Optional :class:`~repro.mpc.cluster.MPCCluster`; fallback rebuilds run
        the Theorem 1.1 pipeline against it so their rounds are accounted.
    proactive_flips:
        When ``True`` (default), a deletion that frees an out-slot
        opportunistically flips one in-edge of an at-cap in-neighbor toward
        the slot, tightening the realised maximum outdegree between
        rebuilds.  Proactive flips are counted in :attr:`flips` and,
        separately, in :attr:`opportunistic_flips`.
    """

    def __init__(
        self,
        dynamic: DynamicGraph,
        lambda_bound: int | None = None,
        flip_slack: int = 4,
        quality_interval: int = 1024,
        delta: float = 0.5,
        seed: int = 0,
        cluster=None,
        proactive_flips: bool = True,
    ) -> None:
        if flip_slack < 2:
            raise GraphError("flip_slack must be at least 2 for flip paths to exist")
        self._dynamic = dynamic
        self.flip_slack = flip_slack
        self.quality_interval = max(int(quality_interval), 1)
        self._delta = delta
        self._seed = seed
        self._cluster = cluster
        self.proactive_flips = proactive_flips
        self._out: list[set[int]] = [set() for _ in range(dynamic.num_vertices)]
        # Flat outdegree column mirroring len(self._out[v]) at every mutation
        # site, so max_outdegree() — read per tenant per tick by the engine's
        # aggregate report — is one kernel scan instead of n len() calls.
        self._outdeg: array = array("l", [0]) * dynamic.num_vertices
        self.flips = 0
        self.opportunistic_flips = 0
        self.rebuilds = 0
        # Per-reason rebuild tally ("saturated", "stale-bound", ...): the
        # λ̂-seeding regression tests compare saturation rebuilds alone.
        self.rebuild_reasons: dict[str, int] = {}
        self._updates_since_check = 0
        snapshot = dynamic.snapshot()
        if lambda_bound is None:
            lambda_bound = max(1, arboricity_upper_bound(snapshot))
        self.lambda_bound = max(1, int(lambda_bound))
        self.outdegree_cap = max(self.flip_slack * self.lambda_bound, 1)
        if snapshot.num_edges:
            self._install_full_orientation(snapshot)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def outdegree(self, v: int) -> int:
        """Current outdegree of vertex ``v``."""
        return len(self._out[v])

    def max_outdegree(self) -> int:
        """Maximum outdegree over all vertices (one kernel scan of the
        maintained outdegree column)."""
        return kernels.max_value(self._outdeg)

    def out_neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted heads of the edges oriented out of ``v``."""
        return tuple(sorted(self._out[v]))

    def head(self, u: int, v: int) -> int:
        """The head of the (live) edge ``{u, v}`` under the maintained orientation."""
        if v in self._out[u]:
            return v
        if u in self._out[v]:
            return u
        raise GraphError(f"edge {normalize_edge(u, v)} is not oriented")

    def to_orientation(self, graph: Graph | None = None) -> Orientation:
        """Freeze the maintained directions into an :class:`Orientation`.

        ``graph`` defaults to a fresh snapshot of the dynamic graph; it must
        have exactly the currently live edge set.
        """
        if graph is None:
            graph = self._dynamic.snapshot()
        return Orientation(
            graph, {(u, v): self.head(u, v) for u, v in zip(*graph.edge_endpoints)}
        )

    def oriented_edge_count(self) -> int:
        """Number of oriented edges (equals the live edge count, invariantly)."""
        return kernels.sum_sizes(self._out)

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    # The shared tail-selection rule (see the module-level function for why
    # there is exactly one definition).
    _choose_tail = staticmethod(_choose_tail)

    def insert(self, u: int, v: int) -> None:
        """Orient a newly inserted edge, flipping a path if the tail saturates."""
        out = self._out
        tail = self._choose_tail(u, v, len(out[u]), len(out[v]))
        head = v if tail == u else u
        out[tail].add(head)
        self._outdeg[tail] += 1
        if len(out[tail]) > self.outdegree_cap:
            self._repair(tail)
        self._tick()

    def delete(self, u: int, v: int) -> None:
        """Drop a deleted edge, then reuse the freed slot proactively."""
        if v in self._out[u]:
            self._out[u].discard(v)
            freed = u
        elif u in self._out[v]:
            self._out[v].discard(u)
            freed = v
        else:
            raise GraphError(f"edge {normalize_edge(u, v)} is not oriented")
        self._outdeg[freed] -= 1
        self._proactive_flip(freed)
        self._tick()

    def _proactive_flip(self, freed: int) -> None:
        """Flip one in-edge of an at-cap in-neighbor toward a freed out-slot.

        The deletion left ``freed`` with spare out-capacity; if some live
        neighbor ``w`` with the edge oriented ``w → freed`` sits at the
        outdegree cap, re-orienting that edge to ``freed → w`` drops ``w``
        strictly below the cap while keeping ``freed`` within it — a length-1
        flip path run opportunistically instead of waiting for an insertion
        at ``w`` to force a search.  Scans ``freed``'s dynamic adjacency
        (O(deg)); picks the smallest such ``w`` for determinism.
        """
        if not self.proactive_flips:
            return
        out = self._out
        cap = self.outdegree_cap
        if len(out[freed]) >= cap:
            return
        for w in self._dynamic.neighbors(freed):
            if freed in out[w] and len(out[w]) >= cap:
                out[w].discard(freed)
                out[freed].add(w)
                self._outdeg[w] -= 1
                self._outdeg[freed] += 1
                self.flips += 1
                self.opportunistic_flips += 1
                return

    # ------------------------------------------------------------------ #
    # Batch-parallel repair (vertex-disjoint conflict groups)
    # ------------------------------------------------------------------ #

    def apply_batch(
        self,
        updates: Iterable,
        executor=None,
        pool: WorkerPool | None = None,
        shard_key: str = "repair-shards",
    ) -> GroupedApplyReport:
        """Resolve a whole update batch through conflict-group supersteps.

        The caller must have applied every update of the batch to the
        dynamic graph already (the :class:`~repro.stream.service.StreamingService`
        sequences exactly that); this method only maintains the orientation.
        The batch is split by :func:`plan_conflict_groups`; groups whose
        updates provably stay under the outdegree cap run concurrently —
        in-process backends mutate the shared out-table's disjoint slices
        directly, the process backend publishes the groups' out-table shards
        into the worker pool's shared-memory registry and maps
        :func:`_apply_group_shm` (handle + slot + updates per task), writing
        the returned deltas back — while groups that may need a flip path
        run serially afterwards in group order.  Deferred proactive flips
        are swept serially at the end.  The resulting structure is identical
        for any worker count and backend.

        ``pool`` is the resident :class:`~repro.engine.WorkerPool` to run on
        (its executor doubles as the in-process engine); with only
        ``executor`` given, a transient borrowed pool wraps it for the call.
        ``shard_key`` scopes the shard publication so several maintainers
        (one per tenant) can share one pool without colliding.

        A mid-batch Theorem 1.1 rebuild (saturated flip search in a serial
        group) re-orients the *final* batch state in one stroke — the
        dynamic graph already holds it — after which the remaining updates
        are no-ops (their edges are already oriented or already gone).
        """
        updates = list(updates)
        if not updates:
            return GroupedApplyReport(0, 0, 0, 0, 0)
        groups = plan_conflict_groups(updates)
        grouped = [[updates[index] for index in group] for group in groups]
        safe_set = {
            position
            for position, group_updates in enumerate(grouped)
            if self._group_is_cap_safe(group_updates)
        }
        safe = sorted(safe_set)
        unsafe = [position for position in range(len(grouped)) if position not in safe_set]

        rebuilds_before = self.rebuilds
        freed_by_group: dict[int, list[int]] = {}
        if safe:
            work = sum(len(grouped[position]) for position in safe)
            engine = pool.executor if pool is not None else executor
            backend = (
                engine.resolve_backend(len(safe), work)
                if engine is not None and len(safe) > 1
                else None
            )
            if backend == PROCESS:
                # Out-table sharding: publish each group's slice of the table
                # (cap-safety proves the group reads and writes nothing
                # outside it) as one shared-memory shard set, ship only
                # (handle, slot, updates) per task, and write the returned
                # deltas back — disjoint vertex sets make the write-back
                # conflict-free.
                out = self._out
                cap = self.outdegree_cap
                owns_pool = pool is None
                if owns_pool:
                    pool = WorkerPool(executor=executor)
                try:
                    shards = []
                    for position in safe:
                        group_updates = grouped[position]
                        vertices = sorted(
                            {update.u for update in group_updates}
                            | {update.v for update in group_updates}
                        )
                        shards.append(
                            {vertex: tuple(sorted(out[vertex])) for vertex in vertices}
                        )
                    handle = pool.publish_out_shards(shard_key, shards)
                    results = pool.map(
                        _apply_group_shm,
                        [
                            (handle, slot, grouped[position], cap)
                            for slot, position in enumerate(safe)
                        ],
                        total_work=work,
                        backend=PROCESS,
                        handles=(handle,),
                    )
                finally:
                    if owns_pool:
                        pool.close()
                outdeg = self._outdeg
                for position, (delta, freed) in zip(safe, results):
                    for vertex, heads in delta.items():
                        out[vertex] = set(heads)
                        outdeg[vertex] = len(heads)
                    freed_by_group[position] = freed
            else:
                tasks = [(grouped[position], False, rebuilds_before) for position in safe]
                if backend in IN_PROCESS:
                    freed_lists = engine.map(
                        self._apply_group, tasks, total_work=work, backend=backend
                    )
                else:
                    freed_lists = [self._apply_group(*task) for task in tasks]
                for position, freed in zip(safe, freed_lists):
                    freed_by_group[position] = freed
        for position in unsafe:
            freed_by_group[position] = self._apply_group(
                grouped[position], True, rebuilds_before
            )

        opportunistic_before = self.opportunistic_flips
        if self.proactive_flips:
            for position in range(len(grouped)):
                for freed in freed_by_group.get(position, ()):
                    self._proactive_flip(freed)

        self._updates_since_check += len(updates)
        if self._updates_since_check >= self._quality_threshold():
            self.ensure_quality()
        return GroupedApplyReport(
            num_updates=len(updates),
            num_groups=len(grouped),
            parallel_groups=len(safe),
            serial_groups=len(unsafe),
            proactive_flips=self.opportunistic_flips - opportunistic_before,
        )

    def _group_is_cap_safe(self, group_updates: list) -> bool:
        """Whether a conflict group can never trigger a flip search.

        Replays the group's tail-selection rule against the *current*
        out-degrees plus in-group deltas (groups are vertex-disjoint, so no
        other group can move these degrees): if no insertion ever pushes its
        tail past the cap, repair is impossible and the group's pointer work
        stays inside its own vertex set — eligible for the parallel phase.
        """
        out = self._out
        cap = self.outdegree_cap
        delta: dict[int, int] = {}
        owner: dict[tuple[int, int], int] = {}
        for update in group_updates:
            u, v = update.u, update.v
            edge = normalize_edge(u, v)
            if update.is_insert:
                tail = self._choose_tail(
                    u, v, len(out[u]) + delta.get(u, 0), len(out[v]) + delta.get(v, 0)
                )
                delta[tail] = delta.get(tail, 0) + 1
                owner[edge] = tail
                if len(out[tail]) + delta[tail] > cap:
                    return False
            else:
                tail = owner.pop(edge, None)
                if tail is None:
                    if edge[1] in out[edge[0]]:
                        tail = edge[0]
                    elif edge[0] in out[edge[1]]:
                        tail = edge[1]
                    else:
                        return False  # inconsistent state: leave to serial path
                delta[tail] = delta.get(tail, 0) - 1
        return True

    def _apply_group(
        self, group_updates: list, allow_repair: bool, rebuilds_before: int
    ) -> list[int]:
        """Apply one conflict group's updates; returns freed tails in order.

        With ``allow_repair=False`` (parallel phase) the group was proved
        cap-safe, so an overflow would be an engine bug — it raises rather
        than racing a flip search against sibling groups.  Proactive flips
        are deferred to the caller's serial sweep because they touch
        neighbors outside the group.  Inserts of already-oriented edges and
        deletes of already-unoriented ones are legal only after a mid-batch
        rebuild fast-forwarded the orientation to the batch-final state
        (``self.rebuilds > rebuilds_before``); without one they mean the
        orientation drifted from the live edge set, and the batch path
        raises exactly like the per-update path does.
        """
        freed: list[int] = []
        for update in group_updates:
            out = self._out  # re-read: a repair may have rebuilt the table
            u, v = update.u, update.v
            if update.is_insert:
                if v in out[u] or u in out[v]:
                    if self.rebuilds == rebuilds_before:
                        raise GraphError(
                            f"insert of already-oriented edge {normalize_edge(u, v)} "
                            f"without a mid-batch rebuild: orientation drifted from "
                            f"the live edge set"
                        )
                    continue
                tail = self._choose_tail(u, v, len(out[u]), len(out[v]))
                head = v if tail == u else u
                out[tail].add(head)
                self._outdeg[tail] += 1
                if len(out[tail]) > self.outdegree_cap:
                    if not allow_repair:
                        raise GraphError(
                            f"cap overflow at vertex {tail} inside a conflict-free "
                            f"group — the safety precheck is broken"
                        )
                    self._repair(tail)
            else:
                if v in out[u]:
                    out[u].discard(v)
                    self._outdeg[u] -= 1
                    freed.append(u)
                elif u in out[v]:
                    out[v].discard(u)
                    self._outdeg[v] -= 1
                    freed.append(v)
                elif self.rebuilds == rebuilds_before:
                    raise GraphError(
                        f"edge {normalize_edge(u, v)} is not oriented"
                    )
        return freed

    def _repair(self, overloaded: int) -> None:
        """BFS along out-edges for spare capacity; flip the path, else rebuild."""
        cap = self.outdegree_cap
        out = self._out
        parent: dict[int, int] = {overloaded: overloaded}
        frontier = deque([overloaded])
        target = -1
        while frontier:
            x = frontier.popleft()
            # Sorted walk: the raw sets iterate in insertion-history order,
            # which a checkpoint/restore cycle cannot reproduce.  Canonical
            # neighbor order makes the repair path a pure function of the
            # (heads, outdeg) state, which the byte-identical restore
            # contract depends on.
            for w in sorted(out[x]):
                if w in parent:
                    continue
                parent[w] = x
                if len(out[w]) < cap:
                    target = w
                    frontier.clear()
                    break
                frontier.append(w)
        if target < 0:
            # Every vertex reachable along out-edges is saturated, so the
            # reachable region has density ≥ cap: the graph outgrew λ̂.  Fall
            # back to the full static pipeline with a strictly larger estimate
            # (the fresh degeneracy is ≥ the old cap here, so no thrashing).
            fresh = max(1, arboricity_upper_bound(self._dynamic.snapshot()))
            self._rebuild(reason="saturated", lambda_bound=max(fresh, self.lambda_bound + 1))
            return
        length = 0
        outdeg = self._outdeg
        x = target
        while x != overloaded:
            p = parent[x]
            out[p].discard(x)
            out[x].add(p)
            outdeg[p] -= 1
            outdeg[x] += 1
            x = p
            length += 1
        self.flips += length

    def _quality_threshold(self) -> int:
        """Updates between quality checks: Θ(m), floored by ``quality_interval``."""
        return max(self.quality_interval, self._dynamic.num_edges // 4)

    def _tick(self) -> None:
        self._updates_since_check += 1
        if self._updates_since_check >= self._quality_threshold():
            self.ensure_quality()

    # ------------------------------------------------------------------ #
    # Quality fallback
    # ------------------------------------------------------------------ #

    def ensure_quality(self, force: bool = False) -> bool:
        """Refresh ``λ̂`` from the current degeneracy; rebuild if stale-high.

        Deletions never violate the cap, but they can leave ``λ̂`` (and hence
        the cap) far above what the *current* graph needs.  A rebuild is
        triggered when the estimate exceeds twice the fresh degeneracy — the
        comparison is against ``λ̂`` rather than the cap so that a cap widened
        by a fallback rebuild's realised outdegree cannot cause a rebuild loop
        that would never lower it.  Returns whether a rebuild happened.
        Called automatically every ``max(quality_interval, m/4)`` updates;
        ``force=True`` runs it now.
        """
        if not force and self._updates_since_check < self._quality_threshold():
            return False
        self._updates_since_check = 0
        fresh = max(1, arboricity_upper_bound(self._dynamic.snapshot()))
        if self.lambda_bound > 2 * fresh:
            self._rebuild(reason="stale-bound", lambda_bound=fresh)
            return True
        return False

    def _rebuild(self, reason: str, lambda_bound: int | None = None) -> None:
        """Full Theorem 1.1 rebuild on a compacted snapshot (quality fallback)."""
        snapshot = self._dynamic.compact()
        if lambda_bound is None:
            lambda_bound = max(1, arboricity_upper_bound(snapshot))
        self.lambda_bound = lambda_bound
        self.outdegree_cap = max(self.flip_slack * self.lambda_bound, 1)
        self._install_full_orientation(snapshot)
        self.rebuilds += 1
        self.rebuild_reasons[reason] = self.rebuild_reasons.get(reason, 0) + 1
        if self._cluster is not None:
            self._cluster.charge_rounds(1, label=f"stream:rebuild:{reason}")

    def _install_full_orientation(self, snapshot: Graph) -> None:
        from repro.core.orientation import orient  # deferred: core imports stream-free

        run = orient(
            snapshot,
            delta=self._delta,
            k=max(2, 2 * self.lambda_bound),
            seed=self._seed,
            cluster=self._cluster,
        )
        out: list[set[int]] = [set() for _ in range(self._dynamic.num_vertices)]
        for tail, head in run.orientation.iter_directed_edges():
            out[tail].add(head)
        self._out = out
        self._outdeg = array("l", (len(heads) for heads in out))
        # The static pipeline guarantees O(λ log log n), which can exceed the
        # flip cap on small graphs; widen the cap so the invariant holds.
        self.outdegree_cap = max(self.outdegree_cap, run.max_outdegree)

    # ------------------------------------------------------------------ #
    # Checkpoint seam
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Heads as CSR columns + λ̂/cap/counters, JSON-serializable.

        Per-vertex head lists are stored sorted; combined with the sorted
        repair walk in :meth:`_repair` this makes the restored orientation
        behave byte-identically to the original (set iteration order is the
        only thing a rebuilt ``_out`` cannot reproduce).
        """
        indptr = [0]
        heads: list[int] = []
        for out in self._out:
            heads.extend(sorted(out))
            indptr.append(len(heads))
        return {
            "indptr": indptr,
            "heads": heads,
            "lambda_bound": self.lambda_bound,
            "outdegree_cap": self.outdegree_cap,
            "flip_slack": self.flip_slack,
            "quality_interval": self.quality_interval,
            "delta": self._delta,
            "seed": self._seed,
            "proactive_flips": bool(self.proactive_flips),
            "flips": self.flips,
            "opportunistic_flips": self.opportunistic_flips,
            "rebuilds": self.rebuilds,
            "rebuild_reasons": dict(self.rebuild_reasons),
            "updates_since_check": self._updates_since_check,
        }

    @classmethod
    def from_state(
        cls, state: dict, dynamic: DynamicGraph, cluster=None
    ) -> "IncrementalOrientation":
        """Rebuild from :meth:`state_dict` output without re-running
        ``orient()`` (which would charge phantom rounds to the ledger)."""
        orientation = object.__new__(cls)
        orientation._dynamic = dynamic
        orientation.flip_slack = state["flip_slack"]
        orientation.quality_interval = state["quality_interval"]
        orientation._delta = state["delta"]
        orientation._seed = state["seed"]
        orientation._cluster = cluster
        orientation.proactive_flips = state["proactive_flips"]
        indptr = state["indptr"]
        heads = state["heads"]
        orientation._out = [
            set(heads[indptr[v] : indptr[v + 1]])
            for v in range(dynamic.num_vertices)
        ]
        orientation._outdeg = array(
            "l", (indptr[v + 1] - indptr[v] for v in range(dynamic.num_vertices))
        )
        orientation.flips = state["flips"]
        orientation.opportunistic_flips = state["opportunistic_flips"]
        orientation.rebuilds = state["rebuilds"]
        orientation.rebuild_reasons = {
            str(reason): count for reason, count in state["rebuild_reasons"].items()
        }
        orientation._updates_since_check = state["updates_since_check"]
        orientation.lambda_bound = state["lambda_bound"]
        orientation.outdegree_cap = state["outdegree_cap"]
        return orientation

    def __repr__(self) -> str:
        return (
            f"IncrementalOrientation(lambda={self.lambda_bound}, cap={self.outdegree_cap}, "
            f"flips={self.flips}, rebuilds={self.rebuilds})"
        )
