"""Cross-tenant tick scheduling: who gets served, under what round budget.

PR 4's :class:`~repro.stream.engine.StreamEngine` served *every* backlogged
tenant on every tick.  That is the right default for small fleets, but a
production multiplexer must shape traffic: a tick has a bounded round budget
(the cluster executes only so many supersteps per scheduling quantum), and
when the fleet's demand exceeds it, somebody waits.  This module provides the
:class:`TickPlanner` interface the engine consults once per tick, plus three
policies:

* ``serve-all`` (:class:`ServeAllPlanner`, the default) — every backlogged
  tenant, in registration order.  With no round budget this is exactly the
  PR 4 behaviour.
* ``top-k-backlog`` (:class:`TopKBacklogPlanner`) — the ``K`` tenants with
  the largest queued-update backlog (ties break toward earlier registration),
  the classical "serve the longest queues" heuristic for bursty fleets.
* ``deficit-round-robin`` (:class:`DeficitRoundRobinPlanner`) — each
  backlogged tenant accrues ``quantum × weight`` round-credits per tick
  (:attr:`TenantLoad.weight`, default 1, gives weighted-fair proportional
  shares) and is served once its deficit covers its estimated cost; credits
  are spent on service and dropped when a tenant drains.  A rotating cursor
  breaks ties, so every continuously backlogged tenant is served within a
  bounded number of ticks (no starvation) regardless of how large its
  neighbours' backlogs or weights are.

**The round budget.**  A tick's ledger charge is the *max* over the served
tenants' tick deltas (the parallel fold), but the cluster's *work* for the
tick is their *sum* — the ``sequential_rounds`` quantity the S3 experiment
reports.  ``round_budget`` caps that work: the planner admits tenants, in
policy order, while the sum of their **estimated** per-batch round costs
stays within the budget; tenants that do not fit are deferred with their
batches carried over intact.  Admission is work-conserving (a tenant that
does not fit does not block a later, smaller one) with one progress
guarantee: the head tenant of the policy order is always admitted, even when
its estimate alone exceeds the budget — otherwise a single oversized batch
would livelock the fleet.  Ticks can therefore overshoot the budget only in
that documented head-of-line case (or when a quality rebuild fires, which no
estimator can see coming); in the steady no-rebuild regime the folded tick
rounds satisfy ``rounds ≤ max(estimates) ≤ sum(estimates) ≤ round_budget``.

**Cost estimates.**  :func:`estimate_batch_rounds` upper-bounds the ledger
delta of one batch that does not trigger a rebuild: delivery is
``⌈2·L/S⌉`` rounds (each update is a 2-word message; one machine can move at
most ``S`` words per round), flip repair and recoloring are one aggregation
round each, and compaction fires at most ``1 + L // min_compaction_journal``
times per batch (each occurrence needs that many fresh journal entries).
The estimate is deliberately conservative — the budget is a guarantee, not a
forecast.

Planners are deterministic: the plan is a pure function of the planner's
state and the presented loads, and all policy state (deficits, cursors)
advances only inside :meth:`TickPlanner.plan`.  Same seed + same policy ⇒
the same tick-by-tick schedule for any worker count or backend, which is
what lets a served tenant stay byte-identical to its standalone run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError

SERVE_ALL = "serve-all"
TOP_K_BACKLOG = "top-k-backlog"
DEFICIT_ROUND_ROBIN = "deficit-round-robin"

POLICIES = (SERVE_ALL, TOP_K_BACKLOG, DEFICIT_ROUND_ROBIN)

#: Aggregation rounds a batch may charge beyond delivery and compaction:
#: one ``stream:flip-repair`` round plus one ``stream:recolor`` round.
REPAIR_ROUNDS = 2


def estimate_batch_rounds(
    num_updates: int,
    words_per_machine: int,
    min_compaction_journal: int = 64,
) -> int:
    """Upper bound on the ledger delta of one rebuild-free batch.

    ``⌈2·L/S⌉`` delivery rounds + flip/recolor repair + the most compactions
    a batch of ``L`` updates can trigger.  Exact for the empty batch (0).
    """
    if num_updates <= 0:
        return 0
    if words_per_machine < 1:
        raise GraphError("words_per_machine must be at least 1")
    delivery = -(-2 * num_updates // words_per_machine)
    compactions = 1 + num_updates // max(min_compaction_journal, 1)
    return delivery + REPAIR_ROUNDS + compactions


@dataclass(frozen=True)
class TenantLoad:
    """What the planner knows about one backlogged tenant at tick time."""

    name: str
    index: int
    """Registration position (the deterministic tie-breaker)."""
    backlog_batches: int
    backlog_updates: int
    """Total updates across the tenant's queued batches (the backlog metric)."""
    head_updates: int
    """Size of the head batch — what serving the tenant this tick applies."""
    estimated_rounds: int
    """:func:`estimate_batch_rounds` of the head batch on the tenant's ledger."""
    weight: int = 1
    """Proportional share of the tick budget under weighted-fair policies: a
    weight-``w`` tenant accrues deficit-round-robin credit ``w`` times as fast
    as a weight-1 one.  Integer (credits stay exact); policies without a
    fairness notion ignore it."""


def admit_within_budget(
    ordered: "list[TenantLoad]", round_budget: int | None
) -> list[str]:
    """Cut an ordered preference list down to what the budget affords.

    Admits tenants in order while the sum of estimates stays within
    ``round_budget``; skipping is work-conserving (a later, cheaper tenant
    can still fit after an expensive one was deferred).  The head of the
    order is always admitted — the progress guarantee documented in the
    module docstring.  ``None`` disables the budget entirely.
    """
    if round_budget is None:
        return [load.name for load in ordered]
    if round_budget < 1:
        raise GraphError("round_budget must be at least 1 (or None to disable)")
    served: list[str] = []
    spent = 0
    for load in ordered:
        if served and spent + load.estimated_rounds > round_budget:
            continue
        served.append(load.name)
        spent += load.estimated_rounds
    return served


class TickPlanner:
    """Strategy interface: pick which backlogged tenants one tick serves.

    Subclasses implement :meth:`order` — a deterministic preference order
    over (a subset of) the presented loads; the shared budget admission in
    :func:`admit_within_budget` then cuts it to what the tick affords.
    Policies with internal state (deficits, cursors) may also override
    :meth:`plan` to account for what was actually admitted.
    """

    name = "abstract"

    def order(self, loads: "list[TenantLoad]") -> "list[TenantLoad]":
        raise NotImplementedError

    def plan(
        self, loads: "list[TenantLoad]", round_budget: int | None = None
    ) -> list[str]:
        """Names of the tenants to serve this tick, in policy order."""
        return admit_within_budget(self.order(loads), round_budget)

    def state_dict(self) -> dict:
        """JSON-serializable snapshot: policy name, constructor options, and
        mutable scheduling state (the "planner credits" a checkpoint must
        carry for the restored schedule to continue byte-identically).
        """
        return {"policy": self.name, "options": {}, "state": {}}

    def load_state(self, state: dict) -> None:
        """Restore the mutable part of a :meth:`state_dict` snapshot."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(policy={self.name!r})"


class ServeAllPlanner(TickPlanner):
    """Every backlogged tenant, in registration order (the PR 4 behaviour)."""

    name = SERVE_ALL

    def order(self, loads: "list[TenantLoad]") -> "list[TenantLoad]":
        return sorted(loads, key=lambda load: load.index)


class TopKBacklogPlanner(TickPlanner):
    """The ``K`` tenants with the largest queued-update backlog."""

    name = TOP_K_BACKLOG

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise GraphError("top-k-backlog needs k >= 1")
        self.k = k

    def order(self, loads: "list[TenantLoad]") -> "list[TenantLoad]":
        ranked = sorted(loads, key=lambda load: (-load.backlog_updates, load.index))
        return ranked[: self.k]

    def state_dict(self) -> dict:
        return {"policy": self.name, "options": {"k": self.k}, "state": {}}


class DeficitRoundRobinPlanner(TickPlanner):
    """Deficit round-robin: round-credit accrual with a rotating cursor.

    Every tick, each backlogged tenant's deficit grows by
    ``quantum × weight`` round credits (:attr:`TenantLoad.weight`, default 1
    — the weighted-fair variant: a weight-``w`` tenant accrues ``w`` times
    as fast, so over a congested stretch it receives a proportional share of
    the tick budget); a tenant is *eligible* once its deficit covers its
    estimated head-batch cost.  Eligible tenants are considered in
    round-robin order starting at the cursor, admitted under the shared
    budget, and pay their estimate out of the deficit; the cursor then
    advances past the last served tenant.  A tenant that drains its queue
    forfeits its credit (classic DRR — idle tenants must not hoard
    priority).

    No starvation, at any weight: a continuously backlogged tenant with head
    estimate ``E`` and weight ``w`` is eligible after at most
    ``⌈E/(quantum·w)⌉`` ticks and keeps its credit until served; once
    eligible it is served as soon as the cursor reaches it, which takes at
    most one full rotation.  The bound asserted by the property suite is
    ``⌈E/(quantum·w)⌉ + num_tenants`` ticks between services — weights speed
    tenants up, they never push anyone below the weight-1 floor.
    """

    name = DEFICIT_ROUND_ROBIN

    def __init__(self, quantum: int = 4) -> None:
        if quantum < 1:
            raise GraphError("deficit-round-robin needs quantum >= 1")
        self.quantum = quantum
        self._deficits: dict[str, int] = {}
        self._cursor = 0

    def deficit(self, name: str) -> int:
        """Current round-credit of a tenant (0 when unknown or drained)."""
        return self._deficits.get(name, 0)

    def plan(
        self, loads: "list[TenantLoad]", round_budget: int | None = None
    ) -> list[str]:
        active = {load.name for load in loads}
        for name in [name for name in self._deficits if name not in active]:
            del self._deficits[name]
        for load in loads:
            if load.weight < 1:
                raise GraphError(
                    f"tenant {load.name!r} has weight {load.weight}; "
                    "weights must be integers >= 1"
                )
            self._deficits[load.name] = (
                self._deficits.get(load.name, 0) + self.quantum * load.weight
            )

        rotation = max((load.index for load in loads), default=0) + 1
        ordered = sorted(
            loads, key=lambda load: ((load.index - self._cursor) % rotation)
        )
        eligible = [
            load for load in ordered
            if self._deficits[load.name] >= load.estimated_rounds
        ]
        served = admit_within_budget(eligible, round_budget)
        if served:
            by_name = {load.name: load for load in loads}
            for name in served:
                self._deficits[name] -= by_name[name].estimated_rounds
            self._cursor = (by_name[served[-1]].index + 1) % rotation
        return served

    def order(self, loads: "list[TenantLoad]") -> "list[TenantLoad]":
        raise NotImplementedError("deficit-round-robin plans statefully; use plan()")

    def state_dict(self) -> dict:
        return {
            "policy": self.name,
            "options": {"quantum": self.quantum},
            "state": {"deficits": dict(self._deficits), "cursor": self._cursor},
        }

    def load_state(self, state: dict) -> None:
        self._deficits = {str(name): int(v) for name, v in state["deficits"].items()}
        self._cursor = int(state["cursor"])


def make_planner(policy: str, **options) -> TickPlanner:
    """Build a planner from a policy name (the CLI / experiment entry point).

    ``options`` are forwarded to the policy's constructor: ``k`` for
    ``top-k-backlog``, ``quantum`` for ``deficit-round-robin``.  Unknown
    policies (and options a policy does not take) raise
    :class:`~repro.errors.GraphError`.
    """
    factories = {
        SERVE_ALL: ServeAllPlanner,
        TOP_K_BACKLOG: TopKBacklogPlanner,
        DEFICIT_ROUND_ROBIN: DeficitRoundRobinPlanner,
    }
    factory = factories.get(policy)
    if factory is None:
        raise GraphError(f"unknown scheduling policy {policy!r}; available: {POLICIES}")
    try:
        return factory(**options)
    except TypeError as exc:
        raise GraphError(f"bad options for policy {policy!r}: {exc}") from None
