"""The streaming service API: batched updates with MPC round accounting.

:class:`StreamingService` is the dynamic counterpart of the one-shot
``orient()``/``color()`` entry points.  It owns the full maintained state —
a :class:`~repro.stream.dynamic_graph.DynamicGraph`, an
:class:`~repro.stream.orientation.IncrementalOrientation` and an
:class:`~repro.stream.coloring.IncrementalColoring` — and accepts
:class:`~repro.stream.updates.UpdateBatch` objects.

MPC accounting (see :mod:`repro.mpc.cluster` for the model):

* delivering a batch is one communication round — every update ``{u, v}`` is
  a 2-word message from the machine owning ``u`` to the machine owning ``v``
  (oversized batches split into ⌈volume/S⌉ rounds as usual);
* flip-path repair and recoloring are each charged one aggregation round per
  batch in which they occur (the flips/recolors of a batch are independent
  pointer updates, resolvable by one constant-round primitive);  repair is
  executed that way too: the batch is split into vertex-disjoint conflict
  groups (:func:`repro.stream.orientation.plan_conflict_groups`) and the
  conflict-free groups resolve concurrently through the superstep engine
  (``workers`` threads, or process workers via out-table sharding), with
  order-sensitive groups serialised deterministically — results are
  identical for any worker count and backend;
* a quality-fallback rebuild runs the full Theorem 1.1 pipeline *against the
  service's cluster*, so its rounds land in the same ledger (labels
  ``stream:rebuild:*``);
* compaction is a sorting primitive over the journal, one round per
  occurrence;
* the live graph itself is stored as an evenly spread distributed object
  (tag ``stream-graph``, 1 word per vertex + 2 per edge), re-registered at
  every batch boundary — so growth under insertions shows up in the memory
  peaks and can trip the ``n^δ``/global-budget checks like any static load.

Batches are **atomic**: the whole batch is validated against the current
graph (net of in-batch effects) before any state or ledger is touched, so an
illegal update raises :class:`~repro.errors.GraphError` and leaves the
service exactly as it was.

Per-batch costs and structure quality are returned as
:class:`~repro.stream.updates.BatchReport` rows.
"""

from __future__ import annotations

import time
from dataclasses import fields

from repro import kernels
from repro.engine import THREAD, ParallelExecutor, WorkerPool
from repro.errors import GraphError
from repro.obs.tracer import NULL_TRACER
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.stream.coloring import IncrementalColoring
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.orientation import IncrementalOrientation, seed_lambda_from_coreness
from repro.stream.updates import BatchReport, StreamSummary, UpdateBatch


def graph_memory_words(num_vertices: int, num_edges: int) -> int:
    """Ledger words of a live graph: 1 per vertex + 2 per edge.

    The single source of truth for the storage model shared by batch-boundary
    registration (:meth:`StreamingService._account_graph_storage`), quota
    projection (:meth:`StreamingService.projected_memory_words`), and the
    engine's registration-time quota admission — these three must agree or
    quota checks drift from the ledger they cap.
    """
    return num_vertices + 2 * num_edges


def _report_state(report: BatchReport) -> dict:
    """One :class:`BatchReport` as a field-name-keyed dict (checkpoint rows)."""
    return {f.name: getattr(report, f.name) for f in fields(BatchReport)}


def _restore_report(state: dict) -> BatchReport:
    """Inverse of :func:`_report_state`; unknown/missing keys raise upstream."""
    return BatchReport(**state)


class StreamingService:
    """Applies update batches while maintaining orientation + coloring.

    Parameters
    ----------
    initial:
        The graph at stream start (may be empty).
    delta:
        Memory exponent for the simulated cluster (when none is supplied).
    flip_slack, quality_interval, seed:
        Forwarded to :class:`IncrementalOrientation`.
    cluster:
        Optional pre-built cluster; a fresh one sized for ``initial`` is
        created (and loaded) when omitted.
    maintain_coloring:
        Disable to maintain only the orientation (benchmarks isolating the
        flip path).
    workers:
        Host-side parallelism for batch repair: conflict-free update groups
        resolve concurrently on this many workers (1 = serial).  Results are
        identical for any worker count.
    backend:
        Engine backend for batch repair (default ``thread``).  In-process
        backends mutate the shared out-table through disjoint slices; the
        ``process`` backend routes cap-safe groups through out-table
        sharding (see :mod:`repro.stream.orientation`) — same results,
        worth it only when per-group repair work dwarfs the shard shipping.
    executor:
        Optional pre-built :class:`~repro.engine.ParallelExecutor`
        (overrides ``workers`` and ``backend``); any backend works.
    pool:
        Optional pre-built :class:`~repro.engine.WorkerPool` (overrides
        ``workers``, ``backend`` and ``executor``).  The service then runs
        its batch repair on the pool's resident workers and publishes its
        out-table shards into the pool's shard registry under a
        service-scoped key — several services (one per engine tenant) can
        share one registry without colliding.  When omitted, the service
        builds and owns a pool around ``executor``/``workers``/``backend``.
    proactive_flips:
        Forwarded to :class:`IncrementalOrientation`.
    lambda_seed:
        How the initial arboricity estimate λ̂ is obtained.  ``None``
        (default) keeps the static degeneracy estimate.  ``"coreness"``
        seeds it from an engine-parallel coreness guess-ladder peel
        (:func:`~repro.stream.orientation.seed_lambda_from_coreness`) run on
        the service's own executor and charged to its cluster ledger — the
        ladder's round-up gives the outdegree cap headroom above the exact
        degeneracy, so densifying traces trigger fewer saturation rebuilds.
        Opt-in because it changes the cap, and with it every downstream
        flip/rebuild count, relative to the pinned default trajectories.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When given, each batch is
        wrapped in host wall-clock spans (batch → repair/recolor/quality)
        carrying the ledger delta charged inside them, and a service-owned
        pool/cluster is instrumented for metrics.  Tracing is observation
        only — results are byte-identical with it on or off.
    """

    def __init__(
        self,
        initial: Graph,
        delta: float = 0.5,
        flip_slack: int = 4,
        quality_interval: int = 1024,
        seed: int = 0,
        cluster: MPCCluster | None = None,
        maintain_coloring: bool = True,
        workers: int = 1,
        backend: str = THREAD,
        executor: ParallelExecutor | None = None,
        pool: WorkerPool | None = None,
        proactive_flips: bool = True,
        lambda_seed: str | None = None,
        tracer=None,
    ) -> None:
        if lambda_seed not in (None, "coreness"):
            raise GraphError(
                f"unknown lambda_seed {lambda_seed!r} (expected None or 'coreness')"
            )
        if cluster is None:
            cluster = MPCCluster(MPCConfig.for_graph(initial, delta=delta))
        self.cluster = cluster
        self.tracer = NULL_TRACER if tracer is None else tracer
        owns_pool = pool is None
        self._pool = (
            pool
            if pool is not None
            else WorkerPool(workers=workers, backend=backend, executor=executor)
        )
        if tracer is not None:
            cluster.instrument(tracer)
            if owns_pool:
                self._pool.instrument(tracer)
        self._executor = self._pool.executor
        self._shard_key = self._pool.allocate_scope("repair-shards-")
        self.dynamic = DynamicGraph(initial)
        if tracer is not None:
            self.dynamic.instrument(tracer)
        # The compacted base travels as delta-aware per-column shards: a
        # compaction republishes only the columns it changed, carrying the
        # rest at their current generation.
        self._graph_scope = self._pool.allocate_scope("stream-graph-")
        self.graph_handles = self._pool.publish_graph_columns(
            self._graph_scope, self.dynamic.base
        )
        self._account_graph_storage()
        lambda_bound = None
        if lambda_seed == "coreness":
            lambda_bound = seed_lambda_from_coreness(
                initial, executor=self._executor, cluster=cluster
            )
        self.orientation = IncrementalOrientation(
            self.dynamic,
            lambda_bound=lambda_bound,
            flip_slack=flip_slack,
            quality_interval=quality_interval,
            delta=delta,
            seed=seed,
            cluster=cluster,
            proactive_flips=proactive_flips,
        )
        self.coloring = IncrementalColoring(self.dynamic) if maintain_coloring else None
        self.summary = StreamSummary()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Batch application
    # ------------------------------------------------------------------ #

    def _account_graph_storage(self) -> None:
        """Register the live graph's words in the cluster's memory ledger.

        The dynamic graph is one distributed object of ``n + 2m`` words; the
        standard primitives keep such objects evenly spread, so each batch
        boundary re-registers the current size under one tag.  Growth under
        insertions therefore raises the observed peaks (and the enforcement
        checks) exactly like a static load of the same graph would.
        """
        words = graph_memory_words(self.dynamic.num_vertices, self.dynamic.num_edges)
        self.cluster.restore_spread(words, tag="stream-graph")

    def _validate_batch(self, batch: UpdateBatch) -> None:
        """Reject the whole batch (before any mutation) if any update is illegal.

        Runs as one ``validate_batch`` kernel call over the batch's columns
        and the dynamic graph's cached key columns (base edges, overlay
        additions, tombstones) — endpoint range, duplicate-insert and
        dead-delete checks vectorized on the numpy backend, with the exact
        first-offender order and messages of the reference loop.
        """
        ops, us, vs = batch.columns()
        added_keys, removed_keys = self.dynamic.overlay_edge_keys()
        kernels.validate_batch(
            self.dynamic.num_vertices,
            ops,
            us,
            vs,
            self.dynamic.base_edge_keys(),
            added_keys,
            removed_keys,
        )

    def apply(self, batch: UpdateBatch) -> BatchReport:
        """Apply one batch atomically; returns the per-batch metric report.

        ``report.wall_clock_s`` is always populated (monotonic host time,
        tracing or not); with a tracer attached the batch additionally
        records a ``batch`` span (with nested repair/recolor/quality spans)
        carrying the ledger delta charged while it was open.
        """
        started = time.perf_counter()
        with self.tracer.span(
            "batch",
            cat="stream",
            cluster=self.cluster,
            batch=self.summary.num_batches,
            updates=len(batch),
        ) as span:
            report = self._apply_batch(batch)
            span.annotate(
                flips=report.flips,
                recolors=report.recolors,
                rebuilds=report.rebuilds,
                compactions=report.compactions,
            )
        report.wall_clock_s = time.perf_counter() - started
        metrics = self.tracer.metrics
        if metrics.enabled:
            metrics.inc("stream.batches")
            metrics.inc("stream.flips", report.flips)
            metrics.inc("stream.recolors", report.recolors)
            metrics.inc("stream.rebuilds", report.rebuilds)
            metrics.inc("stream.compactions", report.compactions)
        self.summary.add(report)
        return report

    def _apply_batch(self, batch: UpdateBatch) -> BatchReport:
        """The :meth:`apply` body; returns the report *before* aggregation."""
        self._validate_batch(batch)
        orientation = self.orientation
        coloring = self.coloring
        dynamic = self.dynamic
        cluster = self.cluster

        flips_before = orientation.flips
        rebuilds_before = orientation.rebuilds
        recolors_before = coloring.recolors if coloring is not None else 0
        compactions_before = dynamic.num_compactions
        rounds_before = cluster.stats.num_rounds

        # One communication round delivers the whole batch: each update is a
        # 2-word message routed between the machines owning its endpoints.
        ops, us, vs = batch.columns()
        if len(batch):
            cluster.communication_round(
                [(u, v, 2) for u, v in zip(us, vs)],
                label="stream:batch",
            )

        # Superstep order: the graph absorbs the whole batch first (so a
        # mid-batch fallback rebuild sees the batch-final snapshot), then the
        # orientation resolves the batch as parallel conflict groups, then
        # the coloring repairs its invalidated endpoints.
        dynamic.apply_ops(ops, us, vs)

        with self.tracer.span("repair", cat="stream", cluster=cluster):
            grouped = orientation.apply_batch(
                batch.updates, pool=self._pool, shard_key=self._shard_key
            )

        if coloring is not None:
            with self.tracer.span("recolor", cat="stream", cluster=cluster):
                # Deletions never invalidate properness, so the scan covers
                # just the insert columns (kernel-dispatched; see
                # handle_insert_batch for the byte-identity argument).
                coloring.handle_insert_batch(*batch.insert_columns())

        # Amortised quality maintenance at the batch boundary; a rebuild here
        # also refreshes the coloring (the rebuild recomputed everything).
        with self.tracer.span("quality", cat="stream", cluster=cluster):
            orientation.ensure_quality()
            if coloring is not None and orientation.rebuilds > rebuilds_before:
                coloring.refresh(dynamic.snapshot())

        flips = orientation.flips - flips_before
        recolors = (coloring.recolors - recolors_before) if coloring is not None else 0
        compactions = dynamic.num_compactions - compactions_before
        if flips:
            cluster.charge_rounds(1, label="stream:flip-repair")
        if recolors:
            cluster.charge_rounds(1, label="stream:recolor")
        if compactions:
            cluster.charge_rounds(compactions, label="stream:compact")
            # A compaction rewrote the graph wholesale: retire the published
            # out-table shards now so no handle from before the compaction
            # can ever resolve again (the next process-backend batch
            # republishes a fresh generation).  The graph's own edge columns
            # republish delta-aware: only the columns the compaction changed
            # advance a generation, the rest carry.
            self._pool.invalidate(self._shard_key)
            self.graph_handles = self._pool.publish_graph_columns(
                self._graph_scope, dynamic.base
            )
        self._account_graph_storage()

        report = BatchReport(
            batch_index=self.summary.num_batches,
            num_inserts=batch.num_inserts,
            num_deletes=batch.num_deletes,
            conflict_groups=grouped.num_groups,
            parallel_groups=grouped.parallel_groups,
            proactive_flips=grouped.proactive_flips,
            flips=flips,
            recolors=recolors,
            rebuilds=orientation.rebuilds - rebuilds_before,
            compactions=dynamic.num_compactions - compactions_before,
            rounds=cluster.stats.num_rounds - rounds_before,
            num_edges=dynamic.num_edges,
            journal_size=dynamic.journal_size,
            max_outdegree=orientation.max_outdegree(),
            outdegree_cap=orientation.outdegree_cap,
            num_colors=coloring.num_colors() if coloring is not None else 0,
        )
        return report

    def projected_memory_words(self, batch: UpdateBatch) -> int:
        """Global ledger words in use after ``batch`` would be applied.

        The live graph is the only per-batch storage the service re-registers
        (tag ``stream-graph``: ``n + 2m`` words), so the projection swaps the
        current registration for the post-batch one while keeping every other
        tag (rebuild residue, initial load) as-is.  Used by the engine's
        quota admission: the check runs *before* any state or ledger mutation,
        which is what lets a breaching batch stay queued intact.  Rebuild
        working sets are invisible to this projection — the fold-time
        :meth:`~repro.mpc.cluster.MPCCluster.check_quota` backstop covers
        those.
        """
        graph_now = graph_memory_words(self.dynamic.num_vertices, self.dynamic.num_edges)
        graph_after = graph_memory_words(
            self.dynamic.num_vertices, self.dynamic.num_edges + batch.net_inserts
        )
        return self.cluster.global_memory_in_use() - graph_now + graph_after

    def apply_all(self, batches) -> StreamSummary:
        """Apply a sequence of batches; returns the aggregated summary."""
        for batch in batches:
            self.apply(batch)
        return self.summary

    def close(self) -> None:
        """Release the repair pool's workers and shard segments (idempotent).

        With ``workers > 1`` the service lazily spins up worker pools, and a
        process-backend batch publishes shared-memory shards; sweeps that
        create one service per workload should close each when done rather
        than leaving the release to garbage collection.  A pool passed in by
        an engine keeps its shared pieces — only this service's shard scope
        is retired.
        """
        if self._closed:
            return
        self._closed = True
        self._pool.invalidate(self._shard_key)
        for name in self.graph_handles:
            self._pool.invalidate(f"{self._graph_scope}.{name}")
        self._pool.close()
        self._executor.close()

    def __enter__(self) -> "StreamingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Checkpoint seam
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """The complete maintained state as a JSON-serializable snapshot.

        Everything behavior-affecting is captured: the sub-ledger (with its
        config, quota, and per-machine storage), the dynamic graph's base +
        journal columns, the orientation heads/λ̂/cap/counters, the coloring
        column, and the per-batch report history.  Pool scope keys are *not*
        state — they only name shared-memory segments and are reallocated
        fresh on restore.
        """
        return {
            "ledger": self.cluster.ledger_state(),
            "dynamic": self.dynamic.state_columns(),
            "orientation": self.orientation.state_dict(),
            "coloring": None if self.coloring is None else self.coloring.state_dict(),
            "reports": [_report_state(report) for report in self.summary.reports],
        }

    @classmethod
    def from_state(
        cls, state: dict, pool: WorkerPool, tracer=None
    ) -> "StreamingService":
        """Resurrect a service from :meth:`state_dict` output, byte-identically.

        Deliberately bypasses ``__init__``: constructing normally would
        re-run the static orientation pipeline and re-register graph storage,
        charging phantom rounds to a ledger that already holds the exact
        history.  The field wiring mirrors ``__init__`` minus every
        ledger-charging step.
        """
        service = object.__new__(cls)
        service.cluster = MPCCluster.from_ledger_state(state["ledger"])
        service.tracer = NULL_TRACER if tracer is None else tracer
        service._pool = pool
        if tracer is not None:
            service.cluster.instrument(tracer)
        service._executor = pool.executor
        service._shard_key = pool.allocate_scope("repair-shards-")
        service.dynamic = DynamicGraph.from_state(state["dynamic"])
        if tracer is not None:
            service.dynamic.instrument(tracer)
        service._graph_scope = pool.allocate_scope("stream-graph-")
        service.graph_handles = pool.publish_graph_columns(
            service._graph_scope, service.dynamic.base
        )
        service.orientation = IncrementalOrientation.from_state(
            state["orientation"], service.dynamic, cluster=service.cluster
        )
        service.coloring = (
            None
            if state["coloring"] is None
            else IncrementalColoring.from_state(state["coloring"], service.dynamic)
        )
        service.summary = StreamSummary()
        for row in state["reports"]:
            service.summary.add(_restore_report(row))
        service._closed = False
        return service

    # ------------------------------------------------------------------ #
    # Consistency checks (tests / validators)
    # ------------------------------------------------------------------ #

    def verify(self) -> None:
        """Check every maintained invariant; raises :class:`GraphError` on drift.

        * the orientation covers the live edge set exactly, with every
          oriented edge live;
        * ``max_outdegree ≤ outdegree_cap``;
        * the coloring (when maintained) is proper on the live edge set.
        """
        dynamic = self.dynamic
        orientation = self.orientation
        oriented = orientation.oriented_edge_count()
        if oriented != dynamic.num_edges:
            raise GraphError(
                f"orientation drift: {oriented} oriented edges vs {dynamic.num_edges} live"
            )
        for u, v in dynamic.edges():
            orientation.head(u, v)  # raises if the edge is unoriented
        worst = orientation.max_outdegree()
        if worst > orientation.outdegree_cap:
            raise GraphError(
                f"outdegree {worst} exceeds maintained cap {orientation.outdegree_cap}"
            )
        if self.coloring is not None and not self.coloring.is_proper():
            raise GraphError("maintained coloring is not proper")

    def __repr__(self) -> str:
        return (
            f"StreamingService(m={self.dynamic.num_edges}, "
            f"batches={self.summary.num_batches}, rounds={self.cluster.stats.num_rounds})"
        )
