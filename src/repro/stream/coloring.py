"""Incremental repair of a proper coloring under edge churn.

The static pipeline (Theorem 1.2) colors from scratch with ``O(λ log log n)``
colors.  Under a stream of updates only insertions can break properness, and
only at the two endpoints of the inserted edge — so the maintainer repairs
exactly the vertices whose palette was invalidated:

* **Insertion** ``{u, v}`` with ``color[u] == color[v]``: recolor the endpoint
  with the smaller degree, giving it the smallest color not used in its
  (current, dynamic) neighborhood.  One vertex, O(deg) work.
* **Deletion** never invalidates a proper coloring; nothing to do.

Greedy repair keeps the coloring proper at all times but lets the palette
drift above the density-dependent target as the graph churns.  Whenever the
orientation maintainer performs a full rebuild — or a caller invokes
:meth:`IncrementalColoring.refresh` — the coloring is recomputed in reverse
degeneracy order (≤ ``degeneracy + 1 ≤ 2λ`` colors), which re-compresses the
palette at O(n + m) amortised cost.
"""

from __future__ import annotations

from array import array

from repro import kernels
from repro.baselines.greedy import degeneracy_order_coloring
from repro.errors import GraphError
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from repro.stream.dynamic_graph import DynamicGraph


class IncrementalColoring:
    """Maintains a proper coloring of a :class:`DynamicGraph` under churn."""

    def __init__(self, dynamic: DynamicGraph) -> None:
        self._dynamic = dynamic
        self._colors: array = array("l", [0]) * dynamic.num_vertices
        self.recolors = 0
        self.refreshes = 0
        snapshot = dynamic.snapshot()
        if snapshot.num_edges:
            self._install(degeneracy_order_coloring(snapshot))

    def _install(self, coloring: Coloring) -> None:
        colors = self._colors
        for v, c in coloring.as_dict().items():
            colors[v] = c

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def color(self, v: int) -> int:
        """Current color of vertex ``v``."""
        return self._colors[v]

    def num_colors(self) -> int:
        """Number of distinct colors currently in use."""
        return kernels.count_distinct(self._colors)

    def max_color(self) -> int:
        """Largest color index in use (palette-size proxy)."""
        return kernels.max_value(self._colors)

    def to_coloring(self, graph: Graph | None = None) -> Coloring:
        """Freeze the maintained colors into a :class:`Coloring` value object.

        ``graph`` defaults to a fresh snapshot of the dynamic graph.
        """
        if graph is None:
            graph = self._dynamic.snapshot()
        return Coloring(graph, {v: self._colors[v] for v in graph.vertices})

    def is_proper(self) -> bool:
        """Whether no live edge is monochromatic (one kernel scan over a
        snapshot's edge columns — the snapshot cache makes repeated checks
        between mutations O(1) in graph work)."""
        edge_u, edge_v = self._dynamic.snapshot().edge_endpoints
        return kernels.first_monochrome(self._colors, edge_u, edge_v) < 0

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def handle_insert(self, u: int, v: int) -> bool:
        """Repair the coloring after inserting ``{u, v}``; returns whether a
        vertex was recolored."""
        colors = self._colors
        if colors[u] != colors[v]:
            return False
        dynamic = self._dynamic
        victim = u if dynamic.degree(u) <= dynamic.degree(v) else v
        taken = {colors[w] for w in dynamic.neighbors(victim)}
        fresh = 0
        while fresh in taken:
            fresh += 1
        colors[victim] = fresh
        self.recolors += 1
        return True

    def handle_insert_batch(self, us, vs) -> int:
        """Repair after a column of insertions; returns vertices recolored.

        Equivalent to calling :meth:`handle_insert` per edge in order: the
        kernel scan finds the next monochromatic edge, the repair runs in
        python (it mutates colors, which later comparisons must see), and
        the scan resumes just past it — so each edge is still examined
        exactly once against the colors as of its turn.
        """
        before = self.recolors
        start = 0
        colors = self._colors
        while True:
            i = kernels.first_monochrome(colors, us, vs, start)
            if i < 0:
                break
            self.handle_insert(us[i], vs[i])
            start = i + 1
        return self.recolors - before

    def handle_delete(self, u: int, v: int) -> None:
        """Deletions cannot invalidate a proper coloring; kept for symmetry."""

    def refresh(self, snapshot: Graph | None = None) -> None:
        """Recolor from scratch in reverse degeneracy order (palette reset)."""
        if snapshot is None:
            snapshot = self._dynamic.snapshot()
        if snapshot.num_vertices != self._dynamic.num_vertices:
            raise GraphError("refresh snapshot must cover the full vertex set")
        self._colors = array("l", [0]) * self._dynamic.num_vertices
        if snapshot.num_edges:
            self._install(degeneracy_order_coloring(snapshot))
        self.refreshes += 1

    # ------------------------------------------------------------------ #
    # Checkpoint seam
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """The color column plus counters, JSON-serializable."""
        return {
            "colors": list(self._colors),
            "recolors": self.recolors,
            "refreshes": self.refreshes,
        }

    @classmethod
    def from_state(cls, state: dict, dynamic: DynamicGraph) -> "IncrementalColoring":
        """Rebuild from :meth:`state_dict` output without recoloring."""
        coloring = object.__new__(cls)
        coloring._dynamic = dynamic
        coloring._colors = array("l", state["colors"])
        coloring.recolors = state["recolors"]
        coloring.refreshes = state["refreshes"]
        return coloring

    def __repr__(self) -> str:
        return f"IncrementalColoring(colors={self.num_colors()}, recolors={self.recolors})"
