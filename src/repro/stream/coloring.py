"""Incremental repair of a proper coloring under edge churn.

The static pipeline (Theorem 1.2) colors from scratch with ``O(λ log log n)``
colors.  Under a stream of updates only insertions can break properness, and
only at the two endpoints of the inserted edge — so the maintainer repairs
exactly the vertices whose palette was invalidated:

* **Insertion** ``{u, v}`` with ``color[u] == color[v]``: recolor the endpoint
  with the smaller degree, giving it the smallest color not used in its
  (current, dynamic) neighborhood.  One vertex, O(deg) work.
* **Deletion** never invalidates a proper coloring; nothing to do.

Greedy repair keeps the coloring proper at all times but lets the palette
drift above the density-dependent target as the graph churns.  Whenever the
orientation maintainer performs a full rebuild — or a caller invokes
:meth:`IncrementalColoring.refresh` — the coloring is recomputed in reverse
degeneracy order (≤ ``degeneracy + 1 ≤ 2λ`` colors), which re-compresses the
palette at O(n + m) amortised cost.
"""

from __future__ import annotations

from repro.baselines.greedy import degeneracy_order_coloring
from repro.errors import GraphError
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from repro.stream.dynamic_graph import DynamicGraph


class IncrementalColoring:
    """Maintains a proper coloring of a :class:`DynamicGraph` under churn."""

    def __init__(self, dynamic: DynamicGraph) -> None:
        self._dynamic = dynamic
        self._colors: list[int] = [0] * dynamic.num_vertices
        self.recolors = 0
        self.refreshes = 0
        snapshot = dynamic.snapshot()
        if snapshot.num_edges:
            self._install(degeneracy_order_coloring(snapshot))

    def _install(self, coloring: Coloring) -> None:
        colors = self._colors
        for v, c in coloring.as_dict().items():
            colors[v] = c

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def color(self, v: int) -> int:
        """Current color of vertex ``v``."""
        return self._colors[v]

    def num_colors(self) -> int:
        """Number of distinct colors currently in use."""
        return len(set(self._colors))

    def max_color(self) -> int:
        """Largest color index in use (palette-size proxy)."""
        return max(self._colors, default=0)

    def to_coloring(self, graph: Graph | None = None) -> Coloring:
        """Freeze the maintained colors into a :class:`Coloring` value object.

        ``graph`` defaults to a fresh snapshot of the dynamic graph.
        """
        if graph is None:
            graph = self._dynamic.snapshot()
        return Coloring(graph, {v: self._colors[v] for v in graph.vertices})

    def is_proper(self) -> bool:
        """Whether no live edge is monochromatic (O(m) scan)."""
        colors = self._colors
        return all(colors[u] != colors[v] for u, v in self._dynamic.edges())

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def handle_insert(self, u: int, v: int) -> bool:
        """Repair the coloring after inserting ``{u, v}``; returns whether a
        vertex was recolored."""
        colors = self._colors
        if colors[u] != colors[v]:
            return False
        dynamic = self._dynamic
        victim = u if dynamic.degree(u) <= dynamic.degree(v) else v
        taken = {colors[w] for w in dynamic.neighbors(victim)}
        fresh = 0
        while fresh in taken:
            fresh += 1
        colors[victim] = fresh
        self.recolors += 1
        return True

    def handle_delete(self, u: int, v: int) -> None:
        """Deletions cannot invalidate a proper coloring; kept for symmetry."""

    def refresh(self, snapshot: Graph | None = None) -> None:
        """Recolor from scratch in reverse degeneracy order (palette reset)."""
        if snapshot is None:
            snapshot = self._dynamic.snapshot()
        if snapshot.num_vertices != self._dynamic.num_vertices:
            raise GraphError("refresh snapshot must cover the full vertex set")
        self._colors = [0] * self._dynamic.num_vertices
        if snapshot.num_edges:
            self._install(degeneracy_order_coloring(snapshot))
        self.refreshes += 1

    def __repr__(self) -> str:
        return f"IncrementalColoring(colors={self.num_colors()}, recolors={self.recolors})"
