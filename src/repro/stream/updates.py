"""Value objects for streaming updates and per-batch metric reports.

An :class:`EdgeUpdate` is a single insert (``+``) or delete (``-``) of one
edge; an :class:`UpdateBatch` is the unit the service API accepts and the
unit the MPC accounting charges rounds for.  :class:`BatchReport` records
what maintaining the structures through one batch actually cost (flips,
recolors, rebuilds, compactions, simulated rounds), and
:class:`StreamSummary` aggregates reports across a whole trace.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.errors import GraphError

INSERT = "+"
DELETE = "-"


@dataclass(frozen=True)
class EdgeUpdate:
    """One edge insertion (``op == '+'``) or deletion (``op == '-'``)."""

    op: str
    u: int
    v: int

    def __post_init__(self) -> None:
        if self.op not in (INSERT, DELETE):
            raise GraphError(f"unknown update op {self.op!r} (expected '+' or '-')")
        if self.u == self.v:
            raise GraphError(f"self loop ({self.u}, {self.v}) is not allowed")

    @property
    def is_insert(self) -> bool:
        return self.op == INSERT


@dataclass(frozen=True)
class UpdateBatch:
    """An ordered batch of edge updates, applied atomically by the service."""

    updates: tuple[EdgeUpdate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "updates", tuple(self.updates))
        object.__setattr__(self, "_columns", None)
        object.__setattr__(self, "_insert_columns", None)
        object.__setattr__(self, "_num_inserts", None)

    def __len__(self) -> int:
        return len(self.updates)

    def columns(self) -> tuple[array, array, array]:
        """The batch as flat ``(ops, us, vs)`` columns (op 1 = insert).

        Endpoints keep the *raw* update order — canonicalisation is the
        kernels' concern — and the columns are built once and cached (the
        batch is frozen), so validation, absorption and the recolor scan
        all read the same buffers without re-walking the update objects.
        """
        cached = self._columns
        if cached is None:
            ops = array("l")
            us = array("l")
            vs = array("l")
            for update in self.updates:
                ops.append(1 if update.is_insert else 0)
                us.append(update.u)
                vs.append(update.v)
            cached = (ops, us, vs)
            object.__setattr__(self, "_columns", cached)
        return cached

    def insert_columns(self) -> tuple[array, array]:
        """``(us, vs)`` columns of just the insertions, in raw batch order.

        Raw order matters: the coloring's victim rule reads ``update.u``
        versus ``update.v`` as written, so these columns feed the
        recolor-candidate scan byte-identically to the per-update loop.
        """
        cached = self._insert_columns
        if cached is None:
            us = array("l")
            vs = array("l")
            for update in self.updates:
                if update.is_insert:
                    us.append(update.u)
                    vs.append(update.v)
            cached = (us, vs)
            object.__setattr__(self, "_insert_columns", cached)
        return cached

    @property
    def num_inserts(self) -> int:
        # One C-speed pass over the cached op column (1 = insert), computed
        # once: quota admission and round estimation read this per tick.
        cached = self._num_inserts
        if cached is None:
            cached = int(sum(self.columns()[0]))
            object.__setattr__(self, "_num_inserts", cached)
        return cached

    @property
    def num_deletes(self) -> int:
        return len(self.updates) - self.num_inserts

    @property
    def net_inserts(self) -> int:
        """Net live-edge growth this batch causes (inserts minus deletes).

        The quantity the engine's quota admission projects: applying the
        batch moves the live graph from ``m`` to ``m + net_inserts`` edges.
        """
        return 2 * self.num_inserts - len(self.updates)

    @classmethod
    def from_ops(cls, ops) -> "UpdateBatch":
        """Build from an iterable of ``(op, u, v)`` triples."""
        return cls(tuple(EdgeUpdate(op, int(u), int(v)) for op, u, v in ops))


@dataclass
class BatchReport:
    """What one batch cost, and where the maintained structures ended up.

    ``conflict_groups`` / ``parallel_groups`` describe the batch-parallel
    repair plan: how many vertex-disjoint conflict groups the batch split
    into and how many of them were cap-safe (resolved concurrently);
    ``proactive_flips`` counts deletion-triggered opportunistic flips (a
    subset of ``flips``).

    The scheduling columns (``tenants_served`` / ``tenants_deferred`` /
    ``backlog_updates`` / ``quota_breaches``) are populated only on
    *engine-level* aggregate rows — one row per scheduler tick — and stay 0
    on a standalone service's per-batch reports (a lone service serves
    itself every batch).

    ``wall_clock_s`` is *host* time (monotonic, measured whether or not
    tracing is attached) — a property of this run's hardware and schedule,
    not of the simulated algorithm.  It is excluded from equality and from
    :meth:`as_dict` so that byte-identical determinism fingerprints keep
    comparing only simulated outcomes; trace-level aggregates surface it via
    :meth:`StreamSummary.as_dict` instead.
    """

    batch_index: int
    num_inserts: int
    num_deletes: int
    flips: int
    recolors: int
    rebuilds: int
    compactions: int
    rounds: int
    num_edges: int
    journal_size: int
    max_outdegree: int
    outdegree_cap: int
    num_colors: int
    conflict_groups: int = 0
    parallel_groups: int = 0
    proactive_flips: int = 0
    tenants_served: int = 0
    tenants_deferred: int = 0
    backlog_updates: int = 0
    quota_breaches: int = 0
    wall_clock_s: float = field(default=0.0, compare=False)

    @property
    def num_updates(self) -> int:
        return self.num_inserts + self.num_deletes

    @property
    def amortised_flips(self) -> float:
        """Flips per update in this batch (the amortised-work measure)."""
        return self.flips / max(self.num_updates, 1)

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for the reporting layer."""
        return {
            "batch": float(self.batch_index),
            "inserts": float(self.num_inserts),
            "deletes": float(self.num_deletes),
            "flips": float(self.flips),
            "recolors": float(self.recolors),
            "rebuilds": float(self.rebuilds),
            "compactions": float(self.compactions),
            "rounds": float(self.rounds),
            "m": float(self.num_edges),
            "journal": float(self.journal_size),
            "max_outdegree": float(self.max_outdegree),
            "outdegree_cap": float(self.outdegree_cap),
            "colors": float(self.num_colors),
            "conflict_groups": float(self.conflict_groups),
            "parallel_groups": float(self.parallel_groups),
            "proactive_flips": float(self.proactive_flips),
            "served": float(self.tenants_served),
            "deferred": float(self.tenants_deferred),
            "backlog": float(self.backlog_updates),
            "quota_breaches": float(self.quota_breaches),
        }


@dataclass
class StreamSummary:
    """Aggregate of all batch reports of one streamed trace."""

    reports: list[BatchReport] = field(default_factory=list)

    def add(self, report: BatchReport) -> None:
        self.reports.append(report)

    @property
    def num_batches(self) -> int:
        return len(self.reports)

    @property
    def total_updates(self) -> int:
        return sum(r.num_updates for r in self.reports)

    @property
    def total_flips(self) -> int:
        return sum(r.flips for r in self.reports)

    @property
    def total_recolors(self) -> int:
        return sum(r.recolors for r in self.reports)

    @property
    def total_rebuilds(self) -> int:
        return sum(r.rebuilds for r in self.reports)

    @property
    def total_compactions(self) -> int:
        return sum(r.compactions for r in self.reports)

    @property
    def total_proactive_flips(self) -> int:
        return sum(r.proactive_flips for r in self.reports)

    @property
    def total_rounds(self) -> int:
        return sum(r.rounds for r in self.reports)

    @property
    def total_served(self) -> int:
        """Tenant-services across all ticks (engine-level summaries only)."""
        return sum(r.tenants_served for r in self.reports)

    @property
    def total_deferred(self) -> int:
        """Tenant-deferrals across all ticks (engine-level summaries only)."""
        return sum(r.tenants_deferred for r in self.reports)

    @property
    def total_quota_breaches(self) -> int:
        return sum(r.quota_breaches for r in self.reports)

    @property
    def max_backlog_updates(self) -> int:
        """Largest end-of-tick backlog observed (engine-level summaries only)."""
        return max((r.backlog_updates for r in self.reports), default=0)

    @property
    def total_wall_clock_s(self) -> float:
        """Host wall-clock summed over all reports (monotonic, host-only)."""
        return sum(r.wall_clock_s for r in self.reports)

    @property
    def amortised_flips(self) -> float:
        """Flips per update across the whole trace."""
        return self.total_flips / max(self.total_updates, 1)

    def final_report(self) -> BatchReport:
        if not self.reports:
            raise GraphError("no batches have been applied yet")
        return self.reports[-1]

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary of trace-level aggregates for the reporting layer."""
        summary = {
            "batches": float(self.num_batches),
            "updates": float(self.total_updates),
            "flips": float(self.total_flips),
            "recolors": float(self.total_recolors),
            "rebuilds": float(self.total_rebuilds),
            "compactions": float(self.total_compactions),
            "proactive_flips": float(self.total_proactive_flips),
            "rounds": float(self.total_rounds),
            "amortised_flips": self.amortised_flips,
            "served": float(self.total_served),
            "deferred": float(self.total_deferred),
            "quota_breaches": float(self.total_quota_breaches),
            "max_backlog": float(self.max_backlog_updates),
            "wall_clock_s": float(self.total_wall_clock_s),
        }
        if self.reports:
            final = self.final_report()
            summary["final_max_outdegree"] = float(final.max_outdegree)
            summary["final_outdegree_cap"] = float(final.outdegree_cap)
            summary["final_colors"] = float(final.num_colors)
            summary["final_m"] = float(final.num_edges)
        return summary
