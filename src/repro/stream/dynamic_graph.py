"""A mutable edge-churn overlay over the immutable CSR :class:`Graph`.

The CSR :class:`~repro.graph.graph.Graph` is deliberately immutable — the
simulators rely on algorithms producing explicit outputs rather than editing
their input.  Streaming workloads still need mutation, so
:class:`DynamicGraph` layers a journal on top of a frozen base graph.  Since
the columnar rework the journal has two synchronized representations:

* a **columnar op log** — three flat ``array('l')`` columns (op, u, v; op 1 =
  insert, 0 = delete, endpoints canonical) recording every update since the
  last compaction.  This is what the kernel layer consumes: snapshot builds
  and compaction run :func:`repro.kernels.compact_journal` over the columns
  (vectorized on the numpy backend), and batch validation reads the derived
  key columns.  The log is periodically *compressed* back to its canonical
  form (one op per surviving overlay entry) so cancelling churn cannot grow
  it without bound;
* **O(1) read-path indexes** — the added-edge dict, tombstone set, delta
  adjacency and delta degrees that back ``has_edge``/``degree``/``neighbors``
  in O(overlay) extra work, exactly as before.

Reads that need a full CSR go through :meth:`snapshot`, which is now backed
by a **generation-tagged cache**: every mutation bumps an internal version,
and a snapshot is rebuilt from the journal only when the version moved —
repeated snapshot consumers between compactions (quality checks, properness
scans, exports) share one build instead of forcing a replay each.
``journal_replay_ops`` counts the ops actually replayed, which is what the
snapshot-cache microbench in ``benchmarks/bench_stream_hotpaths.py`` pins.

Once the journal grows past ``compaction_fraction · m`` (at least
``min_compaction_journal`` entries), the overlay is **compacted**: the
surviving edge set becomes the new frozen base (reusing a fresh cached
snapshot when one exists) and the journal resets.  Compaction is therefore
amortised O(1) words of CSR rebuild per update, and every existing read-path
kernel (``peel_layers``, ``induced_subgraph``, degeneracy, orientation merge,
the MPC loaders) keeps working unchanged on the compacted :meth:`snapshot`.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from collections.abc import Iterator

from repro import kernels
from repro.errors import GraphError
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.obs.tracer import NULL_TRACER


class DynamicGraph:
    """A graph on a fixed vertex set ``0..n-1`` under edge insertions/deletions.

    Parameters
    ----------
    base:
        Initial (immutable) graph; the vertex universe is fixed to its size.
    compaction_fraction:
        Compact once the journal exceeds this fraction of the current edge
        count (amortises the CSR rebuild over the updates that caused it).
    min_compaction_journal:
        Never compact before the journal has at least this many entries
        (avoids thrashing on tiny graphs).
    snapshot_caching:
        Keep the generation-tagged snapshot cache (default).  Disabling it
        forces every :meth:`snapshot` call to replay the journal — the
        baseline the snapshot-cache microbench measures against.
    """

    __slots__ = (
        "_base",
        "_n",
        "_added",
        "_added_adj",
        "_removed",
        "_delta_degree",
        "_num_edges",
        "_journal_ops",
        "_journal_u",
        "_journal_v",
        "_version",
        "_snapshot_cache",
        "_snapshot_version",
        "_base_keys",
        "_overlay_keys",
        "_overlay_keys_version",
        "_tracer",
        "snapshot_caching",
        "compaction_fraction",
        "min_compaction_journal",
        "num_compactions",
        "total_updates",
        "journal_replay_ops",
        "snapshot_hits",
        "snapshot_builds",
    )

    def __init__(
        self,
        base: Graph,
        compaction_fraction: float = 0.25,
        min_compaction_journal: int = 64,
        snapshot_caching: bool = True,
    ) -> None:
        if compaction_fraction <= 0:
            raise GraphError("compaction_fraction must be positive")
        if min_compaction_journal < 1:
            raise GraphError("min_compaction_journal must be at least 1")
        self._base = base
        self._n = base.num_vertices
        self._added: dict[Edge, None] = {}
        self._added_adj: dict[int, set[int]] = {}
        self._removed: set[Edge] = set()
        self._delta_degree: dict[int, int] = {}
        self._num_edges = base.num_edges
        self._journal_ops = array("l")
        self._journal_u = array("l")
        self._journal_v = array("l")
        self._version = 0
        self._snapshot_cache: Graph | None = None
        self._snapshot_version = -1
        self._base_keys: array | None = None
        self._overlay_keys: tuple[array, array] | None = None
        self._overlay_keys_version = -1
        self._tracer = NULL_TRACER
        self.snapshot_caching = snapshot_caching
        self.compaction_fraction = compaction_fraction
        self.min_compaction_journal = min_compaction_journal
        self.num_compactions = 0
        self.total_updates = 0
        self.journal_replay_ops = 0
        self.snapshot_hits = 0
        self.snapshot_builds = 0

    @classmethod
    def empty(cls, num_vertices: int, **kwargs) -> "DynamicGraph":
        """A dynamic graph with ``num_vertices`` vertices and no edges."""
        return cls(Graph.empty(num_vertices), **kwargs)

    def instrument(self, tracer) -> None:
        """Attach a tracer: compaction and overlay-read (snapshot build) spans
        carry the journal length and overlay delta size in their args.
        Observation only — results are byte-identical with it on or off."""
        self._tracer = NULL_TRACER if tracer is None else tracer

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` (fixed at construction)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of currently live edges."""
        return self._num_edges

    @property
    def vertices(self) -> range:
        """The vertex set, as a ``range`` object."""
        return range(self._n)

    @property
    def base(self) -> Graph:
        """The frozen CSR graph beneath the overlay (advances on compaction)."""
        return self._base

    @property
    def journal_size(self) -> int:
        """Number of overlay entries (added edges + tombstones).

        This is the *net* delta the overlay holds — the quantity compaction
        thresholds and batch reports use — not the op-log length (see
        :attr:`journal_length`).
        """
        return len(self._added) + len(self._removed)

    @property
    def journal_length(self) -> int:
        """Length of the columnar op log (ops recorded since compaction)."""
        return len(self._journal_ops)

    def _base_has(self, e: Edge) -> bool:
        """Base-edge membership via bisect on the cached key column.

        Deliberately avoids ``e in self._base``: that would force the base
        graph's ``edge_ids`` hash map, an O(m) dict build the tick hot path
        would re-pay after every compaction.  The sorted key column is
        already maintained for batch validation, so membership is one
        C-level bisect.
        """
        keys = self.base_edge_keys()
        key = e[0] * max(self._n, 1) + e[1]
        i = bisect_left(keys, key)
        return i < len(keys) and keys[i] == key

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is currently live."""
        e = normalize_edge(u, v)
        if e in self._added:
            return True
        if e in self._removed:
            return False
        return self._base_has(e)

    def degree(self, v: int) -> int:
        """Current degree of vertex ``v`` (base degree plus overlay delta)."""
        return self._base.degree(v) + self._delta_degree.get(v, 0)

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of the current neighbors of ``v``."""
        removed = self._removed
        if removed:
            base_part = [
                w for w in self._base.neighbors(v)
                if (normalize_edge(v, w)) not in removed
            ]
        else:
            base_part = list(self._base.neighbors(v))
        extra = self._added_adj.get(v)
        if extra:
            base_part.extend(extra)
            base_part.sort()
        return tuple(base_part)

    def edges(self) -> Iterator[Edge]:
        """Iterate over the live edges in canonical sorted order."""
        added = sorted(self._added)
        removed = self._removed
        edge_u, edge_v = self._base.edge_endpoints
        i = 0
        la = len(added)
        for e in zip(edge_u, edge_v):
            if e in removed:
                continue
            while i < la and added[i] < e:
                yield added[i]
                i += 1
            yield e
        while i < la:
            yield added[i]
            i += 1

    # ------------------------------------------------------------------ #
    # Key columns (batch-validation inputs)
    # ------------------------------------------------------------------ #

    def base_edge_keys(self) -> array:
        """The base graph's edges as a sorted key column (cached per base).

        Keys use the shared :func:`repro.kernels.encode_edge_keys` convention
        (``u * max(n, 1) + v``); compaction invalidates the cache.
        """
        if self._base_keys is None:
            edge_u, edge_v = self._base.edge_endpoints
            self._base_keys = kernels.encode_edge_keys(self._n, edge_u, edge_v)
        return self._base_keys

    def overlay_edge_keys(self) -> tuple[array, array]:
        """``(added_keys, removed_keys)`` sorted key columns (cached per version)."""
        if self._overlay_keys is None or self._overlay_keys_version != self._version:
            stride = max(self._n, 1)
            added = array("l", (u * stride + v for u, v in sorted(self._added)))
            removed = array("l", (u * stride + v for u, v in sorted(self._removed)))
            self._overlay_keys = (added, removed)
            self._overlay_keys_version = self._version
        return self._overlay_keys

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def _check_vertex_range(self, u: int, v: int) -> None:
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"edge ({u}, {v}) references a vertex outside 0..{self._n - 1}")

    def _bump_degree(self, u: int, v: int, delta: int) -> None:
        for x in (u, v):
            updated = self._delta_degree.get(x, 0) + delta
            if updated:
                self._delta_degree[x] = updated
            else:
                self._delta_degree.pop(x, None)

    def _record(self, op: int, e: Edge) -> None:
        """Append one op to the columnar log and advance the generation."""
        self._journal_ops.append(op)
        self._journal_u.append(e[0])
        self._journal_v.append(e[1])
        self._version += 1
        self.total_updates += 1
        overlay = len(self._added) + len(self._removed)
        if overlay == 0:
            # The overlay cancelled out: the state *is* the base again, so
            # the log carries no information.
            del self._journal_ops[:], self._journal_u[:], self._journal_v[:]
        elif len(self._journal_ops) > 2 * overlay + self.min_compaction_journal:
            self._compress_journal()

    def _compress_journal(self) -> None:
        """Rewrite the op log in canonical form (one op per overlay entry).

        The log's only consumer is last-op-wins journal merging, so the
        overlay indexes — which hold exactly each touched edge's final state
        — are a complete, minimal description of it.  Compression keeps the
        log (and with it every snapshot build) O(journal_size) even when a
        trace inserts and deletes the same edges below the compaction
        threshold forever.
        """
        ops = array("l")
        edge_u = array("l")
        edge_v = array("l")
        for u, v in self._added:  # insertion order (a dict), deterministic
            ops.append(1)
            edge_u.append(u)
            edge_v.append(v)
        for u, v in sorted(self._removed):
            ops.append(0)
            edge_u.append(u)
            edge_v.append(v)
        self._journal_ops = ops
        self._journal_u = edge_u
        self._journal_v = edge_v

    def add_edge(self, u: int, v: int) -> None:
        """Insert the edge ``{u, v}``; raises :class:`GraphError` if already live."""
        self._check_vertex_range(u, v)
        e = normalize_edge(u, v)
        if e in self._removed:
            self._removed.discard(e)
        elif e in self._added or self._base_has(e):
            raise GraphError(f"edge {e} is already present")
        else:
            self._added[e] = None
            self._added_adj.setdefault(e[0], set()).add(e[1])
            self._added_adj.setdefault(e[1], set()).add(e[0])
        self._bump_degree(e[0], e[1], 1)
        self._num_edges += 1
        self._record(1, e)
        self._maybe_compact()

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``{u, v}``; raises :class:`GraphError` if not live."""
        self._check_vertex_range(u, v)
        e = normalize_edge(u, v)
        if e in self._added:
            del self._added[e]
            self._added_adj[e[0]].discard(e[1])
            self._added_adj[e[1]].discard(e[0])
        elif e not in self._removed and self._base_has(e):
            self._removed.add(e)
        else:
            raise GraphError(f"edge {e} is not present")
        self._bump_degree(e[0], e[1], -1)
        self._num_edges -= 1
        self._record(0, e)
        self._maybe_compact()

    def apply_ops(self, ops, us, vs) -> None:
        """Absorb a columnar op batch (op 1 = insert, 0 = delete), in order.

        Exactly equivalent to calling :meth:`add_edge`/:meth:`remove_edge`
        per op — including the per-op compaction-threshold check, which the
        deterministic round accounting pins — just without building update
        objects.  The service feeds pre-validated batch columns through
        here.
        """
        add = self.add_edge
        remove = self.remove_edge
        for op, u, v in zip(ops, us, vs):
            if op:
                add(u, v)
            else:
                remove(u, v)

    # ------------------------------------------------------------------ #
    # Compaction / snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Graph:
        """The current edge set as an immutable CSR :class:`Graph`.

        When the overlay is empty this is the base graph itself (O(1)).
        Otherwise the cached snapshot is returned while the graph hasn't
        moved since it was built; a stale (or disabled) cache rebuilds via
        the ``compact_journal`` kernel — one vectorized merge of the journal
        columns over the base edge columns.
        """
        if not self._added and not self._removed:
            return self._base
        if (
            self.snapshot_caching
            and self._snapshot_cache is not None
            and self._snapshot_version == self._version
        ):
            self.snapshot_hits += 1
            return self._snapshot_cache
        graph = self._build_snapshot()
        if self.snapshot_caching:
            self._snapshot_cache = graph
            self._snapshot_version = self._version
        return graph

    def _build_snapshot(self) -> Graph:
        """Replay the journal columns over the base (the cache-miss path)."""
        with self._tracer.span(
            "overlay-read",
            cat="stream",
            journal=len(self._journal_ops),
            delta=self.journal_size,
        ):
            base_u, base_v = self._base.edge_endpoints
            edge_u, edge_v = kernels.compact_journal(
                self._n, base_u, base_v,
                self._journal_ops, self._journal_u, self._journal_v,
            )
        self.journal_replay_ops += len(self._journal_ops)
        self.snapshot_builds += 1
        metrics = self._tracer.metrics
        if metrics.enabled:
            metrics.inc("stream.journal_replay_ops", len(self._journal_ops))
            metrics.inc("stream.snapshot_builds")
        return Graph._from_columns(self._n, edge_u, edge_v)

    def compact(self) -> Graph:
        """Fold the overlay into a fresh CSR base graph and reset the journal.

        A fresh cached snapshot is promoted to base as-is (no second replay);
        with no overlay the call is a no-op, so back-to-back compactions
        never advance the base or the generation spuriously.
        """
        if self._added or self._removed:
            with self._tracer.span(
                "compaction",
                cat="stream",
                journal=len(self._journal_ops),
                delta=self.journal_size,
            ):
                self._base = self.snapshot()
            self._added.clear()
            self._added_adj.clear()
            self._removed.clear()
            self._delta_degree.clear()
            del self._journal_ops[:], self._journal_u[:], self._journal_v[:]
            self._snapshot_cache = None
            self._snapshot_version = -1
            self._base_keys = None
            self._overlay_keys = None
            self._overlay_keys_version = -1
            self.num_compactions += 1
            metrics = self._tracer.metrics
            if metrics.enabled:
                metrics.inc("stream.graph_compactions")
        return self._base

    def _maybe_compact(self) -> None:
        threshold = max(
            self.min_compaction_journal,
            int(self.compaction_fraction * max(self._num_edges, 1)),
        )
        if self.journal_size > threshold:
            self.compact()

    # ------------------------------------------------------------------ #
    # Checkpoint seam
    # ------------------------------------------------------------------ #

    def state_columns(self) -> dict:
        """The complete mutable state as JSON-serializable columns.

        Base edge columns + the journal columns are sufficient to rebuild
        the overlay indexes exactly (see :meth:`from_state`); the counters
        ride along so restored telemetry continues where it left off.
        """
        base_u, base_v = self._base.edge_endpoints
        return {
            "num_vertices": self._n,
            "base_u": list(base_u),
            "base_v": list(base_v),
            "journal_ops": list(self._journal_ops),
            "journal_u": list(self._journal_u),
            "journal_v": list(self._journal_v),
            "compaction_fraction": self.compaction_fraction,
            "min_compaction_journal": self.min_compaction_journal,
            "snapshot_caching": bool(self.snapshot_caching),
            "num_compactions": self.num_compactions,
            "total_updates": self.total_updates,
            "journal_replay_ops": self.journal_replay_ops,
            "snapshot_hits": self.snapshot_hits,
            "snapshot_builds": self.snapshot_builds,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DynamicGraph":
        """Rebuild a graph from :meth:`state_columns` output, byte-identically.

        The overlay indexes are reconstructed by replaying the journal
        columns with the :meth:`add_edge`/:meth:`remove_edge` index mutations
        *only* — no re-journaling, no compaction checks — so the restored
        ``_added`` dict reproduces the original's insertion order (journal
        order, which :meth:`_compress_journal` preserves) and the journal
        columns land verbatim.
        """
        base = Graph._from_columns(
            state["num_vertices"],
            array("l", state["base_u"]),
            array("l", state["base_v"]),
        )
        graph = cls(
            base,
            compaction_fraction=state["compaction_fraction"],
            min_compaction_journal=state["min_compaction_journal"],
            snapshot_caching=state["snapshot_caching"],
        )
        ops = array("l", state["journal_ops"])
        edge_u = array("l", state["journal_u"])
        edge_v = array("l", state["journal_v"])
        for op, u, v in zip(ops, edge_u, edge_v):
            e = (u, v)
            if op:
                if e in graph._removed:
                    graph._removed.discard(e)
                else:
                    graph._added[e] = None
                    graph._added_adj.setdefault(u, set()).add(v)
                    graph._added_adj.setdefault(v, set()).add(u)
                graph._bump_degree(u, v, 1)
                graph._num_edges += 1
            else:
                if e in graph._added:
                    del graph._added[e]
                    graph._added_adj[u].discard(v)
                    graph._added_adj[v].discard(u)
                else:
                    graph._removed.add(e)
                graph._bump_degree(u, v, -1)
                graph._num_edges -= 1
        graph._journal_ops = ops
        graph._journal_u = edge_u
        graph._journal_v = edge_v
        graph._version = len(ops)
        graph.num_compactions = state["num_compactions"]
        graph.total_updates = state["total_updates"]
        graph.journal_replay_ops = state["journal_replay_ops"]
        graph.snapshot_hits = state["snapshot_hits"]
        graph.snapshot_builds = state["snapshot_builds"]
        return graph

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self._n}, m={self._num_edges}, "
            f"journal={self.journal_size}, compactions={self.num_compactions})"
        )
