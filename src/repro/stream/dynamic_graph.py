"""A mutable edge-churn overlay over the immutable CSR :class:`Graph`.

The CSR :class:`~repro.graph.graph.Graph` is deliberately immutable — the
simulators rely on algorithms producing explicit outputs rather than editing
their input.  Streaming workloads still need mutation, so
:class:`DynamicGraph` layers a small journal on top of a frozen base graph:

* **added edges** live in an insertion-ordered journal (``dict`` used as an
  ordered set) plus a per-vertex delta adjacency;
* **deleted base edges** are tombstoned in a set (deleting a journal edge
  simply drops it from the journal);
* every read (``has_edge``, ``degree``, ``neighbors``) merges the base CSR
  view with the overlay in O(overlay) extra work.

Once the journal grows past ``compaction_fraction · m`` (at least
``min_compaction_journal`` entries), the overlay is **compacted**: the
surviving edge set is merged back into a fresh CSR graph in one linear pass
and the journal resets.  Compaction is therefore amortised O(1) words of CSR
rebuild per update, and — crucially — every existing read-path kernel
(``peel_layers``, ``induced_subgraph``, degeneracy, orientation merge, the MPC
loaders) keeps working unchanged on the compacted :meth:`snapshot`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import GraphError
from repro.graph.graph import Edge, Graph, normalize_edge


class DynamicGraph:
    """A graph on a fixed vertex set ``0..n-1`` under edge insertions/deletions.

    Parameters
    ----------
    base:
        Initial (immutable) graph; the vertex universe is fixed to its size.
    compaction_fraction:
        Compact once the journal exceeds this fraction of the current edge
        count (amortises the CSR rebuild over the updates that caused it).
    min_compaction_journal:
        Never compact before the journal has at least this many entries
        (avoids thrashing on tiny graphs).
    """

    __slots__ = (
        "_base",
        "_n",
        "_added",
        "_added_adj",
        "_removed",
        "_delta_degree",
        "_num_edges",
        "compaction_fraction",
        "min_compaction_journal",
        "num_compactions",
        "total_updates",
    )

    def __init__(
        self,
        base: Graph,
        compaction_fraction: float = 0.25,
        min_compaction_journal: int = 64,
    ) -> None:
        if compaction_fraction <= 0:
            raise GraphError("compaction_fraction must be positive")
        if min_compaction_journal < 1:
            raise GraphError("min_compaction_journal must be at least 1")
        self._base = base
        self._n = base.num_vertices
        self._added: dict[Edge, None] = {}
        self._added_adj: dict[int, set[int]] = {}
        self._removed: set[Edge] = set()
        self._delta_degree: dict[int, int] = {}
        self._num_edges = base.num_edges
        self.compaction_fraction = compaction_fraction
        self.min_compaction_journal = min_compaction_journal
        self.num_compactions = 0
        self.total_updates = 0

    @classmethod
    def empty(cls, num_vertices: int, **kwargs) -> "DynamicGraph":
        """A dynamic graph with ``num_vertices`` vertices and no edges."""
        return cls(Graph.empty(num_vertices), **kwargs)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` (fixed at construction)."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of currently live edges."""
        return self._num_edges

    @property
    def vertices(self) -> range:
        """The vertex set, as a ``range`` object."""
        return range(self._n)

    @property
    def base(self) -> Graph:
        """The frozen CSR graph beneath the overlay (advances on compaction)."""
        return self._base

    @property
    def journal_size(self) -> int:
        """Number of overlay entries (added edges + tombstones)."""
        return len(self._added) + len(self._removed)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is currently live."""
        e = normalize_edge(u, v)
        if e in self._added:
            return True
        if e in self._removed:
            return False
        return e in self._base

    def degree(self, v: int) -> int:
        """Current degree of vertex ``v`` (base degree plus overlay delta)."""
        return self._base.degree(v) + self._delta_degree.get(v, 0)

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of the current neighbors of ``v``."""
        removed = self._removed
        if removed:
            base_part = [
                w for w in self._base.neighbors(v)
                if (normalize_edge(v, w)) not in removed
            ]
        else:
            base_part = list(self._base.neighbors(v))
        extra = self._added_adj.get(v)
        if extra:
            base_part.extend(extra)
            base_part.sort()
        return tuple(base_part)

    def edges(self) -> Iterator[Edge]:
        """Iterate over the live edges in canonical sorted order."""
        added = sorted(self._added)
        removed = self._removed
        edge_u, edge_v = self._base.edge_endpoints
        i = 0
        la = len(added)
        for e in zip(edge_u, edge_v):
            if e in removed:
                continue
            while i < la and added[i] < e:
                yield added[i]
                i += 1
            yield e
        while i < la:
            yield added[i]
            i += 1

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def _check_vertex_range(self, u: int, v: int) -> None:
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"edge ({u}, {v}) references a vertex outside 0..{self._n - 1}")

    def _bump_degree(self, u: int, v: int, delta: int) -> None:
        for x in (u, v):
            updated = self._delta_degree.get(x, 0) + delta
            if updated:
                self._delta_degree[x] = updated
            else:
                self._delta_degree.pop(x, None)

    def add_edge(self, u: int, v: int) -> None:
        """Insert the edge ``{u, v}``; raises :class:`GraphError` if already live."""
        self._check_vertex_range(u, v)
        e = normalize_edge(u, v)
        if e in self._removed:
            self._removed.discard(e)
        elif e in self._added or e in self._base:
            raise GraphError(f"edge {e} is already present")
        else:
            self._added[e] = None
            self._added_adj.setdefault(e[0], set()).add(e[1])
            self._added_adj.setdefault(e[1], set()).add(e[0])
        self._bump_degree(e[0], e[1], 1)
        self._num_edges += 1
        self.total_updates += 1
        self._maybe_compact()

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``{u, v}``; raises :class:`GraphError` if not live."""
        self._check_vertex_range(u, v)
        e = normalize_edge(u, v)
        if e in self._added:
            del self._added[e]
            self._added_adj[e[0]].discard(e[1])
            self._added_adj[e[1]].discard(e[0])
        elif e in self._base and e not in self._removed:
            self._removed.add(e)
        else:
            raise GraphError(f"edge {e} is not present")
        self._bump_degree(e[0], e[1], -1)
        self._num_edges -= 1
        self.total_updates += 1
        self._maybe_compact()

    # ------------------------------------------------------------------ #
    # Compaction / snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self) -> Graph:
        """The current edge set as an immutable CSR :class:`Graph`.

        When the overlay is empty this is the base graph itself (O(1));
        otherwise it is a fresh graph built by one linear merge of the
        tombstone-filtered base edge columns with the sorted journal.
        """
        if not self._added and not self._removed:
            return self._base
        return Graph._from_canonical_sorted(self._n, list(self.edges()))

    def compact(self) -> Graph:
        """Fold the overlay into a fresh CSR base graph and reset the journal."""
        if self._added or self._removed:
            self._base = self.snapshot()
            self._added.clear()
            self._added_adj.clear()
            self._removed.clear()
            self._delta_degree.clear()
            self.num_compactions += 1
        return self._base

    def _maybe_compact(self) -> None:
        threshold = max(
            self.min_compaction_journal,
            int(self.compaction_fraction * max(self._num_edges, 1)),
        )
        if self.journal_size > threshold:
            self.compact()

    def __repr__(self) -> str:
        return (
            f"DynamicGraph(n={self._n}, m={self._num_edges}, "
            f"journal={self.journal_size}, compactions={self.num_compactions})"
        )
