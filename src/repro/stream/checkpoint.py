"""Journal-based checkpoint/restore for the resident :class:`StreamEngine`.

The byte-identical determinism contract (same seed ⇒ identical heads, colors
and rounds for any backend/worker-count/kernel) makes *exact* checkpointing
both implementable and testable to equality: serialize every
behavior-affecting column — each tenant's ``DynamicGraph`` base + journal
columns, orientation heads/λ̂/cap, coloring column, sub-ledger
``RoundStats``, queue, lifecycle state, plus the shared ledger, planner
credits, and tick history — and a restored engine is indistinguishable from
one that never stopped.  Host-side resources (executors, pools, shard scope
keys, shared-memory segments) are deliberately **not** state: they are
re-provisioned on restore and cannot influence simulated outcomes.

File format (version |VERSION|)::

    {
      "format":   "repro-stream-checkpoint",
      "version":  1,
      "checksum": sha256 hex of the canonical payload JSON,
      "payload":  { ... engine state ... }
    }

written atomically (temp file + ``os.replace``) so a crash mid-checkpoint
never leaves a truncated snapshot under the target name.  Reading validates
format, version and checksum and raises
:class:`~repro.errors.CheckpointError` on any mismatch; restoring re-derives
the engine fingerprint and compares it against the one recorded at
checkpoint time, so a corrupted-but-checksummed (hand-edited) payload cannot
silently produce a divergent engine.  Restore is all-or-nothing: on any
failure the partially built engine is closed before the error propagates.

The per-component (de)serializers live next to the state they capture:
``DynamicGraph.state_columns``/``from_state``,
``IncrementalOrientation.state_dict``/``from_state``,
``IncrementalColoring.state_dict``/``from_state``,
``MPCCluster.ledger_state``/``from_ledger_state``,
``RoundStats.state_dict``/``from_state``,
``StreamingService.state_dict``/``from_state``, and
``TickPlanner.state_dict``/``load_state``.  This module composes them into
one engine-level snapshot and owns the container format.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque

from repro.engine import ParallelExecutor, WorkerPool
from repro.errors import CheckpointError, GraphError, QuotaExceededError, ReproError
from repro.mpc.cluster import MPCCluster
from repro.stream.engine import StreamEngine, TenantState, TickReport, _Tenant
from repro.stream.scheduler import make_planner
from repro.stream.service import StreamingService, _report_state, _restore_report
from repro.stream.updates import StreamSummary, UpdateBatch

CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "engine_state",
    "fingerprint",
    "fingerprint_digest",
    "read_checkpoint",
    "restore_engine",
    "save_engine",
    "write_checkpoint",
]


# ---------------------------------------------------------------------- #
# Fingerprints
# ---------------------------------------------------------------------- #

def fingerprint(engine: StreamEngine) -> dict:
    """The engine's complete simulated outcome as a JSON-serializable dict.

    Covers everything the byte-identity contract pins: per-tenant
    orientation heads (canonical CSR), coloring column, λ̂/cap,
    flip/rebuild counters, sub-ledger round count, edge count and journal
    length, plus the shared ledger's rounds, the per-tick round charges,
    lifecycle states and the planner's credits.  Two engines with equal
    fingerprints are behaviorally indistinguishable going forward.
    """
    tenants: dict[str, dict | None] = {}
    for name in engine.tenant_names():
        tenant = engine._tenants[name]
        if tenant.service is None:
            tenants[name] = None
            continue
        service = tenant.service
        orientation = service.orientation.state_dict()
        tenants[name] = {
            "state": tenant.state.value,
            "heads_indptr": orientation["indptr"],
            "heads": orientation["heads"],
            "lambda_bound": orientation["lambda_bound"],
            "outdegree_cap": orientation["outdegree_cap"],
            "flips": orientation["flips"],
            "rebuilds": orientation["rebuilds"],
            "colors": (
                None if service.coloring is None
                else list(service.coloring._colors)
            ),
            "rounds": service.cluster.stats.num_rounds,
            "num_edges": service.dynamic.num_edges,
            "journal_length": service.dynamic.journal_length,
        }
    return {
        "engine_rounds": (
            0 if engine.cluster is None else engine.cluster.stats.num_rounds
        ),
        "tick_rounds": [tick.rounds for tick in engine.ticks],
        "planner": engine.planner.state_dict(),
        "tenants": tenants,
    }


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def fingerprint_digest(print_or_engine) -> str:
    """SHA-256 hex digest of a fingerprint (or of an engine's, directly)."""
    if isinstance(print_or_engine, StreamEngine):
        print_or_engine = fingerprint(print_or_engine)
    return hashlib.sha256(_canonical(print_or_engine)).hexdigest()


# ---------------------------------------------------------------------- #
# Container I/O
# ---------------------------------------------------------------------- #

def write_checkpoint(path, payload: dict) -> None:
    """Write a payload under the versioned, checksummed container, atomically."""
    container = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "checksum": hashlib.sha256(_canonical(payload)).hexdigest(),
        "payload": payload,
    }
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(container, handle)
    os.replace(tmp, path)


def read_checkpoint(path) -> dict:
    """Read and validate a container; returns the payload.

    Raises :class:`~repro.errors.CheckpointError` for a missing file, broken
    JSON (truncation), an unknown format marker, a version this code cannot
    restore, or a checksum mismatch (bit rot / partial overwrite).
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            container = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} is not valid JSON (truncated or corrupted): {exc}"
        ) from exc
    if not isinstance(container, dict) or container.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path!r} is not a {CHECKPOINT_FORMAT} file"
        )
    version = container.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {version!r}; "
            f"this build restores version {CHECKPOINT_VERSION}"
        )
    payload = container.get("payload")
    checksum = container.get("checksum")
    if payload is None or checksum is None:
        raise CheckpointError(f"checkpoint {path!r} is missing payload or checksum")
    actual = hashlib.sha256(_canonical(payload)).hexdigest()
    if actual != checksum:
        raise CheckpointError(
            f"checkpoint {path!r} failed its checksum "
            f"(recorded {checksum[:12]}..., computed {actual[:12]}...)"
        )
    return payload


# ---------------------------------------------------------------------- #
# Engine state assembly
# ---------------------------------------------------------------------- #

def _tick_state(tick: TickReport) -> dict:
    return {
        "tick_index": tick.tick_index,
        "reports": {
            name: _report_state(report) for name, report in tick.reports.items()
        },
        "rounds": tick.rounds,
        "planned": list(tick.planned),
        "deferred": list(tick.deferred),
        "quota_breached": list(tick.quota_breached),
        "backlog_updates": tick.backlog_updates,
        "round_budget": tick.round_budget,
        "planned_rounds": tick.planned_rounds,
        "wall_clock_s": tick.wall_clock_s,
    }


def _restore_tick(state: dict) -> TickReport:
    return TickReport(
        tick_index=state["tick_index"],
        reports={
            str(name): _restore_report(row)
            for name, row in state["reports"].items()
        },
        rounds=state["rounds"],
        planned=tuple(state["planned"]),
        deferred=tuple(state["deferred"]),
        quota_breached=tuple(state["quota_breached"]),
        backlog_updates=state["backlog_updates"],
        round_budget=state["round_budget"],
        planned_rounds=state["planned_rounds"],
        wall_clock_s=state["wall_clock_s"],
    )


def _quarantine_state(exc: QuotaExceededError | None) -> dict | None:
    if exc is None:
        return None
    return {
        "used_words": exc.used_words,
        "quota_words": exc.quota_words,
        "scope": exc.scope,
    }


def _restore_quarantine(state: dict | None) -> QuotaExceededError | None:
    if state is None:
        return None
    return QuotaExceededError(
        state["used_words"], state["quota_words"], scope=state["scope"]
    )


def _tenant_state(tenant: _Tenant) -> dict:
    return {
        "name": tenant.name,
        "index": tenant.index,
        "weight": tenant.weight,
        "state": tenant.state.value,
        "round_mark": tenant.round_mark,
        "queue": [
            [[update.op, update.u, update.v] for update in batch.updates]
            for batch in tenant.queue
        ],
        "quarantine": _quarantine_state(tenant.quarantine),
        "service": None if tenant.service is None else tenant.service.state_dict(),
        "final_summary": (
            None
            if tenant.final_summary is None
            else [_report_state(report) for report in tenant.final_summary.reports]
        ),
    }


def engine_state(engine: StreamEngine) -> dict:
    """The complete engine as a JSON-serializable payload (plus fingerprint)."""
    return {
        "delta": engine._delta,
        "seed": engine._seed,
        "round_budget": engine.round_budget,
        "planner": engine.planner.state_dict(),
        "engine_ledger": (
            None if engine.cluster is None else engine.cluster.ledger_state()
        ),
        "tenants": [
            _tenant_state(tenant) for tenant in engine._tenants.values()
        ],
        "ticks": [_tick_state(tick) for tick in engine.ticks],
        "summary": [_report_state(report) for report in engine.summary.reports],
        "fingerprint": fingerprint_digest(fingerprint(engine)),
    }


def save_engine(engine: StreamEngine, path) -> dict:
    """Snapshot an engine to ``path``; returns ``{"fingerprint": digest}``.

    Callers normally go through :meth:`StreamEngine.checkpoint`, which takes
    the engine lock first so the snapshot lands on a tick boundary.
    """
    payload = engine_state(engine)
    write_checkpoint(path, payload)
    return {"fingerprint": payload["fingerprint"]}


# ---------------------------------------------------------------------- #
# Restore
# ---------------------------------------------------------------------- #

def _restore_summary(rows: list) -> StreamSummary:
    summary = StreamSummary()
    for row in rows:
        summary.add(_restore_report(row))
    return summary


def restore_engine(
    path,
    workers: int = 1,
    executor: ParallelExecutor | None = None,
    tracer=None,
) -> StreamEngine:
    """Rebuild a :class:`StreamEngine` from a snapshot file, byte-identically.

    All-or-nothing: any validation or resurrection failure closes whatever
    was built and raises :class:`~repro.errors.CheckpointError`.  The
    restored engine's fingerprint is recomputed and compared against the one
    recorded at checkpoint time before this returns.
    """
    payload = read_checkpoint(path)
    try:
        planner_spec = payload["planner"]
        planner = make_planner(
            str(planner_spec["policy"]), **planner_spec["options"]
        )
        planner.load_state(planner_spec["state"])
        engine = StreamEngine(
            delta=payload["delta"],
            seed=payload["seed"],
            workers=workers,
            executor=executor,
            planner=planner,
            round_budget=payload["round_budget"],
            tracer=tracer,
        )
    except (KeyError, TypeError, ValueError, GraphError) as exc:
        raise CheckpointError(f"snapshot payload is malformed: {exc}") from exc
    try:
        if payload["engine_ledger"] is not None:
            engine.cluster = MPCCluster.from_ledger_state(payload["engine_ledger"])
            if engine.tracer.enabled:
                engine.cluster.instrument(engine.tracer)
        for state in payload["tenants"]:
            tenant_state = TenantState(state["state"])
            if state["service"] is None:
                if tenant_state is not TenantState.RETIRED:
                    raise CheckpointError(
                        f"tenant {state['name']!r} has no service state but is "
                        f"{tenant_state.value}, not retired"
                    )
                service = None
            else:
                tenant_pool = WorkerPool(
                    workers=1, registry=engine._ensure_pool().registry
                )
                if engine.tracer.enabled:
                    tenant_pool.instrument(engine.tracer)
                service = StreamingService.from_state(
                    state["service"],
                    pool=tenant_pool,
                    tracer=engine.tracer if engine.tracer.enabled else None,
                )
            tenant = _Tenant(
                name=str(state["name"]),
                index=int(state["index"]),
                service=service,
                weight=int(state["weight"]),
                queue=deque(
                    UpdateBatch.from_ops(batch) for batch in state["queue"]
                ),
                round_mark=int(state["round_mark"]),
                quarantine=_restore_quarantine(state["quarantine"]),
                state=tenant_state,
                final_summary=(
                    None
                    if state["final_summary"] is None
                    else _restore_summary(state["final_summary"])
                ),
            )
            engine._tenants[tenant.name] = tenant
        engine.ticks = [_restore_tick(state) for state in payload["ticks"]]
        engine.summary = _restore_summary(payload["summary"])
        digest = fingerprint_digest(fingerprint(engine))
        if digest != payload["fingerprint"]:
            raise CheckpointError(
                f"restored engine fingerprint {digest[:12]}... does not match "
                f"the snapshot's {str(payload['fingerprint'])[:12]}... — "
                f"the payload was altered after checksum computation"
            )
        engine.tracer.metrics.inc("engine.restores")
    except CheckpointError:
        engine.close()
        raise
    except (KeyError, TypeError, ValueError, IndexError, ReproError) as exc:
        engine.close()
        raise CheckpointError(f"snapshot payload is malformed: {exc}") from exc
    except BaseException:
        engine.close()
        raise
    return engine
