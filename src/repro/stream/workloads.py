"""Streaming trace generators and workload descriptions.

A :class:`StreamTrace` is a reproducible dynamic-graph instance: an initial
graph plus an ordered sequence of :class:`~repro.stream.updates.UpdateBatch`
batches.  Three adversaries cover the regimes the maintenance theory cares
about:

* :func:`uniform_churn_trace` — stationary density: every batch deletes
  random live edges and inserts random absent ones in equal measure.  The
  arboricity stays flat, so the flip path should do all the work and the
  Theorem 1.1 fallback should never fire.
* :func:`sliding_window_trace` — only the most recent ``window`` edges are
  live (the classical turnstile/window model).  Heavy deletion pressure makes
  the arboricity estimate go stale-high, exercising the amortised
  ``ensure_quality`` rebuild-down path.
* :func:`densifying_core_trace` — an adversary keeps inserting edges inside a
  small vertex core, driving ``λ`` up until the flip search saturates and the
  maintainer must fall back to the full static pipeline (rebuild-up path).
* :func:`bursty_churn_trace` — stationary churn whose batch sizes alternate
  quiet/burst, the traffic shape that makes multi-tenant backlogs diverge;
  :func:`skewed_tenant_traces` builds the mixed bursty/steady fleets the
  scheduler experiment (S4) serves.

Every generator is deterministic given its seed.  :class:`StreamWorkload`
mirrors :class:`repro.experiments.workloads.Workload` (name / family / size /
seed / params, ``materialize()``/``describe()``), so the experiment registry
can sweep streaming workloads exactly like static ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.stream.updates import DELETE, INSERT, EdgeUpdate, UpdateBatch


@dataclass(frozen=True)
class StreamTrace:
    """A reproducible dynamic-graph instance: initial graph + update batches."""

    name: str
    initial: Graph
    batches: tuple[UpdateBatch, ...]

    @property
    def num_updates(self) -> int:
        return sum(len(batch) for batch in self.batches)


class _EdgeSampler:
    """The live edge set with O(1) membership, add, remove and uniform sample."""

    def __init__(self, edges=()) -> None:
        self._edges: list[Edge] = list(edges)
        self._index: dict[Edge, int] = {e: i for i, e in enumerate(self._edges)}

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, e: Edge) -> bool:
        return e in self._index

    def add(self, e: Edge) -> None:
        self._index[e] = len(self._edges)
        self._edges.append(e)

    def remove(self, e: Edge) -> None:
        i = self._index.pop(e)
        last = self._edges.pop()
        if last != e:
            self._edges[i] = last
            self._index[last] = i

    def sample(self, rng: random.Random) -> Edge:
        return self._edges[rng.randrange(len(self._edges))]

    def sample_absent(self, rng: random.Random, n: int) -> Edge:
        """Uniformly random canonical edge not currently live."""
        if n < 2:
            raise GraphError("need at least 2 vertices to insert an edge")
        if len(self._edges) >= n * (n - 1) // 2:
            raise GraphError("no absent edge to insert: the graph is complete")
        while True:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u == v:
                continue
            e = normalize_edge(u, v)
            if e not in self._index:
                return e


def _churn_step(live: _EdgeSampler, rng: random.Random, num_vertices: int) -> EdgeUpdate:
    """One balanced churn update: delete a random live edge or insert a random
    absent one with equal probability (forced to whichever side is possible
    when the graph is empty or complete)."""
    saturated = len(live) >= num_vertices * (num_vertices - 1) // 2
    if len(live) and (saturated or rng.random() < 0.5):
        e = live.sample(rng)
        live.remove(e)
        return EdgeUpdate(DELETE, *e)
    e = live.sample_absent(rng, num_vertices)
    live.add(e)
    return EdgeUpdate(INSERT, *e)


def uniform_churn_trace(
    num_vertices: int,
    arboricity: int = 3,
    num_batches: int = 10,
    batch_size: int = 200,
    seed: int = 0,
) -> StreamTrace:
    """Stationary churn: each update deletes a random live edge or inserts a
    random absent one with equal probability, so the density stays flat."""
    base = union_of_random_forests(num_vertices, arboricity=arboricity, seed=seed)
    rng = random.Random(seed + 0x5EED)
    live = _EdgeSampler(base.edges)
    batches: list[UpdateBatch] = []
    for _ in range(num_batches):
        updates = [_churn_step(live, rng, num_vertices) for _ in range(batch_size)]
        batches.append(UpdateBatch(tuple(updates)))
    return StreamTrace(
        name=f"uniform-churn-{num_vertices}", initial=base, batches=tuple(batches)
    )


def bursty_churn_trace(
    num_vertices: int,
    arboricity: int = 3,
    num_batches: int = 10,
    batch_size: int = 200,
    burst_factor: int = 4,
    burst_period: int = 3,
    seed: int = 0,
) -> StreamTrace:
    """Bursty churn: every ``burst_period``-th batch is ``burst_factor``× big.

    Same balanced insert/delete churn as :func:`uniform_churn_trace`, but the
    batch sizes alternate between quiet (``batch_size``) and burst
    (``burst_factor · batch_size``) — the traffic shape that makes tenant
    backlogs *diverge* on a shared engine, so scheduling policies actually
    have something to decide.  The first batch of every period is the burst
    (a fleet of bursty tenants starts loud, the scheduler's worst case).
    """
    if burst_factor < 1:
        raise GraphError("burst_factor must be at least 1")
    if burst_period < 1:
        raise GraphError("burst_period must be at least 1")
    base = union_of_random_forests(num_vertices, arboricity=arboricity, seed=seed)
    rng = random.Random(seed + 0xB5B5)
    live = _EdgeSampler(base.edges)
    batches: list[UpdateBatch] = []
    for index in range(num_batches):
        size = batch_size * (burst_factor if index % burst_period == 0 else 1)
        updates = [_churn_step(live, rng, num_vertices) for _ in range(size)]
        batches.append(UpdateBatch(tuple(updates)))
    return StreamTrace(
        name=f"bursty-churn-{num_vertices}", initial=base, batches=tuple(batches)
    )


def sliding_window_trace(
    num_vertices: int,
    window: int = 512,
    num_batches: int = 10,
    batch_size: int = 200,
    seed: int = 0,
) -> StreamTrace:
    """Window model: each batch inserts fresh edges and expires the oldest.

    The initial graph holds ``window`` random edges; each batch appends
    ``batch_size`` new random edges and deletes however many oldest edges
    exceed the window, keeping exactly ``window`` edges live at batch ends.
    """
    max_edges = num_vertices * (num_vertices - 1) // 2
    if window + batch_size > max_edges:
        raise GraphError(
            f"window ({window}) + batch_size ({batch_size}) exceeds the "
            f"{max_edges} possible edges on {num_vertices} vertices"
        )
    rng = random.Random(seed + 0x51D)
    live = _EdgeSampler()
    fifo: list[Edge] = []
    while len(live) < window:
        e = live.sample_absent(rng, num_vertices)
        live.add(e)
        fifo.append(e)
    initial = Graph(num_vertices, sorted(fifo))
    oldest = 0
    batches: list[UpdateBatch] = []
    for _ in range(num_batches):
        updates: list[EdgeUpdate] = []
        for _ in range(batch_size):
            e = live.sample_absent(rng, num_vertices)
            live.add(e)
            fifo.append(e)
            updates.append(EdgeUpdate(INSERT, *e))
        while len(live) > window:
            e = fifo[oldest]
            oldest += 1
            if e in live:
                live.remove(e)
                updates.append(EdgeUpdate(DELETE, *e))
        batches.append(UpdateBatch(tuple(updates)))
    return StreamTrace(
        name=f"sliding-window-{num_vertices}", initial=initial, batches=tuple(batches)
    )


def densifying_core_trace(
    num_vertices: int,
    core_size: int = 32,
    num_batches: int = 10,
    batch_size: int = 200,
    background_fraction: float = 0.25,
    seed: int = 0,
) -> StreamTrace:
    """Adversarial densification: most inserts land inside a small core.

    Starting from a sparse forest, each batch spends
    ``(1 - background_fraction)`` of its updates inserting edges among the
    first ``core_size`` vertices (until the core is a clique) and the rest on
    uniform background churn.  The core's arboricity grows like
    ``core_edges / core_size``, eventually saturating the flip search and
    forcing Theorem 1.1 fallback rebuilds.
    """
    if core_size > num_vertices:
        raise GraphError("core_size cannot exceed num_vertices")
    base = union_of_random_forests(num_vertices, arboricity=1, seed=seed)
    rng = random.Random(seed + 0xC0DE)
    live = _EdgeSampler(base.edges)
    core_candidates = [
        (u, v) for u in range(core_size) for v in range(u + 1, core_size)
    ]
    rng.shuffle(core_candidates)
    core_pointer = 0
    batches: list[UpdateBatch] = []
    for _ in range(num_batches):
        updates: list[EdgeUpdate] = []
        core_budget = int(batch_size * (1.0 - background_fraction))
        while core_budget > 0 and core_pointer < len(core_candidates):
            e = core_candidates[core_pointer]
            core_pointer += 1
            if e in live:
                continue
            live.add(e)
            updates.append(EdgeUpdate(INSERT, *e))
            core_budget -= 1
        while len(updates) < batch_size:
            updates.append(_churn_step(live, rng, num_vertices))
        batches.append(UpdateBatch(tuple(updates)))
    return StreamTrace(
        name=f"densifying-core-{num_vertices}", initial=base, batches=tuple(batches)
    )


# --------------------------------------------------------------------------- #
# Workload descriptions (registry-compatible)
# --------------------------------------------------------------------------- #

_FAMILIES = {
    "uniform_churn": uniform_churn_trace,
    "bursty_churn": bursty_churn_trace,
    "sliding_window": sliding_window_trace,
    "densifying_core": densifying_core_trace,
}


def stream_family_names() -> tuple[str, ...]:
    """Names of the available streaming trace families."""
    return tuple(sorted(_FAMILIES))


def generate_trace(family: str, num_vertices: int, seed: int = 0, **params) -> StreamTrace:
    """Generate a trace by family name (mirrors ``generators.generate``)."""
    try:
        generator = _FAMILIES[family]
    except KeyError:
        raise GraphError(
            f"unknown streaming family {family!r}; available: {stream_family_names()}"
        ) from None
    return generator(num_vertices, seed=seed, **params)


def multi_tenant_traces(
    num_tenants: int = 4,
    num_vertices: int = 256,
    num_batches: int = 6,
    batch_size: int = 120,
    seed: int = 0,
    families: tuple[str, ...] | None = None,
) -> list[StreamTrace]:
    """One independent trace per tenant, cycling through the adversary families.

    The default cycle (churn, window, densifying core) gives a mixed fleet:
    stationary tenants, deletion-heavy tenants exercising the rebuild-*down*
    path, and a densifying tenant forcing Theorem 1.1 fallback rebuilds —
    the rebuild-heavy mix the multi-tenant determinism suite runs.  Each
    tenant's trace draws from its own seed (splitmix of ``(seed, index)``,
    the same derivation the engine uses for tenant service seeds), so the
    fleet is reproducible and tenants stay independent.  Trace names are
    ``{family}-t{index}`` — unique even when families repeat.
    """
    from repro.engine import derive_seed  # engine has no stream imports (no cycle)

    if num_tenants < 1:
        raise GraphError("num_tenants must be at least 1")
    cycle = (
        tuple(families)
        if families is not None
        else ("uniform_churn", "sliding_window", "densifying_core")
    )
    if not cycle:
        raise GraphError("families must name at least one trace family")
    unknown = [family for family in cycle if family not in _FAMILIES]
    if unknown:
        raise GraphError(
            f"unknown streaming families {unknown}; available: {stream_family_names()}"
        )
    traces: list[StreamTrace] = []
    for index in range(num_tenants):
        family = cycle[index % len(cycle)]
        params: dict[str, object] = {
            "num_batches": num_batches,
            "batch_size": batch_size,
        }
        if family == "sliding_window":
            max_edges = num_vertices * (num_vertices - 1) // 2
            params["window"] = min(4 * batch_size, max(max_edges - batch_size, 1))
        if family == "densifying_core":
            params["core_size"] = max(2, min(32, num_vertices))
        trace = generate_trace(
            family, num_vertices, seed=derive_seed(seed, index) % (2**31), **params
        )
        traces.append(
            StreamTrace(
                name=f"{family}-t{index}", initial=trace.initial, batches=trace.batches
            )
        )
    return traces


def skewed_tenant_traces(
    num_tenants: int = 8,
    num_vertices: int = 96,
    num_bursty: int = 2,
    num_batches: int = 4,
    batch_size: int = 40,
    burst_factor: int = 4,
    burst_period: int = 2,
    arboricity: int = 3,
    seed: int = 0,
) -> list[StreamTrace]:
    """A skewed fleet: ``num_bursty`` bursty tenants among steady ones.

    The first ``num_bursty`` tenants stream :func:`bursty_churn_trace`
    traffic (their backlog in queued updates dwarfs the others'), the rest
    stream steady :func:`uniform_churn_trace` batches of the base size —
    the 2-bursty/6-steady fleet of the S4 acceptance scenario.  All traces
    are pure churn (no window expiry, no densifying core), so no tenant
    triggers fallback rebuilds and per-batch costs stay within the
    scheduler's :func:`~repro.stream.scheduler.estimate_batch_rounds`
    envelope — which is what makes budget guarantees exact.  Per-tenant
    seeds derive from ``(seed, index)`` exactly like
    :func:`multi_tenant_traces`.
    """
    from repro.engine import derive_seed  # engine has no stream imports (no cycle)

    if num_tenants < 1:
        raise GraphError("num_tenants must be at least 1")
    if not 0 <= num_bursty <= num_tenants:
        raise GraphError("num_bursty must be between 0 and num_tenants")
    traces: list[StreamTrace] = []
    for index in range(num_tenants):
        tenant_seed = derive_seed(seed, index) % (2**31)
        if index < num_bursty:
            trace = bursty_churn_trace(
                num_vertices,
                arboricity=arboricity,
                num_batches=num_batches,
                batch_size=batch_size,
                burst_factor=burst_factor,
                burst_period=burst_period,
                seed=tenant_seed,
            )
            name = f"bursty-t{index}"
        else:
            trace = uniform_churn_trace(
                num_vertices,
                arboricity=arboricity,
                num_batches=num_batches,
                batch_size=batch_size,
                seed=tenant_seed,
            )
            name = f"steady-t{index}"
        traces.append(
            StreamTrace(name=name, initial=trace.initial, batches=trace.batches)
        )
    return traces


@dataclass(frozen=True)
class StreamWorkload:
    """A reproducible streaming instance description (registry-compatible)."""

    name: str
    family: str
    num_vertices: int
    seed: int = 0
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def materialize(self) -> StreamTrace:
        """Generate the trace described by this workload."""
        return generate_trace(
            self.family, self.num_vertices, seed=self.seed, **dict(self.params)
        )

    def describe(self) -> str:
        """One-line description for tables."""
        extras = ", ".join(f"{key}={value}" for key, value in self.params)
        suffix = f" ({extras})" if extras else ""
        return f"{self.family} n={self.num_vertices}{suffix}"


@dataclass(frozen=True)
class MultiTenantWorkload:
    """A reproducible multi-tenant fleet description (registry-compatible).

    Duck-types :class:`repro.experiments.workloads.Workload` like
    :class:`StreamWorkload` does, but ``materialize()`` yields a *list* of
    :class:`StreamTrace` objects — one per tenant — which the S3 runner
    feeds to a :class:`~repro.stream.engine.StreamEngine`.
    """

    name: str
    num_tenants: int
    num_vertices: int
    seed: int = 0
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    family: str = "multi_tenant"

    def materialize(self) -> list[StreamTrace]:
        """Generate the per-tenant traces described by this workload."""
        return multi_tenant_traces(
            num_tenants=self.num_tenants,
            num_vertices=self.num_vertices,
            seed=self.seed,
            **dict(self.params),
        )

    def describe(self) -> str:
        """One-line description for tables."""
        extras = ", ".join(f"{key}={value}" for key, value in self.params)
        suffix = f" ({extras})" if extras else ""
        return f"{self.family} tenants={self.num_tenants} n={self.num_vertices}{suffix}"


@dataclass(frozen=True)
class SchedulerWorkload:
    """A reproducible scheduled-fleet description (registry-compatible).

    Like :class:`MultiTenantWorkload` but the fleet is the skewed
    bursty/steady mix of :func:`skewed_tenant_traces` and the description
    carries the *scheduling configuration* — policy name, policy options,
    round budget — that the S4 runner hands to the
    :class:`~repro.stream.engine.StreamEngine`.
    """

    name: str
    num_tenants: int
    num_vertices: int
    policy: str = "serve-all"
    policy_options: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    round_budget: int | None = None
    seed: int = 0
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)
    family: str = "scheduler"

    def materialize(self) -> list[StreamTrace]:
        """Generate the per-tenant traces described by this workload."""
        return skewed_tenant_traces(
            num_tenants=self.num_tenants,
            num_vertices=self.num_vertices,
            seed=self.seed,
            **dict(self.params),
        )

    def make_planner(self):
        """Fresh planner for one run (policies carry per-run state)."""
        from repro.stream.scheduler import make_planner

        return make_planner(self.policy, **dict(self.policy_options))

    def describe(self) -> str:
        """One-line description for tables."""
        budget = "∞" if self.round_budget is None else str(self.round_budget)
        extras = ", ".join(f"{key}={value}" for key, value in self.policy_options)
        suffix = f" ({extras})" if extras else ""
        return (
            f"{self.policy}{suffix} budget={budget} "
            f"tenants={self.num_tenants} n={self.num_vertices}"
        )


def scheduler_suite(seed: int = 0) -> list[SchedulerWorkload]:
    """The default scheduling sweep used by experiment S4.

    One fleet shape — 8 tenants (2 bursty, 6 steady) on 96 vertices — under
    the three policies and two round budgets, so rows are directly
    comparable: ``serve-all`` unbudgeted is the PR 4 baseline, the budgeted
    rows show tail latency / backlog trading against the per-tick round cap.
    """
    fleet = dict(
        num_tenants=8,
        num_vertices=96,
        seed=seed,
        params=(
            ("num_bursty", 2),
            ("num_batches", 4),
            ("batch_size", 40),
            ("burst_factor", 4),
            ("burst_period", 2),
        ),
    )
    return [
        SchedulerWorkload(name="serve-all-unbudgeted", policy="serve-all", **fleet),
        SchedulerWorkload(
            name="top3-backlog-b18",
            policy="top-k-backlog",
            policy_options=(("k", 3),),
            round_budget=18,
            **fleet,
        ),
        SchedulerWorkload(
            name="drr-q4-b18",
            policy="deficit-round-robin",
            policy_options=(("quantum", 4),),
            round_budget=18,
            **fleet,
        ),
        SchedulerWorkload(
            name="top3-backlog-b36",
            policy="top-k-backlog",
            policy_options=(("k", 3),),
            round_budget=36,
            **fleet,
        ),
    ]


def multi_tenant_suite(seed: int = 0) -> list[MultiTenantWorkload]:
    """The default multi-tenant sweep used by experiment S3."""
    return [
        MultiTenantWorkload(
            name=f"multi-tenant-{tenants}x256",
            num_tenants=tenants,
            num_vertices=256,
            seed=seed,
            params=(("num_batches", 5), ("batch_size", 100)),
        )
        for tenants in (2, 4)
    ]


def streaming_suite(seed: int = 0) -> list[StreamWorkload]:
    """The default streaming sweep used by experiment S1."""
    return [
        StreamWorkload(
            name="uniform-churn-1024",
            family="uniform_churn",
            num_vertices=1024,
            seed=seed,
            params=(("arboricity", 3), ("num_batches", 8), ("batch_size", 200)),
        ),
        StreamWorkload(
            name="bursty-churn-512",
            family="bursty_churn",
            num_vertices=512,
            seed=seed,
            params=(
                ("arboricity", 3),
                ("num_batches", 6),
                ("batch_size", 150),
                ("burst_factor", 3),
                ("burst_period", 3),
            ),
        ),
        StreamWorkload(
            name="sliding-window-1024",
            family="sliding_window",
            num_vertices=1024,
            seed=seed,
            params=(("window", 1024), ("num_batches", 8), ("batch_size", 200)),
        ),
        StreamWorkload(
            name="densifying-core-512",
            family="densifying_core",
            num_vertices=512,
            seed=seed,
            params=(("core_size", 48), ("num_batches", 8), ("batch_size", 150)),
        ),
    ]
