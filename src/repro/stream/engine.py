"""Multi-tenant streaming: N independent services multiplexed on one engine.

A production deployment rarely serves one dynamic graph.  :class:`StreamEngine`
hosts N independent :class:`~repro.stream.service.StreamingService` *tenants*
on one shared :class:`~repro.engine.ParallelExecutor` and one shared
:class:`~repro.mpc.cluster.MPCCluster` ledger:

* **Isolation.**  Every tenant owns its full maintained state (dynamic
  graph, orientation, coloring), a *persistent* sub-ledger — forked from the
  shared cluster but provisioned for the tenant's own input
  (``fork(config=MPCConfig.for_graph(initial))``) — and a seed derived from
  its registration position (:func:`repro.engine.derive_seed`).  A tenant
  therefore behaves byte-for-byte like a standalone service on its own
  cluster with the same seed: identical per-batch reports, identical heads
  and colors (pinned by ``tests/stream/test_stream_engine.py``).

* **Ticks.**  Batches are queued per tenant with :meth:`StreamEngine.submit`;
  :meth:`StreamEngine.tick` serves the head batch of each *scheduled* tenant
  as parallel tasks on the shared executor (tenant states are disjoint, so
  any in-process backend is safe; tenants repair their own batches serially
  to keep the engine's pool the only one).  The shared ledger charges each
  tick by folding the tenants' tick-delta sub-ledgers with
  ``merge_parallel`` — **aggregate rounds = max over the tenants served in
  the tick**, volume = sum, memory = sum of tenant peaks — while tenant
  registration (the initial orientation build) folds sequentially, since
  tenants register one after another.  See the charging-model docstring in
  :mod:`repro.mpc.cluster`.

* **Scheduling.**  Which backlogged tenants a tick serves is the
  :class:`~repro.stream.scheduler.TickPlanner`'s decision (default:
  ``serve-all``, every backlogged tenant — the original behaviour).  Under a
  ``round_budget`` the planner admits tenants while the sum of their
  estimated per-batch round costs fits the budget; everyone else is
  *deferred* with their batches carried over intact, and a tick that serves
  nobody (budget exhausted, or no deficit-round-robin tenant eligible yet)
  folds an empty superstep — zero rounds charged.  Per-tenant
  ``add_tenant(..., weight=w)`` gives proportional budget shares under
  ``deficit-round-robin`` (credit accrues ``quantum × weight`` per tick);
  the no-starvation bound holds at every weight.  Scheduling never changes
  *what* a served tenant computes, only *when*: a tenant served under any
  policy stays byte-identical to its standalone run.

* **Memory quotas.**  ``add_tenant(..., memory_quota=Q)`` caps the tenant's
  persistent sub-ledger at ``Q`` words of global memory.  Before a batch is
  applied, the engine projects the post-batch graph size
  (:meth:`~repro.stream.service.StreamingService.projected_memory_words`);
  a projected breach raises :class:`~repro.errors.QuotaExceededError`
  *without touching the tenant* — the batch stays queued, the tenant is
  **quarantined** (never scheduled again, state frozen consistent), sibling
  tenants are served normally, and the tick is recorded as partial.  A
  fold-time ``check_quota`` backstop catches growth the projection cannot
  see (rebuild working sets); in that rarer path the triggering batch has
  already been applied, so the quarantined tenant is consistent but the
  batch is consumed.  Quarantine is not a death sentence:
  :meth:`StreamEngine.lift_quarantine` re-admits the tenant (optionally with
  a raised quota) and it resumes byte-identical to a never-quarantined run
  of its remaining trace.

* **Reporting.**  Per-tenant :class:`~repro.stream.updates.StreamSummary`
  objects are the tenants' own (:meth:`tenant_summary`); the engine-level
  :attr:`StreamEngine.summary` aggregates each tick into one synthetic
  :class:`~repro.stream.updates.BatchReport` row — counters sum across the
  tenants served, structure metrics (live edges, colors) sum across *all*
  tenants, outdegree/cap take the max, and ``rounds`` is the tick's
  max-over-tenants charge from the shared ledger.

* **Residency.**  The engine can run as a long-lived service instead of a
  drive-by loop: :meth:`StreamEngine.start` spawns a background ticker thread
  that drains schedulable backlogs on a configurable interval (woken early by
  every :meth:`submit`), while callers submit batches, add tenants, lift
  quarantines, and retire tenants concurrently — one engine-wide re-entrant
  lock makes every public entry point atomic against an in-flight tick.
  Tenants move through an explicit lifecycle state machine with typed
  transitions (:class:`TenantState`; illegal moves raise
  :class:`~repro.errors.LifecycleError`)::

                   add_tenant()
      provisioning ────────────▶ active ─────────────────▶ retired
                                  │   ▲                       ▲
                     quota breach │   │ next served batch     │ retire_tenant()
                                  ▼   │                       │
                           quarantined ──▶ lifted ────────────┘
                                lift_quarantine()

  (``lifted`` can also re-enter ``quarantined`` on a fresh breach before its
  first post-lift service; ``retired`` is terminal and reachable from every
  live state.)

* **Checkpoint/restore.**  :meth:`StreamEngine.checkpoint` serializes the
  complete engine state — every tenant's journal/base columns, orientation
  heads, coloring column, λ̂, sub-ledger, queue, lifecycle state, plus the
  shared ledger, planner credits and tick history — to a versioned,
  checksummed snapshot file (:mod:`repro.stream.checkpoint`), and
  :meth:`StreamEngine.restore` rebuilds a crashed or restarted engine from it
  **byte-identically**: same heads, colors, rounds and schedule as an engine
  that never stopped, verified on every restore by fingerprint equality.

The CLI front-end is ``python -m repro stream-multi``; experiment S3 sweeps
tenant counts through :func:`repro.experiments.streaming.run_multi_tenant_experiment`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum

from repro.engine import IN_PROCESS, THREAD, ParallelExecutor, WorkerPool, derive_seed
from repro.errors import GraphError, LifecycleError, QuotaExceededError, ReproError
from repro.obs.tracer import NULL_TRACER
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.stream.scheduler import (
    ServeAllPlanner,
    TenantLoad,
    TickPlanner,
    estimate_batch_rounds,
    make_planner,
)
from repro.stream.service import StreamingService, graph_memory_words
from repro.stream.updates import BatchReport, StreamSummary, UpdateBatch


def _apply_tenant_batch(
    service: StreamingService,
    batch: UpdateBatch,
    tracer=None,
    parent: int | None = None,
    tenant: str | None = None,
) -> BatchReport:
    """One tick task: apply one batch to one tenant (disjoint state).

    With a tracer attached the task wraps itself in a ``tenant`` span
    parented (explicitly — tick tasks may run on executor threads) under
    the tick span; the service's own ``batch`` span then nests inside it.
    """
    if tracer is None or not tracer.enabled:
        return service.apply(batch)
    with tracer.span("tenant", cat="engine", parent=parent, tenant=tenant):
        return service.apply(batch)


class TenantState(Enum):
    """Lifecycle states of a hosted tenant (see the module diagram)."""

    PROVISIONING = "provisioning"
    ACTIVE = "active"
    QUARANTINED = "quarantined"
    LIFTED = "lifted"
    RETIRED = "retired"


#: The allowed transitions; anything else raises :class:`LifecycleError`.
_LIFECYCLE = {
    TenantState.PROVISIONING: {TenantState.ACTIVE, TenantState.RETIRED},
    TenantState.ACTIVE: {TenantState.QUARANTINED, TenantState.RETIRED},
    TenantState.QUARANTINED: {TenantState.LIFTED, TenantState.RETIRED},
    TenantState.LIFTED: {
        TenantState.ACTIVE,
        TenantState.QUARANTINED,
        TenantState.RETIRED,
    },
    TenantState.RETIRED: set(),
}

#: States the planner may schedule (a lifted tenant re-activates on its first
#: post-lift service; see :meth:`StreamEngine.tick`).
_SCHEDULABLE = (TenantState.ACTIVE, TenantState.LIFTED)


@dataclass
class _Tenant:
    """Book-keeping for one hosted tenant."""

    name: str
    index: int
    service: StreamingService | None
    weight: int = 1
    """Proportional budget share under weighted-fair policies (DRR)."""
    queue: deque = field(default_factory=deque)
    round_mark: int = 0
    """Rounds of the tenant's sub-ledger already folded into the shared one."""
    quarantine: QuotaExceededError | None = None
    """Set once the tenant breached its quota; quarantined tenants keep their
    queue intact but are never scheduled again."""
    state: TenantState = TenantState.PROVISIONING
    """Lifecycle position; every change goes through the transition table."""
    final_summary: StreamSummary | None = None
    """Snapshot of the per-batch summary taken at retirement (the service
    itself is closed and dropped when a tenant retires)."""

    def backlog_updates(self) -> int:
        return sum(len(batch) for batch in self.queue)


@dataclass(frozen=True)
class TickReport:
    """What one engine tick did: one batch per served tenant, one parallel fold."""

    tick_index: int
    reports: dict[str, BatchReport]
    rounds: int
    """Rounds charged on the shared ledger for this tick (max over tenants)."""
    planned: tuple[str, ...] = ()
    """Tenants the policy scheduled this tick, in policy order."""
    deferred: tuple[str, ...] = ()
    """Backlogged tenants the policy (or the budget) pushed to a later tick."""
    quota_breached: tuple[str, ...] = ()
    """Tenants quarantined this tick for breaching their memory quota."""
    backlog_updates: int = 0
    """Queued updates across schedulable tenants at the end of the tick."""
    round_budget: int | None = None
    planned_rounds: int = 0
    """Sum of the planned tenants' estimated costs (≤ ``round_budget`` unless
    a single head-of-line batch alone exceeds it — the progress guarantee)."""
    wall_clock_s: float = field(default=0.0, compare=False)
    """Host wall-clock of the tick (monotonic; populated with tracing off
    too).  Excluded from equality — it describes this run's hardware, not
    the simulated outcome."""

    @property
    def num_tenants_served(self) -> int:
        return len(self.reports)

    @property
    def num_tenants_deferred(self) -> int:
        return len(self.deferred)

    @property
    def sequential_rounds(self) -> int:
        """What charging the served tenants one after another would have cost.

        The regression quantity: ``rounds`` (the parallel fold) must never
        exceed this, and is strictly below it whenever two served tenants
        both charged rounds in the tick.
        """
        return sum(report.rounds for report in self.reports.values())


class StreamEngine:
    """Hosts N independent streaming tenants on one executor + one ledger.

    Parameters
    ----------
    delta:
        Memory exponent used for the shared cluster and every per-tenant
        sub-ledger (when none is supplied).
    seed:
        Base seed; tenant ``i`` (registration order) receives
        ``derive_seed(seed, i)`` unless :meth:`add_tenant` pins one.
    workers:
        Host-side parallelism across tenants within a tick (1 = serial).
        Results are identical for any worker count.
    executor:
        Optional pre-built executor (overrides ``workers``).  Ticks run on
        in-process backends only — tenant tasks mutate live tenant state —
        so a process-backend executor degrades to the serial loop.
    cluster:
        Optional shared aggregate ledger; created from the first tenant's
        input when omitted (its provisioning only matters for the fold
        arithmetic, which is config-free).
    planner:
        Tick scheduling policy — a :class:`~repro.stream.scheduler.TickPlanner`
        instance or a policy name (``serve-all`` / ``top-k-backlog`` /
        ``deficit-round-robin``).  Defaults to ``serve-all``, the original
        every-backlogged-tenant behaviour.
    round_budget:
        Per-tick work budget: the planner admits tenants while the sum of
        their estimated per-batch round costs fits it (``None`` = unbounded).
        See :mod:`repro.stream.scheduler` for the admission contract.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Instruments the executor, the
        pool registry, the shared ledger and every tenant service, and wraps
        each tick in a span annotated with the planner's decisions (who was
        planned, deferred, quarantined, and why the budget said so).
        Observation only: outcomes are byte-identical with tracing on or off.
    """

    def __init__(
        self,
        delta: float = 0.5,
        seed: int = 0,
        workers: int = 1,
        executor: ParallelExecutor | None = None,
        cluster: MPCCluster | None = None,
        planner: TickPlanner | str | None = None,
        round_budget: int | None = None,
        tracer=None,
    ) -> None:
        self._delta = delta
        self._seed = seed
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._owns_executor = executor is None
        self._executor = (
            executor
            if executor is not None
            else ParallelExecutor(workers=workers, backend=THREAD)
        )
        if tracer is not None:
            self._executor.instrument(tracer)
        self.cluster = cluster
        if isinstance(planner, str):
            planner = make_planner(planner)
        self.planner = planner if planner is not None else ServeAllPlanner()
        if round_budget is not None and round_budget < 1:
            raise GraphError("round_budget must be at least 1 (or None to disable)")
        self.round_budget = round_budget
        self._pool: WorkerPool | None = None
        self._tenants: dict[str, _Tenant] = {}
        self.summary = StreamSummary()
        self.ticks: list[TickReport] = []
        # Residency: one re-entrant lock serializes every public entry point
        # against the background ticker, so checkpoint/lifecycle/submit calls
        # always land on a tick boundary.
        self._lock = threading.RLock()
        self._closed = False
        self._ticker: threading.Thread | None = None
        self._wake = threading.Event()
        self._stop_event = threading.Event()
        self.tick_errors: deque = deque(maxlen=64)
        """Errors the background ticker absorbed (most recent 64).  A failed
        batch stays queued (the tick contract), so the same error may repeat
        until the operator intervenes — quarantine, retire, or drop it."""

    @property
    def pool(self) -> WorkerPool | None:
        """The engine-owned worker pool (``None`` until the first tenant)."""
        return self._pool

    def _ensure_pool(self) -> WorkerPool:
        """Create the engine's pool lazily — no registry, segments or worker
        processes exist until a tenant needs them; :meth:`close` (and, as
        backstops, a finalizer and an ``atexit`` sweep in
        :mod:`repro.engine.shm`) guarantees the segments are unlinked."""
        if self._pool is None:
            self._pool = WorkerPool(executor=self._executor)
            if self.tracer.enabled:
                self._pool.instrument(self.tracer)
        return self._pool

    # ------------------------------------------------------------------ #
    # Tenant management
    # ------------------------------------------------------------------ #

    def add_tenant(
        self,
        name: str,
        initial: Graph,
        seed: int | None = None,
        flip_slack: int = 4,
        quality_interval: int = 1024,
        maintain_coloring: bool = True,
        proactive_flips: bool = True,
        lambda_seed: str | None = None,
        memory_quota: int | None = None,
        weight: int = 1,
    ) -> StreamingService:
        """Register a tenant and build its initial structures.

        The tenant's sub-ledger is provisioned for ``initial`` (so its
        per-batch charges match a standalone service exactly), and the
        construction rounds — the initial Theorem 1.1 orientation build —
        fold into the shared ledger immediately, sequentially: registrations
        happen one after another, not in a tick.  Returns the tenant's
        service (useful for direct inspection; mutate it only through the
        engine).

        ``memory_quota`` caps the tenant's sub-ledger at that many words of
        global memory (see the module docstring).  Registration itself must
        fit: a quota the initial graph (or the construction build's peak)
        already exceeds raises :class:`~repro.errors.QuotaExceededError` and
        leaves the tenant unregistered and the engine untouched.

        ``weight`` (integer ≥ 1, default 1) is the tenant's proportional
        share of the tick round budget under weighted-fair policies: with
        ``deficit-round-robin`` the tenant accrues ``quantum × weight``
        round credits per backlogged tick, so a weight-3 tenant is served
        about three times as often as a weight-1 sibling on a congested
        fleet.  Policies without a fairness notion ignore it.

        ``lambda_seed`` is forwarded to :class:`StreamingService` — pass
        ``"coreness"`` to seed the tenant's λ̂ from the guess-ladder peel
        instead of the static degeneracy estimate.

        Safe while the engine is resident: registration takes the engine
        lock, so it lands between ticks; the new tenant enters the lifecycle
        as ``provisioning`` and is ``active`` (schedulable) when this
        returns.
        """
        with self._lock:
            return self._add_tenant_locked(
                name,
                initial,
                seed=seed,
                flip_slack=flip_slack,
                quality_interval=quality_interval,
                maintain_coloring=maintain_coloring,
                proactive_flips=proactive_flips,
                lambda_seed=lambda_seed,
                memory_quota=memory_quota,
                weight=weight,
            )

    def _add_tenant_locked(
        self,
        name: str,
        initial: Graph,
        seed: int | None = None,
        flip_slack: int = 4,
        quality_interval: int = 1024,
        maintain_coloring: bool = True,
        proactive_flips: bool = True,
        lambda_seed: str | None = None,
        memory_quota: int | None = None,
        weight: int = 1,
    ) -> StreamingService:
        if self._closed:
            raise GraphError("engine is closed")
        if name in self._tenants:
            raise GraphError(f"tenant {name!r} is already registered")
        if not isinstance(weight, int) or weight < 1:
            raise GraphError(
                f"tenant weight must be an integer >= 1, got {weight!r}"
            )
        initial_words = graph_memory_words(initial.num_vertices, initial.num_edges)
        if memory_quota is not None and initial_words > memory_quota:
            raise QuotaExceededError(
                initial_words, memory_quota, scope=f"tenant {name!r} initial graph"
            )
        tenant_config = MPCConfig.for_graph(initial, delta=self._delta)
        created_cluster = self.cluster is None
        if created_cluster:
            self.cluster = MPCCluster(tenant_config)
        if self.tracer.enabled:
            self.cluster.instrument(self.tracer)
        ledger = self.cluster.fork(config=tenant_config, memory_quota=memory_quota)
        tenant_seed = (
            seed if seed is not None else derive_seed(self._seed, len(self._tenants))
        )
        # Each tenant gets a *derived* pool: its own (serial) repair executor
        # — tick tasks already run on the engine's thread pool, and nesting a
        # tenant's repair onto that same pool could deadlock it — but the
        # engine pool's shard registry, borrowed, so every tenant's shard
        # publications live (scoped, collision-free) in one registry whose
        # lifetime the engine owns.
        tenant_pool = WorkerPool(workers=1, registry=self._ensure_pool().registry)
        if self.tracer.enabled:
            tenant_pool.instrument(self.tracer)
        service = StreamingService(
            initial,
            delta=self._delta,
            flip_slack=flip_slack,
            quality_interval=quality_interval,
            seed=tenant_seed,
            cluster=ledger,
            maintain_coloring=maintain_coloring,
            pool=tenant_pool,
            proactive_flips=proactive_flips,
            lambda_seed=lambda_seed,
            tracer=self.tracer if self.tracer.enabled else None,
        )
        # The construction build's memory peak must fit the quota too; a
        # breach here leaves the engine untouched (nothing folded yet, and a
        # cluster provisioned from the rejected tenant is rolled back).
        try:
            ledger.check_quota()
        except QuotaExceededError:
            if created_cluster:
                self.cluster = None
            raise
        # A one-branch fold appends the construction rounds sequentially;
        # merge_parallel never mutates its branches, so the ledger's own
        # stats can be passed as-is (since() is only needed for tick deltas).
        self.cluster.merge_parallel([ledger.stats])
        tenant = _Tenant(
            name=name,
            index=len(self._tenants),
            service=service,
            weight=weight,
            round_mark=ledger.stats.num_rounds,
        )
        self._tenants[name] = tenant
        self.tracer.metrics.inc("engine.lifecycle.provisioning")
        self._transition(tenant, TenantState.ACTIVE)
        # Co-residency holds from registration, not from the first tick: the
        # one-branch fold above maxes memory, so re-observe the fleet-wide
        # sum of tenant peaks (what every tick fold maintains thereafter).
        live = [t for t in self._tenants.values() if t.service is not None]
        self.cluster.stats.observe_memory(
            sum(t.service.cluster.stats.peak_machine_memory_words for t in live),
            sum(t.service.cluster.stats.peak_global_memory_words for t in live),
        )
        return service

    def _transition(self, tenant: _Tenant, to: TenantState) -> None:
        """Move a tenant along the lifecycle graph; illegal moves raise.

        Every transition emits a per-state counter and a zero-width tracer
        span carrying the edge (``from -> to``), so a fleet's lifecycle
        history is reconstructible from the obs layer alone.
        """
        if to not in _LIFECYCLE[tenant.state]:
            raise LifecycleError(tenant.name, tenant.state.value, to.value)
        with self.tracer.span(
            "lifecycle",
            cat="engine",
            tenant=tenant.name,
            transition=f"{tenant.state.value} -> {to.value}",
        ):
            tenant.state = to
        self.tracer.metrics.inc(f"engine.lifecycle.{to.value}")

    def tenant_state(self, name: str) -> TenantState:
        """The tenant's current lifecycle state."""
        with self._lock:
            return self._tenant(name).state

    def retire_tenant(self, name: str) -> StreamSummary:
        """Remove a tenant from service; terminal and irreversible.

        Allowed from every live state (an operator retires quarantined
        tenants too); retiring twice raises
        :class:`~repro.errors.LifecycleError`.  The tenant's queued batches
        are dropped, its service is closed (shard scopes retired, pool
        released — the engine's shared registry is only borrowed and
        survives), and its rounds stay in the shared ledger: the work
        happened.  Returns the tenant's final per-batch summary.  The name
        stays registered (and un-reusable) so seed derivation for future
        tenants is unaffected.
        """
        with self._lock:
            tenant = self._tenant(name)
            self._transition(tenant, TenantState.RETIRED)
            dropped = len(tenant.queue)
            tenant.queue.clear()
            service = tenant.service
            tenant.final_summary = service.summary
            tenant.service = None
            service.close()
            metrics = self.tracer.metrics
            if metrics.enabled:
                metrics.inc("engine.tenants_retired")
                if dropped:
                    metrics.inc("engine.retired_dropped_batches", dropped)
            return tenant.final_summary

    def tenant_names(self) -> tuple[str, ...]:
        """Registered tenants, in registration order (retired included)."""
        return tuple(self._tenants)

    def tenant_service(self, name: str) -> StreamingService:
        """The tenant's service (raises :class:`GraphError` for unknown or
        retired names — a retired tenant's service no longer exists)."""
        tenant = self._tenant(name)
        if tenant.service is None:
            raise GraphError(f"tenant {name!r} is retired; its service is gone")
        return tenant.service

    def tenant_summary(self, name: str) -> StreamSummary:
        """The tenant's own per-batch summary (identical to a standalone run).

        For a retired tenant this is the summary frozen at retirement.
        """
        tenant = self._tenant(name)
        if tenant.service is None:
            return tenant.final_summary
        return tenant.service.summary

    def quarantined(self) -> dict[str, QuotaExceededError]:
        """Quarantined tenants and the quota breach that sidelined each."""
        return {
            tenant.name: tenant.quarantine
            for tenant in self._tenants.values()
            if tenant.state is TenantState.QUARANTINED
        }

    def lift_quarantine(
        self, name: str, new_quota: int | None = None
    ) -> QuotaExceededError:
        """Re-admit a quarantined tenant after operator intervention.

        ``new_quota`` replaces the tenant's sub-ledger quota (``None`` keeps
        the current one — legitimate when the operator freed memory another
        way).  Quarantine froze the tenant consistent with its queue intact,
        so the lifted tenant simply resumes: its remaining trace applies
        byte-identically to a run that was never quarantined.

        The lift must actually fit: if the tenant's recorded global-memory
        peak already exceeds the effective quota (the fold-time breach path
        — the triggering batch was applied before the breach was seen), the
        next fold would re-quarantine it immediately, so the lift raises
        :class:`~repro.errors.QuotaExceededError` and leaves the tenant
        quarantined with nothing changed.  Returns the breach that had
        sidelined the tenant (for operator logs).
        """
        with self._lock:
            tenant = self._tenant(name)
            if tenant.state is TenantState.RETIRED:
                # Typed: retirement is terminal, there is nothing to lift.
                raise LifecycleError(
                    name, TenantState.RETIRED.value, TenantState.LIFTED.value
                )
            if tenant.quarantine is None:
                raise GraphError(f"tenant {name!r} is not quarantined")
            if new_quota is not None and new_quota < 1:
                raise GraphError("new_quota must be at least 1 word (or None to keep)")
            cluster = tenant.service.cluster
            effective = new_quota if new_quota is not None else cluster.memory_quota
            peak = cluster.stats.peak_global_memory_words
            if effective is not None and peak > effective:
                raise QuotaExceededError(
                    peak, effective, scope=f"lifting quarantine on tenant {name!r}"
                )
            self._transition(tenant, TenantState.LIFTED)
            cluster.memory_quota = effective
            breach = tenant.quarantine
            tenant.quarantine = None
            self.tracer.metrics.inc("engine.quota_lifts")
            if self._ticker is not None:
                self._wake.set()
            return breach

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            raise GraphError(
                f"unknown tenant {name!r}; registered: {sorted(self._tenants)}"
            )
        return tenant

    # ------------------------------------------------------------------ #
    # Batch intake and ticks
    # ------------------------------------------------------------------ #

    def submit(self, name: str, batch: UpdateBatch) -> None:
        """Queue one batch for a tenant (resolved by a later :meth:`tick`).

        Thread-safe, and wakes the background ticker when one is running.
        Submitting to a retired tenant raises :class:`GraphError`; submitting
        to a quarantined one is allowed (the queue survives quarantine).
        """
        with self._lock:
            tenant = self._tenant(name)
            if tenant.state is TenantState.RETIRED:
                raise GraphError(f"tenant {name!r} is retired; cannot submit")
            tenant.queue.append(batch)
        if self._ticker is not None:
            self._wake.set()

    def submit_all(self, name: str, batches) -> None:
        """Queue a sequence of batches for a tenant, in order (thread-safe)."""
        with self._lock:
            tenant = self._tenant(name)
            if tenant.state is TenantState.RETIRED:
                raise GraphError(f"tenant {name!r} is retired; cannot submit")
            tenant.queue.extend(batches)
        if self._ticker is not None:
            self._wake.set()

    def pending(self, name: str | None = None) -> int:
        """Queued batches for one tenant, or across all tenants."""
        if name is not None:
            return len(self._tenant(name).queue)
        return sum(len(tenant.queue) for tenant in self._tenants.values())

    def _schedulable_pending(self) -> int:
        """Queued batches across tenants the planner may still serve."""
        return sum(
            len(tenant.queue)
            for tenant in self._tenants.values()
            if tenant.state in _SCHEDULABLE
        )

    def _tenant_loads(self, candidates: "list[_Tenant]") -> list[TenantLoad]:
        """Planner views of the backlogged tenants (estimates use each
        tenant's own provisioning — that is what its ledger charges)."""
        loads = []
        for tenant in candidates:
            head = tenant.queue[0]
            loads.append(
                TenantLoad(
                    name=tenant.name,
                    index=tenant.index,
                    backlog_batches=len(tenant.queue),
                    backlog_updates=tenant.backlog_updates(),
                    head_updates=len(head),
                    estimated_rounds=estimate_batch_rounds(
                        len(head),
                        tenant.service.cluster.words_per_machine,
                        tenant.service.dynamic.min_compaction_journal,
                    ),
                    weight=tenant.weight,
                )
            )
        return loads

    def tick(self) -> TickReport | None:
        """Serve the scheduled tenants' head batches as one superstep.

        The planner picks which backlogged tenants the tick serves (under
        ``round_budget``); the rest are deferred with their batches carried
        over intact.  Served tenants run as parallel tasks on the shared
        executor; their tick-delta sub-ledgers fold into the shared ledger
        as parallel supersteps (rounds = max over tenants — zero when the
        tick served nobody).  Returns the tick report, or ``None`` when no
        schedulable tenant has queued batches.

        A tenant whose batch is illegal raises (like a standalone service
        would) *after* the tick is made consistent: batches are peeked, not
        popped, until they are known to have applied — a failed tenant's
        batch stays queued and its state is untouched (per-batch atomicity
        is the service's contract) — and the rounds the successful siblings
        charged are folded and recorded as a (partial) tick before the
        exception propagates, so nothing misattributes to a later tick.
        Quota breaches follow the same shape: a scheduled tenant whose
        projected post-batch size (or fold-time peak) exceeds its quota is
        quarantined, the tick completes for its siblings, and the
        :class:`~repro.errors.QuotaExceededError` propagates afterwards.

        Holds the engine lock for the whole tick: lifecycle calls, submits
        and checkpoints issued concurrently land on tick boundaries.
        """
        with self._lock:
            if self._closed:
                raise GraphError("engine is closed")
            return self._tick_locked()

    def _tick_locked(self) -> TickReport | None:
        started = time.perf_counter()
        candidates = [
            tenant
            for tenant in self._tenants.values()
            if tenant.queue and tenant.state in _SCHEDULABLE
        ]
        if not candidates:
            return None
        tracer = self.tracer
        with tracer.span(
            "tick",
            cat="engine",
            cluster=self.cluster,
            tick=len(self.ticks),
            policy=self.planner.name,
        ) as tick_span:
            loads = self._tenant_loads(candidates)
            planned_names = list(self.planner.plan(loads, self.round_budget))
            known = {tenant.name for tenant in candidates}
            if len(set(planned_names)) != len(planned_names) or not set(
                planned_names
            ).issubset(known):
                raise GraphError(
                    f"planner {self.planner!r} returned an invalid plan "
                    f"{planned_names!r} for candidates {sorted(known)}"
                )
            planned = [self._tenants[name] for name in planned_names]
            deferred = tuple(
                tenant.name for tenant in candidates if tenant.name not in set(planned_names)
            )
            estimates = {load.name: load.estimated_rounds for load in loads}
            # The planner's decision, annotated on the tick span: who got
            # scheduled, who was pushed back, and the budget arithmetic
            # behind it (estimates are the admission inputs).
            tick_span.annotate(
                planned=list(planned_names),
                deferred=list(deferred),
                round_budget=self.round_budget,
                planned_rounds=sum(estimates[name] for name in planned_names),
                estimates={load.name: load.estimated_rounds for load in loads},
            )

            # Quota admission: project each scheduled tenant's post-batch size
            # before any state or ledger is touched, so a breaching batch stays
            # queued intact and the tenant is quarantined consistent.
            quota_error: QuotaExceededError | None = None
            breached: list[str] = []
            admitted: list[_Tenant] = []
            for tenant in planned:
                quota = tenant.service.cluster.memory_quota
                if quota is not None:
                    projected = tenant.service.projected_memory_words(tenant.queue[0])
                    if projected > quota:
                        exc = QuotaExceededError(
                            projected, quota, scope=f"tenant {tenant.name!r}"
                        )
                        tenant.quarantine = exc
                        self._transition(tenant, TenantState.QUARANTINED)
                        breached.append(tenant.name)
                        if quota_error is None:
                            quota_error = exc
                        continue
                admitted.append(tenant)

            applied_before = {
                tenant.name: tenant.service.summary.num_batches for tenant in admitted
            }
            if tracer.enabled:
                tick_parent = tick_span.span_id
                tasks = [
                    (tenant.service, tenant.queue[0], tracer, tick_parent, tenant.name)
                    for tenant in admitted
                ]
            else:
                tasks = [(tenant.service, tenant.queue[0]) for tenant in admitted]
            error: BaseException | None = None
            if tasks:
                work = sum(len(task[1]) for task in tasks)
                backend = self._executor.resolve_backend(len(tasks), work)
                try:
                    if backend in IN_PROCESS:
                        self._executor.map(
                            _apply_tenant_batch, tasks, total_work=work, backend=backend
                        )
                    else:
                        # Tenant tasks mutate live tenant state: never ship them
                        # to worker processes; degrade to the serial loop.
                        for task in tasks:
                            _apply_tenant_batch(*task)
                except BaseException as exc:  # fold the partial tick, then re-raise
                    error = exc
            applied = [
                tenant
                for tenant in admitted
                if tenant.service.summary.num_batches > applied_before[tenant.name]
            ]
            for tenant in applied:
                tenant.queue.popleft()
                if tenant.state is TenantState.LIFTED:
                    # First successful post-lift service: fully re-admitted.
                    self._transition(tenant, TenantState.ACTIVE)

            # Fold-time backstop: a rebuild's working set can outgrow the quota
            # even though the projected graph size fit.  The batch is already
            # applied (and consumed) in this path; the tenant stays consistent
            # and is quarantined from here on.
            for tenant in applied:
                try:
                    tenant.service.cluster.check_quota()
                except QuotaExceededError as exc:
                    tenant.quarantine = exc
                    self._transition(tenant, TenantState.QUARANTINED)
                    breached.append(tenant.name)
                    if quota_error is None:
                        quota_error = exc

            # Fold every live tenant — not just the served ones.  An idle
            # tenant's delta has zero rounds (its mark is current), so it
            # cannot stretch the superstep, but its lifetime memory peaks
            # still sum into the fold: co-resident tenants occupy the fleet
            # whether or not they had a batch this tick (the charging model
            # in repro.mpc.cluster).  Retired tenants left the fleet; a tick
            # that served nobody folds an empty superstep: zero rounds.
            deltas = []
            for tenant in self._tenants.values():
                if tenant.service is None:
                    continue
                stats = tenant.service.cluster.stats
                deltas.append(stats.since(tenant.round_mark))
                tenant.round_mark = stats.num_rounds
            rounds = self.cluster.merge_parallel(deltas)

            report_by_name = {
                tenant.name: tenant.service.summary.reports[-1] for tenant in applied
            }
            backlog = sum(
                tenant.backlog_updates()
                for tenant in self._tenants.values()
                if tenant.state in _SCHEDULABLE
            )
            tick_span.annotate(served=list(report_by_name), quota_breached=list(breached))
            metrics = tracer.metrics
            if metrics.enabled:
                metrics.inc("engine.ticks")
                metrics.inc("engine.tenants_served", len(report_by_name))
                metrics.inc("engine.tenants_deferred", len(deferred))
                metrics.inc("engine.quota_breaches", len(breached))
                metrics.gauge("engine.backlog_updates", backlog)
            tick_report = TickReport(
                tick_index=len(self.ticks),
                reports=report_by_name,
                rounds=rounds,
                planned=tuple(planned_names),
                deferred=deferred,
                quota_breached=tuple(breached),
                backlog_updates=backlog,
                round_budget=self.round_budget,
                planned_rounds=sum(estimates[name] for name in planned_names),
                wall_clock_s=time.perf_counter() - started,
            )
            if applied or rounds or deferred or breached:
                self.ticks.append(tick_report)
                self.summary.add(self._aggregate_report(tick_report))
            # Execution errors outrank quota breaches: a KeyboardInterrupt (or a
            # sibling's GraphError) must never be swallowed by a concurrent
            # quota event — quarantine state already records the breach.
            if error is not None:
                raise error
            if quota_error is not None:
                raise quota_error
            return tick_report

    def run_until_drained(self, max_ticks: int | None = None) -> StreamSummary:
        """Tick until no schedulable batches remain; returns the summary.

        Deferred tenants are retried on every tick (scheduling guarantees
        eventual service), so the loop drains every non-quarantined queue;
        quarantined tenants' queues are left intact.  Budget-exhausted ticks
        that serve nobody still count toward ``max_ticks``.
        """
        ticks = 0
        while self._schedulable_pending():
            if max_ticks is not None and ticks >= max_ticks:
                raise GraphError(
                    f"{self._schedulable_pending()} batches still queued "
                    f"after {max_ticks} ticks"
                )
            self.tick()
            ticks += 1
        return self.summary

    def _aggregate_report(self, tick: TickReport) -> BatchReport:
        """Fold one tick's tenant reports into a single engine-level row.

        Per-batch counters sum over the tenants *served* this tick;
        structure metrics describe the whole engine — live edges, journal
        and colors sum over all tenants (disjoint graphs), outdegree and
        cap take the max.  ``rounds`` is the shared ledger's max-over-tenants
        charge, which is what makes the engine row differ from a plain sum.
        """
        reports = tick.reports.values()
        services = [
            tenant.service
            for tenant in self._tenants.values()
            if tenant.service is not None
        ]
        return BatchReport(
            batch_index=tick.tick_index,
            tenants_served=tick.num_tenants_served,
            tenants_deferred=tick.num_tenants_deferred,
            backlog_updates=tick.backlog_updates,
            quota_breaches=len(tick.quota_breached),
            num_inserts=sum(r.num_inserts for r in reports),
            num_deletes=sum(r.num_deletes for r in reports),
            conflict_groups=sum(r.conflict_groups for r in reports),
            parallel_groups=sum(r.parallel_groups for r in reports),
            proactive_flips=sum(r.proactive_flips for r in reports),
            flips=sum(r.flips for r in reports),
            recolors=sum(r.recolors for r in reports),
            rebuilds=sum(r.rebuilds for r in reports),
            compactions=sum(r.compactions for r in reports),
            rounds=tick.rounds,
            num_edges=sum(s.dynamic.num_edges for s in services),
            journal_size=sum(s.dynamic.journal_size for s in services),
            max_outdegree=max(
                (s.orientation.max_outdegree() for s in services), default=0
            ),
            outdegree_cap=max(
                (s.orientation.outdegree_cap for s in services), default=0
            ),
            num_colors=sum(
                s.coloring.num_colors() for s in services if s.coloring is not None
            ),
            wall_clock_s=tick.wall_clock_s,
        )

    # ------------------------------------------------------------------ #
    # Residency: the background ticker
    # ------------------------------------------------------------------ #

    def start(self, tick_interval: float = 0.05) -> None:
        """Go resident: spawn the background ticker thread.

        The ticker wakes every ``tick_interval`` seconds — or immediately on
        :meth:`submit` / :meth:`lift_quarantine` — and drains every
        schedulable backlog, one locked tick at a time.  Errors a tick raises
        (a tenant's bad batch, a quota breach) are recorded in
        :attr:`tick_errors` instead of killing the thread; the failed batch
        stays queued per the tick contract, so the same error can repeat
        every interval until an operator quarantines, retires, or unblocks
        the tenant.  :meth:`stop` (or :meth:`close`) joins the thread.
        """
        if tick_interval <= 0:
            raise GraphError("tick_interval must be positive")
        with self._lock:
            if self._closed:
                raise GraphError("engine is closed")
            if self._ticker is not None and self._ticker.is_alive():
                raise GraphError("engine ticker is already running")
            self._stop_event = threading.Event()
            self._wake = threading.Event()
            self._ticker = threading.Thread(
                target=self._ticker_loop,
                args=(tick_interval,),
                name="stream-engine-ticker",
                daemon=True,
            )
            self._ticker.start()
        self.tracer.metrics.inc("engine.ticker_starts")

    @property
    def running(self) -> bool:
        """Whether the background ticker thread is alive."""
        ticker = self._ticker
        return ticker is not None and ticker.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop and join the background ticker (no-op when not running)."""
        ticker = self._ticker
        if ticker is None:
            return
        self._stop_event.set()
        self._wake.set()
        ticker.join(timeout)
        if ticker.is_alive():  # pragma: no cover - only on a wedged tick
            raise GraphError("engine ticker failed to stop within the timeout")
        self._ticker = None

    def wait_until_drained(self, timeout: float = 30.0) -> StreamSummary:
        """Block until no schedulable batches remain (resident engines).

        Polls under the lock, nudging the ticker awake; raises
        :class:`GraphError` if backlog remains at the deadline — including
        the livelock case where a failing head batch keeps its queue
        non-empty (inspect :attr:`tick_errors` then).
        """
        if not self.running:
            raise GraphError("engine ticker is not running; call start() first")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._schedulable_pending():
                    return self.summary
            self._wake.set()
            time.sleep(0.005)
        raise GraphError(
            f"{self._schedulable_pending()} batches still queued after "
            f"{timeout:.1f}s (recent tick errors: {len(self.tick_errors)})"
        )

    def _ticker_loop(self, tick_interval: float) -> None:
        while not self._stop_event.is_set():
            self._wake.wait(timeout=tick_interval)
            if self._stop_event.is_set():
                return
            self._wake.clear()
            while not self._stop_event.is_set():
                with self._lock:
                    if self._closed or not self._schedulable_pending():
                        break
                    try:
                        self._tick_locked()
                    except ReproError as exc:
                        # The failed batch stays queued; back off to the next
                        # wake/interval instead of hot-spinning on it.
                        self.tick_errors.append(exc)
                        self.tracer.metrics.inc("engine.ticker_errors")
                        break

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #

    def checkpoint(self, path) -> dict:
        """Write a versioned, checksummed snapshot of the complete engine state.

        Takes the engine lock, so a checkpoint issued while the resident
        ticker is mid-tick waits for the tick boundary — snapshots are always
        tick-consistent.  Returns the fingerprint recorded in the snapshot
        (the same one :meth:`restore` re-verifies).  See
        :mod:`repro.stream.checkpoint` for the file format.
        """
        from repro.stream import checkpoint as _checkpoint

        with self._lock:
            if self._closed:
                raise GraphError("engine is closed")
            result = _checkpoint.save_engine(self, path)
        self.tracer.metrics.inc("engine.checkpoints")
        return result

    @classmethod
    def restore(
        cls,
        path,
        workers: int = 1,
        executor: ParallelExecutor | None = None,
        tracer=None,
    ) -> "StreamEngine":
        """Rebuild an engine from a :meth:`checkpoint` snapshot, byte-identically.

        The restored engine continues exactly where the checkpointed one
        stopped: same heads, colors, rounds, planner credits, queues,
        lifecycle states and tick history — verified against the snapshot's
        recorded fingerprint before this returns (mismatch raises
        :class:`~repro.errors.CheckpointError` and nothing leaks).
        ``workers`` / ``executor`` / ``tracer`` re-provision the host-side
        execution resources, which are not state: any combination yields the
        same simulated outcomes.
        """
        from repro.stream import checkpoint as _checkpoint

        return _checkpoint.restore_engine(
            path, workers=workers, executor=executor, tracer=tracer
        )

    # ------------------------------------------------------------------ #
    # Invariants / lifecycle
    # ------------------------------------------------------------------ #

    def verify(self) -> None:
        """Run every tenant's invariant checks (raises on the first drift).

        The re-raised error names the failing tenant and carries the engine
        pool's health snapshot (:meth:`repro.engine.WorkerPool.stats`), so a
        pool-related failure — dead workers, respawn churn, stale shard
        generations — is diagnosable from the exception alone.
        """
        for tenant in self._tenants.values():
            if tenant.service is None:
                continue
            try:
                tenant.service.verify()
            except GraphError as exc:
                pool_stats = self._pool.stats() if self._pool is not None else {}
                raise GraphError(
                    f"tenant {tenant.name!r}: {exc} [pool {pool_stats}]"
                ) from exc

    def close(self) -> None:
        """Release every tenant, the engine pool's segments, the executor.

        Idempotent, and safe with a live ticker: the ticker thread is stopped
        and joined before anything it could touch is released, so double
        close (or close-with-live-ticker) leaks neither the pool nor the
        thread.
        """
        if self._closed:
            return
        self.stop()
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for tenant in self._tenants.values():
            if tenant.service is not None:
                tenant.service.close()
        if self._pool is not None:
            self._pool.close()
        if self._owns_executor:
            self._executor.close()

    def __enter__(self) -> "StreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        rounds = self.cluster.stats.num_rounds if self.cluster is not None else 0
        return (
            f"StreamEngine(tenants={len(self._tenants)}, ticks={len(self.ticks)}, "
            f"pending={self.pending()}, rounds={rounds}, "
            f"policy={self.planner.name!r}, budget={self.round_budget})"
        )
