"""Observability: wall-clock tracing, metrics, and perf-trajectory reports.

This package measures the *host* side of the simulator — where real time
goes, what the pool and shared-memory registry actually did — without ever
touching the *simulated* ledger beyond read-only ``RoundStats`` marks.  The
default ``NULL_TRACER`` is a no-op, and the determinism matrix test asserts
that enabling tracing leaves every simulated outcome byte-identical.

See ``tracer`` for spans and export, ``metrics`` for counters, and
``report`` for the ``trace-report`` / ``bench-report`` table builders.
"""

from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from .tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "Tracer",
    "NullTracer",
    "SpanRecord",
    "NULL_TRACER",
]
