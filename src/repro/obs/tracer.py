"""Hierarchical wall-clock spans with ledger deltas and Chrome-trace export.

The tracer records *host-side* execution: where wall-clock time goes inside a
tick, a batch, or a kernel fan-out.  Each span may additionally carry the
*simulated* ledger delta charged while it was open (rounds and words from
``RoundStats``), so a Perfetto timeline shows both clocks side by side.  The
two are disjoint measurements — see the charging-model docstring in
``repro.mpc.cluster`` — and the tracer only ever *reads* the ledger, so
enabling it cannot change any simulated outcome.

Design points:

- **No-op default.**  ``NULL_TRACER`` has ``enabled = False`` and returns a
  shared inert context manager from :meth:`span`; the per-span cost is one
  attribute load and an empty ``with`` block.  A guard test pins the
  overhead under 5% on a hot-path microbench.
- **Bounded ring buffer.**  Completed spans land in a ``deque(maxlen=...)``;
  long runs keep the most recent window instead of growing without bound.
- **Thread-aware nesting.**  Span stacks are thread-local, so spans opened
  on executor threads nest correctly without cross-thread interference.
  Callers that fan work out to other threads or processes pass ``parent=``
  explicitly (e.g. the engine parents tenant spans under the tick span).
- **Cross-process stitching.**  Worker processes cannot reach this object;
  instead the executor times each task inside the worker (``perf_counter_ns``
  is CLOCK_MONOTONIC on Linux, comparable across processes) and the parent
  records the span post-hoc via :meth:`record_span` with ``tid`` set to the
  worker pid.

Exports: :meth:`Tracer.export_chrome` writes Chrome trace-event JSON
(``{"traceEvents": [...]}`` with "X" complete events) that loads directly in
Perfetto or ``chrome://tracing``; :meth:`Tracer.export_jsonl` writes one span
per line for ad-hoc processing.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = ["SpanRecord", "Tracer", "NullTracer", "NULL_TRACER"]

DEFAULT_CAPACITY = 65536


@dataclass
class SpanRecord:
    """One completed span.  Timestamps are ns relative to the tracer epoch."""

    span_id: int
    parent_id: int | None
    name: str
    cat: str
    tid: int
    start_ns: int
    end_ns: int
    args: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class _ActiveSpan:
    """Context manager for an open span; records itself on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "cat",
        "args",
        "span_id",
        "parent_id",
        "start_ns",
        "_stats",
        "_round_mark",
    )

    def __init__(self, tracer, name, cat, cluster, parent_id, args):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = dict(args) if args else {}
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.start_ns = 0
        self._stats = None if cluster is None else cluster.stats
        self._round_mark = 0

    def annotate(self, **kwargs) -> None:
        """Attach extra key/value pairs to the span's exported args."""
        self.args.update(kwargs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        if self._stats is not None:
            self._round_mark = self._stats.num_rounds
        self.start_ns = time.perf_counter_ns() - tracer.epoch_ns
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end_ns = time.perf_counter_ns() - tracer.epoch_ns
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        stats = self._stats
        if stats is not None:
            charged = stats.rounds[self._round_mark :]
            self.args["rounds"] = len(charged)
            self.args["volume"] = sum(record.words_sent for record in charged)
        tracer._append(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                cat=self.cat,
                tid=threading.get_ident(),
                start_ns=self.start_ns,
                end_ns=end_ns,
                args=self.args,
            )
        )
        return False


class Tracer:
    """Span recorder with a bounded ring buffer and a metrics registry."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, metrics=None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.metrics = MetricsRegistry() if metrics is None else metrics
        self.pid = os.getpid()
        self.epoch_ns = time.perf_counter_ns()
        self._records: deque[SpanRecord] = deque(maxlen=capacity)
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "span", cluster=None, parent=None, **args):
        """Open a span as a context manager.

        ``cluster`` attaches the simulated-ledger delta (rounds/volume charged
        while the span is open) to the exported args.  ``parent`` overrides
        the thread-local nesting with an explicit span id — use it when the
        logical parent lives on another thread.
        """
        return _ActiveSpan(self, name, cat, cluster, parent, args)

    def record_span(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        cat: str = "span",
        tid: int | None = None,
        parent: int | None = None,
        args: dict | None = None,
    ) -> SpanRecord:
        """Record a pre-timed span (worker-side stitching).

        ``start_ns``/``end_ns`` are absolute ``perf_counter_ns`` readings —
        taken in this or another process on the same machine — and are
        rebased onto the tracer epoch here.
        """
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            cat=cat,
            tid=threading.get_ident() if tid is None else tid,
            start_ns=start_ns - self.epoch_ns,
            end_ns=end_ns - self.epoch_ns,
            args=dict(args) if args else {},
        )
        self._append(record)
        return record

    def current_span_id(self) -> int | None:
        """Id of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: SpanRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> list[SpanRecord]:
        """Completed spans, oldest first (bounded by ``capacity``)."""
        return list(self._records)

    # -- export ------------------------------------------------------------

    def chrome_payload(self) -> dict:
        """Chrome trace-event payload: "X" complete events, ts/dur in µs.

        The metrics snapshot rides along under a top-level ``"metrics"`` key;
        trace viewers ignore unknown keys.
        """
        events = []
        for rec in self._records:
            events.append(
                {
                    "name": rec.name,
                    "cat": rec.cat,
                    "ph": "X",
                    "ts": rec.start_ns / 1000.0,
                    "dur": max(rec.duration_ns, 0) / 1000.0,
                    "pid": self.pid,
                    "tid": rec.tid,
                    "args": {"id": rec.span_id, "parent": rec.parent_id, **rec.args},
                }
            )
        events.sort(key=lambda event: event["ts"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "metrics": self.metrics.snapshot(),
        }

    def export_chrome(self, path) -> None:
        """Write the Chrome trace-event JSON payload to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_payload(), handle)
            handle.write("\n")

    def export_jsonl(self, path) -> None:
        """Write one span per line: ``{span_id, parent_id, name, ...}``."""
        with open(path, "w", encoding="utf-8") as handle:
            for rec in self._records:
                handle.write(
                    json.dumps(
                        {
                            "span_id": rec.span_id,
                            "parent_id": rec.parent_id,
                            "name": rec.name,
                            "cat": rec.cat,
                            "tid": rec.tid,
                            "start_ns": rec.start_ns,
                            "end_ns": rec.end_ns,
                            "args": rec.args,
                        }
                    )
                )
                handle.write("\n")


class _NullSpan:
    """Inert context manager shared by every ``NULL_TRACER.span`` call."""

    __slots__ = ()

    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **kwargs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead default: spans are shared no-ops, metrics discard."""

    enabled = False
    metrics = NULL_METRICS

    def span(self, name, cat="span", cluster=None, parent=None, **args):
        return _NULL_SPAN

    def record_span(self, name, start_ns, end_ns, **kwargs) -> None:
        return None

    def current_span_id(self) -> None:
        return None

    @property
    def records(self) -> list:
        return []


NULL_TRACER = NullTracer()
