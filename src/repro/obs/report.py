"""Text reports over trace artifacts and benchmark snapshots.

Two consumers:

- ``repro trace-report <trace.json>`` — summarise a Chrome trace written by
  :meth:`repro.obs.Tracer.export_chrome`: wall-clock and ledger totals per
  span name, plus the embedded metrics snapshot.
- ``repro bench-report [--dir benchmarks/]`` — collect every persisted
  ``BENCH_*.json`` snapshot (written by ``benchmarks/_bench_results.py``)
  into one trend table: per benchmark and metric, the latest value against
  the previous snapshot and their ratio.  This is the report half of the
  ROADMAP "persistent perf trajectory" item.

Both render through :class:`repro.analysis.reporting.Table` so the output
matches the rest of the tooling.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..analysis.reporting import Table

__all__ = [
    "load_trace",
    "span_summary_table",
    "metrics_tables",
    "trace_report_tables",
    "load_bench_snapshots",
    "bench_trend_tables",
]

BENCH_SNAPSHOT_GLOB = "BENCH_*.json"


# --------------------------------------------------------------------------
# trace-report
# --------------------------------------------------------------------------


def load_trace(path) -> dict:
    """Read a Chrome trace-event payload written by ``Tracer.export_chrome``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if "traceEvents" not in payload:
        raise ValueError(f"{path}: not a Chrome trace (missing 'traceEvents')")
    return payload


def span_summary_table(payload: dict) -> Table:
    """Aggregate events by span name: count, wall-clock, ledger deltas."""
    groups: dict[str, list[float]] = {}
    for event in payload.get("traceEvents", ()):
        name = event.get("name", "?")
        args = event.get("args", {})
        entry = groups.setdefault(name, [0, 0.0, 0, 0])
        entry[0] += 1
        entry[1] += float(event.get("dur", 0.0))
        entry[2] += int(args.get("rounds", 0) or 0)
        entry[3] += int(args.get("volume", 0) or 0)
    table = Table(
        title="trace spans",
        columns=["span", "count", "total_ms", "mean_ms", "rounds", "volume"],
    )
    for name in sorted(groups, key=lambda key: -groups[key][1]):
        count, total_us, rounds, volume = groups[name]
        table.add_row(
            {
                "span": name,
                "count": count,
                "total_ms": total_us / 1000.0,
                "mean_ms": total_us / 1000.0 / count,
                "rounds": rounds,
                "volume": volume,
            }
        )
    return table


def metrics_tables(payload: dict) -> list[Table]:
    """Render the embedded metrics snapshot (counters, gauges, histograms)."""
    snapshot = payload.get("metrics", {})
    tables: list[Table] = []
    scalars = dict(snapshot.get("counters", {}))
    scalars.update(snapshot.get("gauges", {}))
    if scalars:
        table = Table(title="metrics", columns=["metric", "value"])
        for name in sorted(scalars):
            table.add_row({"metric": name, "value": scalars[name]})
        tables.append(table)
    histograms = snapshot.get("histograms", {})
    if histograms:
        table = Table(
            title="histograms",
            columns=["metric", "count", "mean", "min", "max"],
        )
        for name in sorted(histograms):
            hist = histograms[name]
            table.add_row(
                {
                    "metric": name,
                    "count": hist.get("count", 0),
                    "mean": hist.get("mean", 0.0),
                    "min": hist.get("min", 0.0),
                    "max": hist.get("max", 0.0),
                }
            )
        tables.append(table)
    return tables


def trace_report_tables(path) -> list[Table]:
    """All tables for ``repro trace-report``: spans first, then metrics."""
    payload = load_trace(path)
    return [span_summary_table(payload), *metrics_tables(payload)]


# --------------------------------------------------------------------------
# bench-report
# --------------------------------------------------------------------------


def load_bench_snapshots(directory) -> dict[str, list[dict]]:
    """Group ``BENCH_*.json`` payloads by benchmark name, oldest first.

    Snapshots predating the schema header (no ``"schema"`` key) are accepted;
    files that fail to parse or lack the bench/results shape are skipped
    rather than failing the whole report.
    """
    directory = Path(directory)
    by_bench: dict[str, list[dict]] = {}
    for path in sorted(directory.glob(BENCH_SNAPSHOT_GLOB)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or "bench" not in payload:
            continue
        payload.setdefault("timestamp_utc", path.stem)
        payload["_path"] = str(path)
        by_bench.setdefault(payload["bench"], []).append(payload)
    for snapshots in by_bench.values():
        snapshots.sort(key=lambda payload: payload["timestamp_utc"])
    return by_bench


def _numeric_metrics(results) -> dict[str, float]:
    """Flatten a snapshot's results into ``{metric: value}``.

    The common shape (``write_snapshot``) is one flat dict of metric →
    value; a list of row dicts is also accepted, with rows keyed by their
    first string-valued cell (else by position) as ``row/metric``.
    Non-numeric cells are dropped.
    """
    metrics: dict[str, float] = {}
    if isinstance(results, dict):
        for key, value in results.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[str(key)] = float(value)
        return metrics
    if not isinstance(results, list):
        return metrics
    for index, row in enumerate(results):
        if not isinstance(row, dict):
            continue
        label = next(
            (str(value) for value in row.values() if isinstance(value, str)),
            str(index),
        )
        for key, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metrics[f"{label}/{key}"] = float(value)
    return metrics


def bench_trend_tables(directory) -> list[Table]:
    """One trend table per benchmark: latest vs previous snapshot per metric.

    A bench with a single snapshot has no trend yet — its table carries just
    ``metric``/``latest`` columns instead of padding ``previous`` and
    ``ratio`` with dashes.
    """
    by_bench = load_bench_snapshots(directory)
    tables: list[Table] = []
    for bench in sorted(by_bench):
        snapshots = by_bench[bench]
        latest = snapshots[-1]
        previous = snapshots[-2] if len(snapshots) > 1 else None
        latest_metrics = _numeric_metrics(latest.get("results"))
        title = (
            f"{bench} — {len(snapshots)} snapshot(s), "
            f"latest {latest['timestamp_utc']}"
        )
        if previous is None:
            table = Table(title=title, columns=["metric", "latest"])
            for metric in sorted(latest_metrics):
                table.add_row({"metric": metric, "latest": latest_metrics[metric]})
            tables.append(table)
            continue
        previous_metrics = _numeric_metrics(previous.get("results"))
        table = Table(title=title, columns=["metric", "previous", "latest", "ratio"])
        for metric in sorted(latest_metrics):
            latest_value = latest_metrics[metric]
            previous_value = previous_metrics.get(metric)
            if previous_value is None:
                ratio = "-"
            elif previous_value == 0:
                ratio = "inf" if latest_value else "1.000"
            else:
                ratio = f"{latest_value / previous_value:.3f}"
            table.add_row(
                {
                    "metric": metric,
                    "previous": "-" if previous_value is None else previous_value,
                    "latest": latest_value,
                    "ratio": ratio,
                }
            )
        tables.append(table)
    return tables
