"""Process-local metrics: counters, gauges, and summary histograms.

The registry is deliberately tiny — a flat name -> value store guarded by a
lock so thread-backend tasks can bump counters concurrently.  Nothing here
reads simulated state: metrics describe the *host-side* execution (queue
waits, bytes shipped, respawns), never the MPC ledger, so enabling them
cannot perturb the determinism contract.

``NULL_METRICS`` is the zero-overhead default: every method is a no-op and
``enabled`` is ``False`` so hot paths can skip even the call with
``if metrics.enabled:`` when they want to avoid building label strings.
"""

from __future__ import annotations

import threading

__all__ = ["MetricsRegistry", "NullMetrics", "NULL_METRICS"]


class MetricsRegistry:
    """Thread-safe counters, gauges, and min/max/mean histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, list[float]] = {}

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to the counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest observed ``value``."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the summary histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                self._histograms[name] = [1, value, value, value]
            else:
                hist[0] += 1
                hist[1] += value
                if value < hist[2]:
                    hist[2] = value
                if value > hist[3]:
                    hist[3] = value

    def snapshot(self) -> dict:
        """Return a plain-dict copy: ``{"counters", "gauges", "histograms"}``.

        Histograms flatten to ``{count, sum, mean, min, max}`` so the
        snapshot is JSON-serialisable as-is.
        """
        with self._lock:
            histograms = {
                name: {
                    "count": hist[0],
                    "sum": hist[1],
                    "mean": hist[1] / hist[0],
                    "min": hist[2],
                    "max": hist[3],
                }
                for name, hist in self._histograms.items()
            }
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": histograms,
            }


class NullMetrics:
    """No-op stand-in used when tracing is disabled."""

    enabled = False

    def inc(self, name: str, amount: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_METRICS = NullMetrics()
