"""Reference (pure-python) kernel implementations.

These are the loops that used to live inline in ``Graph.peel_layers``,
``Orientation``, the stream repair path and the Theorem 1.2 combine step,
lifted out verbatim so they operate on primitive columns.  They define the
semantics — including error messages and first-offender order — that the
numpy backend must reproduce byte-for-byte (pinned by the equivalence suite
in ``tests/kernels/``).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right

from repro.errors import GraphError, InvalidOrientationError


def peel_layers(num_vertices, indptr, indices, degrees, threshold, max_rounds):
    """Frontier-based round-synchronous peel (see ``Graph.peel_layers``).

    A vertex is stamped with the *next* round's index the moment its
    remaining degree first drops to ``threshold``; once stamped, later
    decrements in the same round skip it, so its stored degree stays stale —
    harmless, because every read is gated on ``layers[w] == 0``.
    """
    degree = list(degrees)
    layers = [0] * num_vertices
    frontier = [v for v, d in enumerate(degree) if d <= threshold]
    for v in frontier:
        layers[v] = 1
    rounds_used = 0
    while frontier and (max_rounds is None or rounds_used < max_rounds):
        rounds_used += 1
        next_round = rounds_used + 1
        next_frontier: list[int] = []
        append = next_frontier.append
        for v in frontier:
            # Iterating a materialised slice keeps the inner loop at
            # C speed; only the per-neighbor bookkeeping is Python.
            for w in indices[indptr[v] : indptr[v + 1]]:
                if layers[w] == 0:
                    d = degree[w] - 1
                    if d == threshold:
                        layers[w] = next_round
                        append(w)
                    else:
                        degree[w] = d
        frontier = next_frontier
    if frontier:
        # max_rounds cut the process short; the queued wave was stamped
        # with a round that never ran, so un-assign it.
        for v in frontier:
            layers[v] = 0
    return array("l", layers), rounds_used


def orient_by_rank(edge_u, edge_v, ranks):
    """Heads column for "orient toward the higher rank, ties toward v"."""
    lookup = ranks.__getitem__
    heads = array("l")
    append = heads.append
    for u, v in zip(edge_u, edge_v):
        # u < v in canonical form, so rank ties resolve toward v.
        append(v if lookup(u) <= lookup(v) else u)
    return heads


def tally_outdegrees(num_vertices, edge_u, edge_v, heads):
    """Single pass over the edge columns: outdegree per vertex + endpoint check."""
    outdegree = [0] * num_vertices
    for u, v, head in zip(edge_u, edge_v, heads):
        if head == v:
            outdegree[u] += 1
        elif head == u:
            outdegree[v] += 1
        else:
            raise InvalidOrientationError(
                f"edge {(u, v)} oriented toward {head}, which is not an endpoint"
            )
    return tuple(outdegree)


def merge_oriented_columns(num_vertices, a_u, a_v, a_heads, b_u, b_v, b_heads):
    """Two-pointer merge of two sorted canonical edge/head column sets.

    Shared edges are counted, not merged: a non-zero overlap returns
    ``(None, None, None, overlap)`` and the caller raises, exactly like the
    original in-class loop (which raised before assembling a result).
    """
    la, lb = len(a_u), len(b_u)
    edge_u = array("l")
    edge_v = array("l")
    heads = array("l")
    i = j = 0
    overlap = 0
    while i < la and j < lb:
        ea = (a_u[i], a_v[i])
        eb = (b_u[j], b_v[j])
        if ea < eb:
            edge_u.append(ea[0])
            edge_v.append(ea[1])
            heads.append(a_heads[i])
            i += 1
        elif eb < ea:
            edge_u.append(eb[0])
            edge_v.append(eb[1])
            heads.append(b_heads[j])
            j += 1
        else:
            overlap += 1
            i += 1
            j += 1
    if overlap:
        return None, None, None, overlap
    if i < la:
        edge_u.extend(a_u[i:])
        edge_v.extend(a_v[i:])
        heads.extend(a_heads[i:])
    if j < lb:
        edge_u.extend(b_u[j:])
        edge_v.extend(b_v[j:])
        heads.extend(b_heads[j:])
    return edge_u, edge_v, heads, 0


def sum_counts(a, b):
    """Elementwise sum of two equal-length count tuples."""
    return tuple(x + y for x, y in zip(a, b))


def min_value(column):
    """Minimum of a flat column (0 when empty)."""
    return min(column) if len(column) else 0


def max_sizes(collections):
    """Largest ``len()`` across the collections (0 when there are none)."""
    return max((len(c) for c in collections), default=0)


def sum_sizes(collections):
    """Total ``len()`` across the collections."""
    return sum(len(c) for c in collections)


def assemble_color_columns(num_vertices, parts):
    """Scatter per-part color columns under prefix-sum palette offsets."""
    column = array("l", [-1]) * num_vertices
    offsets = [0]
    base = 0
    for parents, colors, palette_size in parts:
        for local, parent in enumerate(parents):
            column[parent] = base + colors[local]
        base += int(palette_size)
        offsets.append(base)
    return column, offsets


def max_value(column):
    """Maximum of a flat column (0 when empty)."""
    return max(column) if len(column) else 0


def count_distinct(column):
    """Number of distinct values in a flat column."""
    return len(set(column))


def build_csr(num_vertices, edge_u, edge_v):
    """CSR adjacency ``(indptr, indices)`` from canonical sorted edge columns.

    Each vertex's slice is [smaller neighbors asc | larger neighbors asc],
    which is fully ascending because edges are stored sorted: the larger
    ("forward") half of every slice is a contiguous run of ``edge_v`` located
    by bisection and appended as a C-level block copy, while the smaller
    ("backward") half is gathered by one bucket-append pass.
    """
    n = num_vertices
    m = len(edge_u)
    backward: list[list[int]] = [[] for _ in range(n)]
    for u, v in zip(edge_u, edge_v):
        backward[v].append(u)
    indices: list[int] = []
    extend = indices.extend
    indptr = [0] * (n + 1)
    position = 0
    filled = 0
    for v in range(n):
        smaller = backward[v]
        if smaller:
            extend(smaller)
            filled += len(smaller)
        if position < m and edge_u[position] == v:
            end = bisect_right(edge_u, v, position)
            extend(edge_v[position:end])
            filled += end - position
            position = end
        indptr[v + 1] = filled
    return array("l", indptr), array("l", indices)


def encode_edge_keys(num_vertices, edge_u, edge_v):
    """Encode canonical sorted edge columns as sorted ``u * stride + v`` keys.

    ``stride = max(num_vertices, 1)`` is the shared convention of every
    key-encoded kernel in this package (``n² < 2⁶³`` for any graph this repo
    can hold); lexicographic edge order is preserved, so the output column is
    ascending whenever the input columns are canonical sorted.
    """
    stride = max(num_vertices, 1)
    return array("l", (u * stride + v for u, v in zip(edge_u, edge_v)))


def first_monochrome(colors, us, vs, start):
    """First index ``i ≥ start`` with ``colors[us[i]] == colors[vs[i]]``, else -1.

    The recolor-candidate scan of the incremental coloring: the caller
    repairs the endpoint found, then resumes the scan at ``i + 1`` against
    the *updated* colors — so across one batch every edge is examined exactly
    once, just like the per-update reference loop.
    """
    for i in range(start, len(us)):
        if colors[us[i]] == colors[vs[i]]:
            return i
    return -1


def compact_journal(num_vertices, base_u, base_v, ops, journal_u, journal_v):
    """Merge a columnar op journal into sorted canonical edge columns.

    ``base_u``/``base_v`` are the frozen base graph's canonical sorted edge
    columns; the journal columns record the ops since the last compaction in
    arrival order (op 1 = insert, 0 = delete, endpoints canonical ``u < v``).
    The final state of each touched edge is its **last** journal op: a final
    insert of a non-base edge adds it, a final delete of a base edge
    tombstones it, and everything else (delete of a journal-only edge,
    re-insert of a base edge) collapses back onto the base.  Returns fresh
    ``(edge_u, edge_v)`` columns, canonical sorted — exactly the edge set the
    overlay semantics of ``DynamicGraph`` describe.
    """
    last: dict[tuple, int] = {}
    for op, u, v in zip(ops, journal_u, journal_v):
        last[(u, v)] = op
    changed = sorted(last)
    out_u = array("l")
    out_v = array("l")
    i = 0
    num_changed = len(changed)
    for e in zip(base_u, base_v):
        while i < num_changed and changed[i] < e:
            added = changed[i]
            if last[added] == 1:
                out_u.append(added[0])
                out_v.append(added[1])
            i += 1
        if i < num_changed and changed[i] == e:
            if last[e] == 1:  # deleted then re-inserted: still live
                out_u.append(e[0])
                out_v.append(e[1])
            i += 1  # final op 0 on a base edge: tombstoned, skip
        else:
            out_u.append(e[0])
            out_v.append(e[1])
    while i < num_changed:
        added = changed[i]
        if last[added] == 1:
            out_u.append(added[0])
            out_v.append(added[1])
        i += 1
    return out_u, out_v


def _key_member(sorted_keys, key):
    i = bisect_left(sorted_keys, key)
    return i < len(sorted_keys) and sorted_keys[i] == key


def validate_batch(num_vertices, ops, us, vs, base_keys, added_keys, removed_keys):
    """Atomic pre-validation of one update batch against the live edge set.

    The key columns describe the current :class:`DynamicGraph` state in the
    :func:`encode_edge_keys` encoding: ``base_keys`` the base graph's edges,
    ``added_keys``/``removed_keys`` the overlay's additions and tombstones
    (each sorted ascending).  An edge is live iff it is added, or in the base
    and not tombstoned.  Later updates of the same edge are judged against
    the *pending* in-batch state, exactly like the service's reference loop.
    Raises :class:`~repro.errors.GraphError` on the first offending update,
    with the service's exact message; returns ``None`` when the batch is
    legal.
    """
    n = num_vertices
    stride = max(n, 1)
    pending: dict[tuple, bool] = {}
    for index in range(len(ops)):
        u = us[index]
        v = vs[index]
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(
                f"batch update #{index}: edge ({u}, {v}) "
                f"references a vertex outside 0..{n - 1}"
            )
        e = (u, v) if u < v else (v, u)
        live = pending.get(e)
        if live is None:
            key = e[0] * stride + e[1]
            live = _key_member(added_keys, key) or (
                _key_member(base_keys, key) and not _key_member(removed_keys, key)
            )
        is_insert = ops[index] == 1
        if is_insert and live:
            raise GraphError(f"batch update #{index}: insert of live edge {e}")
        if not is_insert and not live:
            raise GraphError(f"batch update #{index}: delete of dead edge {e}")
        pending[e] = is_insert


def _canonical(u, v):
    # Inline normalize_edge: kernels must not import repro.graph (the graph
    # core imports this package), and the message only needs the tuple repr.
    return (u, v) if u < v else (v, u)


def flip_repair_group(shard, group_updates, cap, choose_tail):
    """Replay one cap-safe conflict group against its out-table shard.

    The reference body of the process backend's sharded repair task: the
    updates are applied against the shard alone, and the mutated shard plus
    the freed tails (deletion order) are returned.  ``choose_tail`` is the
    stream module's single tail-selection rule — injected rather than
    duplicated, so the safety precheck and both kernel backends replay the
    exact same decisions.  Cap-safety was proved by the precheck, so an
    overflow — or an insert/delete that does not match the shard — means the
    precheck or the shard extraction is broken, and the kernel raises rather
    than returning a corrupt shard.
    """
    out = {vertex: set(heads) for vertex, heads in shard.items()}
    freed: list[int] = []
    for update in group_updates:
        u, v = update.u, update.v
        if update.is_insert:
            if v in out[u] or u in out[v]:
                raise GraphError(
                    f"insert of already-oriented edge {_canonical(u, v)} "
                    f"without a mid-batch rebuild: orientation drifted from "
                    f"the live edge set"
                )
            tail = choose_tail(u, v, len(out[u]), len(out[v]))
            head = v if tail == u else u
            out[tail].add(head)
            if len(out[tail]) > cap:
                raise GraphError(
                    f"cap overflow at vertex {tail} inside a conflict-free "
                    f"group — the safety precheck is broken"
                )
        else:
            if v in out[u]:
                out[u].discard(v)
                freed.append(u)
            elif u in out[v]:
                out[v].discard(u)
                freed.append(v)
            else:
                raise GraphError(f"edge {_canonical(u, v)} is not oriented")
    return {vertex: sorted(heads) for vertex, heads in out.items()}, freed
