"""Reference (pure-python) kernel implementations.

These are the loops that used to live inline in ``Graph.peel_layers``,
``Orientation``, the stream repair path and the Theorem 1.2 combine step,
lifted out verbatim so they operate on primitive columns.  They define the
semantics — including error messages and first-offender order — that the
numpy backend must reproduce byte-for-byte (pinned by the equivalence suite
in ``tests/kernels/``).
"""

from __future__ import annotations

from array import array

from repro.errors import GraphError, InvalidOrientationError


def peel_layers(num_vertices, indptr, indices, degrees, threshold, max_rounds):
    """Frontier-based round-synchronous peel (see ``Graph.peel_layers``).

    A vertex is stamped with the *next* round's index the moment its
    remaining degree first drops to ``threshold``; once stamped, later
    decrements in the same round skip it, so its stored degree stays stale —
    harmless, because every read is gated on ``layers[w] == 0``.
    """
    degree = list(degrees)
    layers = [0] * num_vertices
    frontier = [v for v, d in enumerate(degree) if d <= threshold]
    for v in frontier:
        layers[v] = 1
    rounds_used = 0
    while frontier and (max_rounds is None or rounds_used < max_rounds):
        rounds_used += 1
        next_round = rounds_used + 1
        next_frontier: list[int] = []
        append = next_frontier.append
        for v in frontier:
            # Iterating a materialised slice keeps the inner loop at
            # C speed; only the per-neighbor bookkeeping is Python.
            for w in indices[indptr[v] : indptr[v + 1]]:
                if layers[w] == 0:
                    d = degree[w] - 1
                    if d == threshold:
                        layers[w] = next_round
                        append(w)
                    else:
                        degree[w] = d
        frontier = next_frontier
    if frontier:
        # max_rounds cut the process short; the queued wave was stamped
        # with a round that never ran, so un-assign it.
        for v in frontier:
            layers[v] = 0
    return array("l", layers), rounds_used


def orient_by_rank(edge_u, edge_v, ranks):
    """Heads column for "orient toward the higher rank, ties toward v"."""
    lookup = ranks.__getitem__
    heads = array("l")
    append = heads.append
    for u, v in zip(edge_u, edge_v):
        # u < v in canonical form, so rank ties resolve toward v.
        append(v if lookup(u) <= lookup(v) else u)
    return heads


def tally_outdegrees(num_vertices, edge_u, edge_v, heads):
    """Single pass over the edge columns: outdegree per vertex + endpoint check."""
    outdegree = [0] * num_vertices
    for u, v, head in zip(edge_u, edge_v, heads):
        if head == v:
            outdegree[u] += 1
        elif head == u:
            outdegree[v] += 1
        else:
            raise InvalidOrientationError(
                f"edge {(u, v)} oriented toward {head}, which is not an endpoint"
            )
    return tuple(outdegree)


def merge_oriented_columns(num_vertices, a_u, a_v, a_heads, b_u, b_v, b_heads):
    """Two-pointer merge of two sorted canonical edge/head column sets.

    Shared edges are counted, not merged: a non-zero overlap returns
    ``(None, None, None, overlap)`` and the caller raises, exactly like the
    original in-class loop (which raised before assembling a result).
    """
    la, lb = len(a_u), len(b_u)
    edge_u = array("l")
    edge_v = array("l")
    heads = array("l")
    i = j = 0
    overlap = 0
    while i < la and j < lb:
        ea = (a_u[i], a_v[i])
        eb = (b_u[j], b_v[j])
        if ea < eb:
            edge_u.append(ea[0])
            edge_v.append(ea[1])
            heads.append(a_heads[i])
            i += 1
        elif eb < ea:
            edge_u.append(eb[0])
            edge_v.append(eb[1])
            heads.append(b_heads[j])
            j += 1
        else:
            overlap += 1
            i += 1
            j += 1
    if overlap:
        return None, None, None, overlap
    if i < la:
        edge_u.extend(a_u[i:])
        edge_v.extend(a_v[i:])
        heads.extend(a_heads[i:])
    if j < lb:
        edge_u.extend(b_u[j:])
        edge_v.extend(b_v[j:])
        heads.extend(b_heads[j:])
    return edge_u, edge_v, heads, 0


def sum_counts(a, b):
    """Elementwise sum of two equal-length count tuples."""
    return tuple(x + y for x, y in zip(a, b))


def min_value(column):
    """Minimum of a flat column (0 when empty)."""
    return min(column) if len(column) else 0


def max_sizes(collections):
    """Largest ``len()`` across the collections (0 when there are none)."""
    return max((len(c) for c in collections), default=0)


def sum_sizes(collections):
    """Total ``len()`` across the collections."""
    return sum(len(c) for c in collections)


def assemble_color_columns(num_vertices, parts):
    """Scatter per-part color columns under prefix-sum palette offsets."""
    column = array("l", [-1]) * num_vertices
    offsets = [0]
    base = 0
    for parents, colors, palette_size in parts:
        for local, parent in enumerate(parents):
            column[parent] = base + colors[local]
        base += int(palette_size)
        offsets.append(base)
    return column, offsets


def _canonical(u, v):
    # Inline normalize_edge: kernels must not import repro.graph (the graph
    # core imports this package), and the message only needs the tuple repr.
    return (u, v) if u < v else (v, u)


def flip_repair_group(shard, group_updates, cap, choose_tail):
    """Replay one cap-safe conflict group against its out-table shard.

    The reference body of the process backend's sharded repair task: the
    updates are applied against the shard alone, and the mutated shard plus
    the freed tails (deletion order) are returned.  ``choose_tail`` is the
    stream module's single tail-selection rule — injected rather than
    duplicated, so the safety precheck and both kernel backends replay the
    exact same decisions.  Cap-safety was proved by the precheck, so an
    overflow — or an insert/delete that does not match the shard — means the
    precheck or the shard extraction is broken, and the kernel raises rather
    than returning a corrupt shard.
    """
    out = {vertex: set(heads) for vertex, heads in shard.items()}
    freed: list[int] = []
    for update in group_updates:
        u, v = update.u, update.v
        if update.is_insert:
            if v in out[u] or u in out[v]:
                raise GraphError(
                    f"insert of already-oriented edge {_canonical(u, v)} "
                    f"without a mid-batch rebuild: orientation drifted from "
                    f"the live edge set"
                )
            tail = choose_tail(u, v, len(out[u]), len(out[v]))
            head = v if tail == u else u
            out[tail].add(head)
            if len(out[tail]) > cap:
                raise GraphError(
                    f"cap overflow at vertex {tail} inside a conflict-free "
                    f"group — the safety precheck is broken"
                )
        else:
            if v in out[u]:
                out[u].discard(v)
                freed.append(u)
            elif u in out[v]:
                out[v].discard(u)
                freed.append(v)
            else:
                raise GraphError(f"edge {_canonical(u, v)} is not oriented")
    return {vertex: sorted(heads) for vertex, heads in out.items()}, freed
