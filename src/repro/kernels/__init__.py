"""Pluggable kernel backends for the CSR hot paths.

The graph core's inner loops — frontier peeling, head flips, outdegree
tallies, orientation merges, palette assembly — are pure-python passes over
flat ``array('l')`` columns.  This package puts one *dispatch seam* in front
of each of them: the reference implementations live in
:mod:`repro.kernels.pure`, and :mod:`repro.kernels.numpy_backend` provides
vectorized equivalents that are **byte-identical** on every input (same
layers, same heads, same tallies, same error messages on the same
offenders).  numpy stays an optional dependency: when it is not importable,
every request for the ``numpy`` backend silently resolves to ``pure``.

Backend selection order (first match wins):

1. an explicit ``backend=...`` argument on a dispatcher call;
2. a process-wide :func:`set_backend` selection (the CLI's ``--kernels``
   flag calls this after parsing);
3. the ``REPRO_KERNELS`` environment variable;
4. the default, ``pure``.

An unknown backend name raises :class:`~repro.errors.ParameterError` loudly
— a typo must not silently change which code runs — while a *valid* request
for ``numpy`` on a host without numpy falls back to ``pure``, because the
two backends are output-identical by contract and availability is an
environment fact, not a correctness knob.

The dispatchers deliberately take primitive columns (ints, ``array('l')``
buffers, tuples) rather than graph objects, so this package imports nothing
from :mod:`repro.graph` and the graph core can import it without cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import ParameterError

__all__ = [
    "PURE",
    "NUMPY",
    "BACKENDS",
    "numpy_available",
    "available_backends",
    "active_backend",
    "set_backend",
    "use_backend",
    "peel_layers",
    "orient_by_rank",
    "tally_outdegrees",
    "merge_oriented_columns",
    "sum_counts",
    "min_value",
    "max_value",
    "max_sizes",
    "sum_sizes",
    "count_distinct",
    "assemble_color_columns",
    "flip_repair_group",
    "build_csr",
    "encode_edge_keys",
    "first_monochrome",
    "compact_journal",
    "validate_batch",
]

PURE = "pure"
NUMPY = "numpy"
BACKENDS = (PURE, NUMPY)

ENV_VAR = "REPRO_KERNELS"

# Process-wide selection (None = fall through to the environment/default).
_selected: str | None = None
# Cached availability probe; populated on first use so importing this package
# never imports numpy.
_numpy_ok: bool | None = None


def numpy_available() -> bool:
    """Whether the numpy backend can actually run in this process."""
    global _numpy_ok
    if _numpy_ok is None:
        try:
            import numpy  # noqa: F401

            _numpy_ok = True
        except Exception:
            _numpy_ok = False
    return _numpy_ok


def available_backends() -> tuple[str, ...]:
    """The backends that can run here (``pure`` always; ``numpy`` if importable)."""
    return BACKENDS if numpy_available() else (PURE,)


def set_backend(name: str | None) -> None:
    """Select the process-wide backend (``None`` resets to env/default).

    Selecting ``numpy`` on a host without numpy is legal — dispatch falls
    back to ``pure`` — but an unknown name raises immediately.
    """
    global _selected
    if name is not None and name not in BACKENDS:
        raise ParameterError(
            f"unknown kernel backend {name!r} (choose from {BACKENDS})"
        )
    _selected = name


def active_backend() -> str:
    """The backend dispatch will use right now (fallback already applied)."""
    requested = _selected
    if requested is None:
        requested = os.environ.get(ENV_VAR) or PURE
    if requested not in BACKENDS:
        raise ParameterError(
            f"{ENV_VAR}={requested!r} is not a kernel backend (choose from {BACKENDS})"
        )
    if requested == NUMPY and not numpy_available():
        return PURE
    return requested


@contextmanager
def use_backend(name: str | None):
    """Temporarily select a backend (tests and benchmarks).

    Yields the backend that will actually run (after the numpy-missing
    fallback), so callers can label results truthfully.
    """
    global _selected
    previous = _selected
    set_backend(name)
    try:
        yield active_backend()
    finally:
        _selected = previous


def _module(backend: str | None):
    """Resolve a backend name (or the active selection) to its module."""
    name = backend if backend is not None else active_backend()
    if name == NUMPY and numpy_available():
        from repro.kernels import numpy_backend

        return numpy_backend
    if name not in BACKENDS:
        raise ParameterError(
            f"unknown kernel backend {name!r} (choose from {BACKENDS})"
        )
    from repro.kernels import pure

    return pure


# ---------------------------------------------------------------------- #
# Dispatchers.  Signatures take primitive columns so both backends (and any
# future one) share one contract; see the pure module for the reference
# semantics each numpy kernel must reproduce byte-for-byte.
# ---------------------------------------------------------------------- #


def peel_layers(num_vertices, indptr, indices, degrees, threshold, max_rounds=None, backend=None):
    """Round-synchronous peel over a CSR adjacency; ``(array('l') layers, rounds)``."""
    return _module(backend).peel_layers(
        num_vertices, indptr, indices, degrees, threshold, max_rounds
    )


def orient_by_rank(edge_u, edge_v, ranks, backend=None):
    """Heads column: each edge points at the higher-ranked endpoint (ties → v)."""
    return _module(backend).orient_by_rank(edge_u, edge_v, ranks)


def tally_outdegrees(num_vertices, edge_u, edge_v, heads, backend=None):
    """Outdegree per vertex as a tuple; raises on a head that is no endpoint."""
    return _module(backend).tally_outdegrees(num_vertices, edge_u, edge_v, heads)


def merge_oriented_columns(num_vertices, a_u, a_v, a_heads, b_u, b_v, b_heads, backend=None):
    """Merge two sorted canonical edge/head column sets.

    Returns ``(edge_u, edge_v, heads, overlap)``; when ``overlap`` is
    non-zero the columns are ``None`` and the caller raises (matching the
    two-pointer reference, which detects sharing before building a result).
    """
    return _module(backend).merge_oriented_columns(
        num_vertices, a_u, a_v, a_heads, b_u, b_v, b_heads
    )


def sum_counts(a, b, backend=None):
    """Elementwise sum of two equal-length count tuples, as a tuple of ints."""
    return _module(backend).sum_counts(a, b)


def min_value(column, backend=None):
    """Minimum of a flat column (0 for an empty column)."""
    return _module(backend).min_value(column)


def max_sizes(collections, backend=None):
    """``max(len(c) for c in collections)`` (0 when empty)."""
    return _module(backend).max_sizes(collections)


def sum_sizes(collections, backend=None):
    """``sum(len(c) for c in collections)``."""
    return _module(backend).sum_sizes(collections)


def assemble_color_columns(num_vertices, parts, backend=None):
    """Scatter per-part color columns under prefix-sum palette offsets.

    ``parts`` is a sequence of ``(parent_ids, color_column, palette_size)``
    triples in part order.  Returns ``(column, offsets)``: a flat
    ``array('l')`` of final colors (−1 where no part covered the vertex) and
    the palette prefix sums ``[0, s0, s0+s1, ...]``.
    """
    return _module(backend).assemble_color_columns(num_vertices, parts)


def max_value(column, backend=None):
    """Maximum of a flat column (0 for an empty column)."""
    return _module(backend).max_value(column)


def count_distinct(column, backend=None):
    """Number of distinct values in a flat column."""
    return _module(backend).count_distinct(column)


def build_csr(num_vertices, edge_u, edge_v, backend=None):
    """CSR adjacency ``(indptr, indices)`` from canonical sorted edge columns.

    Every vertex's neighbor slice comes back fully ascending; both backends
    produce byte-identical ``array('l')`` pairs.  This is the
    re-materialisation step the streaming data plane pays after every
    journal compaction, so it dispatches like any other kernel.
    """
    return _module(backend).build_csr(num_vertices, edge_u, edge_v)


def encode_edge_keys(num_vertices, edge_u, edge_v, backend=None):
    """Canonical sorted edge columns as sorted ``u * stride + v`` int keys.

    ``stride = max(num_vertices, 1)`` is the shared key convention of the
    streaming kernels — the columns this produces feed ``validate_batch``
    directly.
    """
    return _module(backend).encode_edge_keys(num_vertices, edge_u, edge_v)


def first_monochrome(colors, us, vs, start=0, backend=None):
    """First index ≥ ``start`` where ``colors[us[i]] == colors[vs[i]]``, else -1.

    The recolor-candidate scan of the incremental coloring (callers repair
    the hit and resume at ``i + 1``) and the properness check's inner loop.
    """
    return _module(backend).first_monochrome(colors, us, vs, start)


def compact_journal(num_vertices, base_u, base_v, ops, journal_u, journal_v, backend=None):
    """Merge a columnar op journal over base edge columns; ``(edge_u, edge_v)``.

    The journal columns record inserts (op 1) and deletes (op 0) of
    canonical edges in arrival order; each edge's *final* op decides whether
    it is added to, tombstoned from, or collapsed back onto the base.  The
    output columns are canonical sorted, ready for ``Graph._from_columns``.
    """
    return _module(backend).compact_journal(
        num_vertices, base_u, base_v, ops, journal_u, journal_v
    )


def validate_batch(num_vertices, ops, us, vs, base_keys, added_keys, removed_keys, backend=None):
    """Atomically pre-validate one update batch against the live edge set.

    ``ops``/``us``/``vs`` are the batch's raw columns (op 1 = insert);
    the key columns are the live state in the ``encode_edge_keys`` encoding.
    Raises :class:`~repro.errors.GraphError` on the first offending update
    with the streaming service's exact message; returns ``None`` when legal.
    """
    return _module(backend).validate_batch(
        num_vertices, ops, us, vs, base_keys, added_keys, removed_keys
    )


def flip_repair_group(shard, group_updates, cap, choose_tail, backend=None):
    """Replay one cap-safe conflict group against its out-table shard.

    ``shard`` maps each touched vertex to its sorted out-heads tuple;
    ``choose_tail`` is the caller's tail-selection rule (injected so the
    stream module keeps exactly one definition of it).  Returns
    ``(new_shard, freed)`` with sorted python-int head lists and the freed
    tails in deletion order — the exact contract of the process backend's
    sharded repair task.
    """
    return _module(backend).flip_repair_group(shard, group_updates, cap, choose_tail)
