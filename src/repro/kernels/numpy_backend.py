"""Vectorized numpy kernels, byte-identical to :mod:`repro.kernels.pure`.

Only imported once :func:`repro.kernels.numpy_available` has confirmed numpy
is importable, so the top-level ``import numpy`` here never breaks a
numpy-less host.

**Zero-copy bridge.**  The CSR core stores every column as an ``array('l')``
— int64 on the platforms we run on — and :func:`np_view` wraps such a buffer
in an ``np.frombuffer`` view without copying.  The rules for these views:

* they alias the source buffer — treat them as **read-only** (kernels that
  need a scratch copy take one explicitly, e.g. the peel's degree vector);
* they are only valid while the source object is alive (the view holds a
  reference, so ordinary usage is safe, but never stash a view beyond the
  life of a shared-memory segment's mapping);
* results that cross back into the CSR core are converted with
  :func:`to_array` (one ``tobytes`` memcpy), so downstream consumers —
  pickling, ``extend``, byte-level identity checks — see exactly the
  ``array('l')`` objects the pure backend produces.

Every kernel here reproduces the pure reference *exactly*: same layers,
heads, tallies and palette columns, same error messages raised on the same
first offender.  The equivalence suite in ``tests/kernels/`` pins this on
randomized inputs.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.errors import GraphError, InvalidOrientationError

# array('l') is int64 on every platform this repo targets (Linux/macOS); the
# dtype is derived rather than hard-coded so a 32-bit ``long`` would still
# round-trip correctly.
_ITEMSIZE = array("l").itemsize
_DTYPE = np.dtype(f"i{_ITEMSIZE}")


def np_view(column) -> np.ndarray:
    """Zero-copy int view over an ``array('l')`` (or any int64 buffer)."""
    if isinstance(column, np.ndarray):
        return column
    return np.frombuffer(column, dtype=_DTYPE)


def to_array(values: np.ndarray) -> array:
    """Copy a flat numpy vector back into an ``array('l')`` (one memcpy)."""
    out = array("l")
    out.frombytes(np.ascontiguousarray(values, dtype=_DTYPE).tobytes())
    return out


def peel_layers(num_vertices, indptr, indices, degrees, threshold, max_rounds):
    """Vectorized frontier peel: bincount decrements + boolean-mask extraction.

    Per round, the frontier's neighbor lists are gathered with one fancy
    index (CSR multi-slice via cumsum/repeat), the per-vertex removal counts
    come from one ``bincount``, and the next frontier is the boolean mask
    ``remaining degree ≤ threshold``.  Stamped vertices keep a stale stored
    degree exactly like the reference (every later read is gated on
    ``layers == 0``), so the resulting layers and round count are identical.
    """
    n = num_vertices
    indptr = np_view(indptr)
    indices = np_view(indices)
    # Scratch copy; equals the ``degrees`` tuple by CSR construction, but
    # derived from indptr so no python-level conversion of n ints is needed.
    degree = indptr[1:] - indptr[:-1]
    layers = np.zeros(n, dtype=_DTYPE)
    frontier = np.nonzero(degree <= threshold)[0]
    layers[frontier] = 1
    rounds_used = 0
    while frontier.size and (max_rounds is None or rounds_used < max_rounds):
        rounds_used += 1
        starts = indptr[frontier]
        lens = indptr[frontier + 1] - starts
        total = int(lens.sum())
        if total:
            # Gather indices[starts[k] : starts[k] + lens[k]] for every
            # frontier vertex k in one shot.
            cum = np.cumsum(lens) - lens
            gather = np.arange(total, dtype=_DTYPE) + np.repeat(starts - cum, lens)
            neighbors = indices[gather]
            alive = neighbors[layers[neighbors] == 0]
            removals = np.bincount(alive, minlength=n)
            newly = (layers == 0) & (removals > 0) & (degree - removals <= threshold)
            # Stamped vertices take the decrement too (the reference leaves
            # them one step stale instead) — unobservable either way, since
            # a non-zero layer gates every future read.
            degree = degree - removals
            frontier = np.nonzero(newly)[0]
            layers[frontier] = rounds_used + 1
        else:
            frontier = frontier[:0]
    if frontier.size:
        # max_rounds cut the process short; un-assign the queued wave.
        layers[frontier] = 0
    return to_array(layers), rounds_used


def orient_by_rank(edge_u, edge_v, ranks):
    """``np.where`` head flips: point each edge at the higher-ranked endpoint."""
    rank = np.asarray(ranks)
    if rank.dtype == object:
        # Arbitrary comparable ranks (not coercible to a numeric vector):
        # defer to the reference loop.
        from repro.kernels import pure

        return pure.orient_by_rank(edge_u, edge_v, ranks)
    eu = np_view(edge_u)
    ev = np_view(edge_v)
    # u < v in canonical form, so rank ties resolve toward v.
    return to_array(np.where(rank[eu] <= rank[ev], ev, eu))


def tally_outdegrees(num_vertices, edge_u, edge_v, heads):
    """One ``bincount`` over the tail column (+ the reference endpoint check)."""
    eu = np_view(edge_u)
    ev = np_view(edge_v)
    h = np_view(heads)
    to_v = h == ev
    bad = ~(to_v | (h == eu))
    if bad.any():
        i = int(bad.argmax())  # first offender, matching the reference scan
        raise InvalidOrientationError(
            f"edge {(int(eu[i]), int(ev[i]))} oriented toward {int(h[i])}, "
            f"which is not an endpoint"
        )
    tails = np.where(to_v, eu, ev)
    return tuple(np.bincount(tails, minlength=num_vertices).tolist())


def merge_oriented_columns(num_vertices, a_u, a_v, a_heads, b_u, b_v, b_heads):
    """Searchsorted merge of two sorted, disjoint canonical edge column sets.

    Edges are encoded as ``u * n + v`` int64 keys (lexicographic order is
    preserved, and ``n² < 2⁶³`` for any graph this repo can hold), overlap is
    one ``isin``, and each side's merged positions are its own index plus the
    count of smaller keys on the other side — a permutation scatter instead
    of a 2(m_a + m_b)-step python walk.
    """
    au, av, ah = np_view(a_u), np_view(a_v), np_view(a_heads)
    bu, bv, bh = np_view(b_u), np_view(b_v), np_view(b_heads)
    stride = max(num_vertices, 1)
    ka = au * stride + av
    kb = bu * stride + bv
    overlap = int(np.count_nonzero(np.isin(kb, ka, assume_unique=True)))
    if overlap:
        return None, None, None, overlap
    la, lb = ka.size, kb.size
    pos_a = np.arange(la, dtype=_DTYPE) + np.searchsorted(kb, ka)
    pos_b = np.arange(lb, dtype=_DTYPE) + np.searchsorted(ka, kb)
    out_u = np.empty(la + lb, dtype=_DTYPE)
    out_v = np.empty(la + lb, dtype=_DTYPE)
    out_h = np.empty(la + lb, dtype=_DTYPE)
    out_u[pos_a] = au
    out_u[pos_b] = bu
    out_v[pos_a] = av
    out_v[pos_b] = bv
    out_h[pos_a] = ah
    out_h[pos_b] = bh
    return to_array(out_u), to_array(out_v), to_array(out_h), 0


def sum_counts(a, b):
    """Elementwise sum of two equal-length count tuples."""
    if not len(a):
        return ()
    return tuple((np.asarray(a, dtype=_DTYPE) + np.asarray(b, dtype=_DTYPE)).tolist())


def min_value(column):
    """Minimum of a flat column (0 when empty)."""
    view = np_view(column)
    return int(view.min()) if view.size else 0


def max_sizes(collections):
    """Largest ``len()`` across the collections (0 when there are none)."""
    sizes = np.fromiter(map(len, collections), dtype=_DTYPE, count=len(collections))
    return int(sizes.max()) if sizes.size else 0


def sum_sizes(collections):
    """Total ``len()`` across the collections."""
    sizes = np.fromiter(map(len, collections), dtype=_DTYPE, count=len(collections))
    return int(sizes.sum())


def assemble_color_columns(num_vertices, parts):
    """Prefix-sum palette offsets + one scatter per part's color column."""
    column = np.full(num_vertices, -1, dtype=_DTYPE)
    offsets = [0]
    base = 0
    for parents, colors, palette_size in parts:
        if len(parents):
            idx = np.fromiter(parents, dtype=_DTYPE, count=len(parents))
            column[idx] = np_view(colors) + base
        base += int(palette_size)
        offsets.append(base)
    return to_array(column), offsets


def max_value(column):
    """Maximum of a flat column (0 when empty)."""
    view = np_view(column)
    return int(view.max()) if view.size else 0


def count_distinct(column):
    """Number of distinct values in a flat column (one ``np.unique``)."""
    return int(np.unique(np_view(column)).size)


def build_csr(num_vertices, edge_u, edge_v):
    """CSR adjacency ``(indptr, indices)`` — vectorized symmetric scatter.

    Doubling the canonical edge list to ``(u→v, v→u)`` and stable-sorting
    by (source, neighbor) puts every vertex's neighbors in one contiguous
    ascending run — exactly the pure layout, whose [smaller asc | larger
    asc] slices are fully ascending because edges are stored sorted.
    """
    n = num_vertices
    u = np_view(edge_u)
    v = np_view(edge_v)
    src = np.concatenate((u, v))
    dst = np.concatenate((v, u))
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    # (src, dst) pairs are unique (simple graph), so one sort of the fused
    # key src * n + dst — collision-free since dst < n — orders them fully.
    order = np.argsort(src * n + dst) if n else np.empty(0, dtype=np.int64)
    return to_array(indptr), to_array(dst[order])


def encode_edge_keys(num_vertices, edge_u, edge_v):
    """Sorted ``u * stride + v`` edge keys (see the pure reference)."""
    stride = max(num_vertices, 1)
    return to_array(np_view(edge_u) * stride + np_view(edge_v))


def first_monochrome(colors, us, vs, start):
    """First monochromatic edge at index ≥ ``start``: one gather + compare."""
    c = np_view(colors)
    u = np_view(us)[start:]
    v = np_view(vs)[start:]
    if not u.size:
        return -1
    same = c[u] == c[v]
    i = int(same.argmax())
    return start + i if same[i] else -1


def _last_ops_per_key(keys, ops):
    """Unique journal keys (ascending) with each key's final op."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    last = np.empty(sorted_keys.size, dtype=bool)
    last[:-1] = sorted_keys[:-1] != sorted_keys[1:]
    last[-1] = True
    return sorted_keys[last], ops[order][last]


def compact_journal(num_vertices, base_u, base_v, ops, journal_u, journal_v):
    """Vectorized journal merge (see the pure reference for the semantics).

    Keys encode edges as ``u * stride + v``; the per-key final op falls out
    of one stable argsort (last occurrence per key run), tombstones and
    additions are boolean masks, and the merged output is the same
    searchsorted permutation scatter as :func:`merge_oriented_columns`.
    """
    if not len(ops):
        return array("l", base_u), array("l", base_v)
    eu, ev = np_view(base_u), np_view(base_v)
    stride = max(num_vertices, 1)
    journal_keys = np_view(journal_u) * stride + np_view(journal_v)
    keys, final_op = _last_ops_per_key(journal_keys, np_view(ops))
    base_keys = eu * stride + ev
    in_base = np.isin(keys, base_keys, assume_unique=True)
    tombstones = keys[(final_op == 0) & in_base]
    additions = keys[(final_op == 1) & ~in_base]
    keep = ~np.isin(base_keys, tombstones, assume_unique=True)
    kept_keys = base_keys[keep]
    kept_u = eu[keep]
    kept_v = ev[keep]
    added_u = additions // stride
    added_v = additions % stride
    nk, na = kept_keys.size, additions.size
    pos_kept = np.arange(nk, dtype=_DTYPE) + np.searchsorted(additions, kept_keys)
    pos_added = np.arange(na, dtype=_DTYPE) + np.searchsorted(kept_keys, additions)
    out_u = np.empty(nk + na, dtype=_DTYPE)
    out_v = np.empty(nk + na, dtype=_DTYPE)
    out_u[pos_kept] = kept_u
    out_u[pos_added] = added_u
    out_v[pos_kept] = kept_v
    out_v[pos_added] = added_v
    return to_array(out_u), to_array(out_v)


def _sorted_member(sorted_keys, queries):
    """Boolean membership of ``queries`` in an ascending key column."""
    if not sorted_keys.size:
        return np.zeros(queries.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_keys, queries), sorted_keys.size - 1)
    return sorted_keys[pos] == queries


def validate_batch(num_vertices, ops, us, vs, base_keys, added_keys, removed_keys):
    """Vectorized batch pre-validation, byte-identical to the pure reference.

    The range check is one boolean mask.  Liveness groups the batch by edge
    key with a stable argsort: the first occurrence of a key is judged
    against the published key columns, every later occurrence against its
    predecessor's op — the vectorized form of the reference's ``pending``
    dict.  The reported offender is the *smallest* violating index across
    both checks.  A range-violating update produces a garbage key, but it
    cannot corrupt the offender choice: every index before the first range
    violation carries a valid key (garbage keys can only distort groups at
    strictly larger indices, which the min never selects).
    """
    if not len(ops):
        return
    n = num_vertices
    u = np_view(us)
    v = np_view(vs)
    op = np_view(ops)
    bad_range = (u < 0) | (u >= n) | (v < 0) | (v >= n)
    range_index = int(bad_range.argmax()) if bad_range.any() else None
    stride = max(n, 1)
    keys = np.minimum(u, v) * stride + np.maximum(u, v)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_ops = op[order]
    first = np.empty(sorted_keys.size, dtype=bool)
    first[0] = True
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    base_live = _sorted_member(np_view(added_keys), sorted_keys) | (
        _sorted_member(np_view(base_keys), sorted_keys)
        & ~_sorted_member(np_view(removed_keys), sorted_keys)
    )
    prev_live = np.empty(sorted_keys.size, dtype=bool)
    prev_live[0] = False
    prev_live[1:] = sorted_ops[:-1] == 1
    live = np.where(first, base_live, prev_live)
    violation = ((sorted_ops == 1) & live) | ((sorted_ops == 0) & ~live)
    live_index = int(order[violation].min()) if violation.any() else None
    if range_index is None and live_index is None:
        return
    if live_index is None or (range_index is not None and range_index < live_index):
        i = range_index
        raise GraphError(
            f"batch update #{i}: edge ({int(u[i])}, {int(v[i])}) "
            f"references a vertex outside 0..{n - 1}"
        )
    i = live_index
    e = _canonical(int(u[i]), int(v[i]))
    if int(op[i]) == 1:
        raise GraphError(f"batch update #{i}: insert of live edge {e}")
    raise GraphError(f"batch update #{i}: delete of dead edge {e}")


def _canonical(u, v):
    return (u, v) if u < v else (v, u)


def flip_repair_group(shard, group_updates, cap, choose_tail):
    """Sharded group replay over sorted head vectors.

    The per-update decision sequence is inherently serial (each tail choice
    depends on the outdegrees the previous updates produced), so the loop
    structure matches the reference; the data movement around it — shard
    decode, membership tests (``searchsorted`` on sorted vectors), head
    insertion/removal, and the final sorted-list encode — is numpy.  Output
    (including error messages) is byte-identical to the pure kernel.
    """
    out = {
        vertex: np.asarray(heads, dtype=_DTYPE)
        for vertex, heads in shard.items()
    }
    freed: list[int] = []

    def contains(arr, x):
        i = int(np.searchsorted(arr, x))
        return i < arr.size and arr[i] == x, i

    for update in group_updates:
        u, v = update.u, update.v
        if update.is_insert:
            v_in_u, _ = contains(out[u], v)
            u_in_v, _ = contains(out[v], u)
            if v_in_u or u_in_v:
                raise GraphError(
                    f"insert of already-oriented edge {_canonical(u, v)} "
                    f"without a mid-batch rebuild: orientation drifted from "
                    f"the live edge set"
                )
            tail = choose_tail(u, v, out[u].size, out[v].size)
            head = v if tail == u else u
            arr = out[tail]
            pos = int(np.searchsorted(arr, head))
            out[tail] = np.insert(arr, pos, head)
            if out[tail].size > cap:
                raise GraphError(
                    f"cap overflow at vertex {tail} inside a conflict-free "
                    f"group — the safety precheck is broken"
                )
        else:
            v_in_u, pos_u = contains(out[u], v)
            if v_in_u:
                out[u] = np.delete(out[u], pos_u)
                freed.append(u)
            else:
                u_in_v, pos_v = contains(out[v], u)
                if u_in_v:
                    out[v] = np.delete(out[v], pos_v)
                    freed.append(v)
                else:
                    raise GraphError(f"edge {_canonical(u, v)} is not oriented")
    return {vertex: arr.tolist() for vertex, arr in out.items()}, freed
