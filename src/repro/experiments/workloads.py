"""Named workloads for the experiment suite.

A workload is a reproducible graph instance: a family name, a size, family
parameters and a seed.  The experiment registry (:mod:`repro.experiments.registry`)
combines workloads into sweeps; the benchmarks materialise them on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph import generators
from repro.graph.graph import Graph


@dataclass(frozen=True)
class Workload:
    """A reproducible graph instance description."""

    name: str
    family: str
    num_vertices: int
    seed: int = 0
    params: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def materialize(self) -> Graph:
        """Generate the graph described by this workload."""
        return generators.generate(
            self.family, self.num_vertices, seed=self.seed, **dict(self.params)
        )

    def describe(self) -> str:
        """One-line description for tables."""
        extras = ", ".join(f"{key}={value}" for key, value in self.params)
        suffix = f" ({extras})" if extras else ""
        return f"{self.family} n={self.num_vertices}{suffix}"


def forests_sweep(sizes: tuple[int, ...] = (256, 512, 1024, 2048), seed: int = 0) -> list[Workload]:
    """Random forests (λ = 1) across sizes."""
    return [
        Workload(name=f"forest-{n}", family="forest", num_vertices=n, seed=seed)
        for n in sizes
    ]


def union_forest_sweep(
    sizes: tuple[int, ...] = (256, 512, 1024, 2048),
    arboricities: tuple[int, ...] = (2, 4, 8),
    seed: int = 0,
) -> list[Workload]:
    """Union-of-forests graphs with planted arboricity across sizes."""
    return [
        Workload(
            name=f"union-forests-{n}-lam{lam}",
            family="union_forests",
            num_vertices=n,
            seed=seed + lam,
            params=(("arboricity", lam),),
        )
        for n in sizes
        for lam in arboricities
    ]


def power_law_sweep(
    sizes: tuple[int, ...] = (512, 1024, 2048), seed: int = 0
) -> list[Workload]:
    """Chung–Lu power-law graphs (Δ ≫ λ regime)."""
    return [
        Workload(
            name=f"power-law-{n}",
            family="power_law",
            num_vertices=n,
            seed=seed,
            params=(("exponent", 2.3), ("average_degree", 6.0)),
        )
        for n in sizes
    ]


def dense_sweep(sizes: tuple[int, ...] = (400, 800), seed: int = 0) -> list[Workload]:
    """Planted dense subgraphs (λ ≫ log n regime exercising Lemmas 2.1/2.2)."""
    return [
        Workload(
            name=f"planted-dense-{n}",
            family="planted_dense",
            num_vertices=n,
            seed=seed,
            params=(("community_size", max(n // 8, 20)), ("community_probability", 0.5)),
        )
        for n in sizes
    ]


def standard_suite(seed: int = 0) -> list[Workload]:
    """The default mixed workload suite used by E1/E2."""
    suite: list[Workload] = []
    suite.extend(union_forest_sweep(sizes=(256, 1024), arboricities=(2, 4), seed=seed))
    suite.extend(power_law_sweep(sizes=(1024,), seed=seed))
    suite.extend(forests_sweep(sizes=(1024,), seed=seed))
    return suite
