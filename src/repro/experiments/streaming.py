"""Experiment runner for the streaming subsystem (experiment S1).

Runs a :class:`~repro.stream.workloads.StreamWorkload` end to end through the
:class:`~repro.stream.service.StreamingService`, verifies every maintained
invariant, and collects one :class:`~repro.experiments.harness.ExperimentRow`
whose metrics cover both the *cost* of maintenance (flips, recolors,
rebuilds, compactions, simulated MPC rounds, amortised work) and the *quality*
of the maintained structures at stream end (max outdegree vs. the O(λ)
envelope, colors, properness).
"""

from __future__ import annotations

from repro.analysis.validators import validate_streaming_outdegree
from repro.experiments.harness import ExperimentRow
from repro.graph.arboricity import arboricity_bounds
from repro.stream.service import StreamingService
from repro.stream.workloads import StreamWorkload


def run_streaming_experiment(
    workload: StreamWorkload,
    delta: float = 0.5,
    seed: int = 0,
) -> ExperimentRow:
    """S1: stream a trace through the service and record cost/quality metrics."""
    trace = workload.materialize()
    service = StreamingService(trace.initial, delta=delta, seed=seed)
    summary = service.apply_all(trace.batches)
    service.verify()

    snapshot = service.dynamic.snapshot()
    bounds = arboricity_bounds(snapshot, exact_density=False)
    quality = validate_streaming_outdegree(
        service.orientation.max_outdegree(), bounds.upper, snapshot.num_vertices
    )
    coloring = service.coloring

    row = ExperimentRow(
        workload=workload.describe(),
        num_vertices=snapshot.num_vertices,
        num_edges=snapshot.num_edges,
        arboricity_lower=bounds.lower,
        arboricity_upper=bounds.upper,
    )
    row.metrics.update(summary.as_dict())
    row.metrics.update(
        {
            "outdegree_bound": quality.allowed,
            "outdegree_ok": 1.0 if quality.passed else 0.0,
            "proper": 1.0 if (coloring is None or coloring.is_proper()) else 0.0,
            "initial_m": float(trace.initial.num_edges),
        }
    )
    return row
