"""Experiment runners for the streaming subsystem (experiments S1 and S2).

Each runner streams a :class:`~repro.stream.workloads.StreamWorkload` end to
end through the :class:`~repro.stream.service.StreamingService`, verifies
every maintained invariant, and collects one
:class:`~repro.experiments.harness.ExperimentRow`:

* **S1** (:func:`run_streaming_experiment`) covers both the *cost* of
  maintenance (flips, recolors, rebuilds, compactions, simulated MPC rounds,
  amortised work) and the *quality* of the maintained structures at stream
  end (max outdegree vs. the O(λ) envelope, colors, properness).
* **S2** (:func:`run_batch_size_experiment`) sweeps the *batch size* of a
  windowed trace at a fixed update budget: delivering a batch costs one
  communication round regardless of its size (until it outgrows ``S``), so
  the amortised rounds/update should fall roughly like ``1/batch_size``
  while the maintained quality stays flat — the table the windowed-batching
  ROADMAP item asks for.
"""

from __future__ import annotations

from repro.analysis.validators import validate_streaming_outdegree
from repro.experiments.harness import ExperimentRow
from repro.graph.arboricity import arboricity_bounds
from repro.stream.service import StreamingService
from repro.stream.workloads import StreamWorkload


def run_streaming_experiment(
    workload: StreamWorkload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentRow:
    """S1: stream a trace through the service and record cost/quality metrics."""
    trace = workload.materialize()
    with StreamingService(trace.initial, delta=delta, seed=seed, workers=workers) as service:
        summary = service.apply_all(trace.batches)
        service.verify()

    snapshot = service.dynamic.snapshot()
    bounds = arboricity_bounds(snapshot, exact_density=False)
    quality = validate_streaming_outdegree(
        service.orientation.max_outdegree(), bounds.upper, snapshot.num_vertices
    )
    coloring = service.coloring

    row = ExperimentRow(
        workload=workload.describe(),
        num_vertices=snapshot.num_vertices,
        num_edges=snapshot.num_edges,
        arboricity_lower=bounds.lower,
        arboricity_upper=bounds.upper,
    )
    row.metrics.update(summary.as_dict())
    row.metrics.update(
        {
            "outdegree_bound": quality.allowed,
            "outdegree_ok": 1.0 if quality.passed else 0.0,
            "proper": 1.0 if (coloring is None or coloring.is_proper()) else 0.0,
            "initial_m": float(trace.initial.num_edges),
        }
    )
    return row


def run_batch_size_experiment(
    workload: StreamWorkload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
) -> ExperimentRow:
    """S2: amortised rounds/update of one windowed trace at one batch size.

    The workload's ``batch_size`` param is the swept variable; the registry's
    S2 suite holds the total update budget fixed while the batch size varies,
    so rows are directly comparable.  The headline metric is
    ``rounds_per_update`` — total simulated MPC rounds (delivery + repair
    primitives + compaction + rebuilds) over total updates.
    """
    trace = workload.materialize()
    with StreamingService(trace.initial, delta=delta, seed=seed, workers=workers) as service:
        summary = service.apply_all(trace.batches)
        service.verify()

    snapshot = service.dynamic.snapshot()
    bounds = arboricity_bounds(snapshot, exact_density=False)
    updates = max(summary.total_updates, 1)
    # Per-batch round deltas only: the initial orientation build is the same
    # for every batch size, so it would just add a constant to every row.
    rounds = summary.total_rounds

    row = ExperimentRow(
        workload=workload.describe(),
        num_vertices=snapshot.num_vertices,
        num_edges=snapshot.num_edges,
        arboricity_lower=bounds.lower,
        arboricity_upper=bounds.upper,
    )
    row.metrics.update(
        {
            "batch_size": float(dict(workload.params).get("batch_size", 0)),
            "batches": float(summary.num_batches),
            "updates": float(summary.total_updates),
            "rounds": float(rounds),
            "rounds_per_update": rounds / updates,
            "flips": float(summary.total_flips),
            "amortised_flips": summary.amortised_flips,
            "proactive_flips": float(summary.total_proactive_flips),
            "rebuilds": float(summary.total_rebuilds),
            "final_max_outdegree": float(service.orientation.max_outdegree()),
            "outdegree_cap": float(service.orientation.outdegree_cap),
        }
    )
    return row
