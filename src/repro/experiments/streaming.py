"""Experiment runners for the streaming subsystem (experiments S1 and S2).

Each runner streams a :class:`~repro.stream.workloads.StreamWorkload` end to
end through the :class:`~repro.stream.service.StreamingService`, verifies
every maintained invariant, and collects one
:class:`~repro.experiments.harness.ExperimentRow`:

* **S1** (:func:`run_streaming_experiment`) covers both the *cost* of
  maintenance (flips, recolors, rebuilds, compactions, simulated MPC rounds,
  amortised work) and the *quality* of the maintained structures at stream
  end (max outdegree vs. the O(λ) envelope, colors, properness).
* **S2** (:func:`run_batch_size_experiment`) sweeps the *batch size* of a
  windowed trace at a fixed update budget: delivering a batch costs one
  communication round regardless of its size (until it outgrows ``S``), so
  the amortised rounds/update should fall roughly like ``1/batch_size``
  while the maintained quality stays flat — the table the windowed-batching
  ROADMAP item asks for.
* **S3** (:func:`run_multi_tenant_experiment`) multiplexes a fleet of
  independent tenants on one :class:`~repro.stream.engine.StreamEngine`:
  every tick serves one batch per tenant as parallel supersteps, so the
  headline metric is the round *savings* of the max-over-tenants fold over
  charging the tenants sequentially — the multiplexing analogue of the
  Lemma 2.1/2.2 part fan-outs.
* **S4** (:func:`run_scheduler_experiment`) serves a skewed bursty/steady
  fleet under a scheduling policy and a per-tick round budget: the sweep
  trades tail latency and backlog against the budget, while conservation
  (every submitted update applied exactly once) and the budget cap on the
  folded tick rounds are asserted on every row.
"""

from __future__ import annotations

from repro.analysis.validators import validate_streaming_outdegree
from repro.errors import GraphError
from repro.experiments.harness import ExperimentRow
from repro.graph.arboricity import arboricity_bounds
from repro.stream.engine import StreamEngine
from repro.stream.service import StreamingService
from repro.stream.workloads import (
    MultiTenantWorkload,
    SchedulerWorkload,
    StreamWorkload,
)


def run_streaming_experiment(
    workload: StreamWorkload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """S1: stream a trace through the service and record cost/quality metrics.

    ``tracer`` (a :class:`repro.obs.Tracer`, optional) records host-side
    spans for the run; results are identical with tracing on or off.
    """
    trace = workload.materialize()
    with StreamingService(
        trace.initial, delta=delta, seed=seed, workers=workers, tracer=tracer
    ) as service:
        summary = service.apply_all(trace.batches)
        service.verify()

    snapshot = service.dynamic.snapshot()
    bounds = arboricity_bounds(snapshot, exact_density=False)
    quality = validate_streaming_outdegree(
        service.orientation.max_outdegree(), bounds.upper, snapshot.num_vertices
    )
    coloring = service.coloring

    row = ExperimentRow(
        workload=workload.describe(),
        num_vertices=snapshot.num_vertices,
        num_edges=snapshot.num_edges,
        arboricity_lower=bounds.lower,
        arboricity_upper=bounds.upper,
    )
    row.metrics.update(summary.as_dict())
    row.metrics.update(
        {
            "outdegree_bound": quality.allowed,
            "outdegree_ok": 1.0 if quality.passed else 0.0,
            "proper": 1.0 if (coloring is None or coloring.is_proper()) else 0.0,
            "initial_m": float(trace.initial.num_edges),
        }
    )
    return row


def run_batch_size_experiment(
    workload: StreamWorkload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """S2: amortised rounds/update of one windowed trace at one batch size.

    The workload's ``batch_size`` param is the swept variable; the registry's
    S2 suite holds the total update budget fixed while the batch size varies,
    so rows are directly comparable.  The headline metric is
    ``rounds_per_update`` — total simulated MPC rounds (delivery + repair
    primitives + compaction + rebuilds) over total updates.
    """
    trace = workload.materialize()
    with StreamingService(
        trace.initial, delta=delta, seed=seed, workers=workers, tracer=tracer
    ) as service:
        summary = service.apply_all(trace.batches)
        service.verify()

    snapshot = service.dynamic.snapshot()
    bounds = arboricity_bounds(snapshot, exact_density=False)
    updates = max(summary.total_updates, 1)
    # Per-batch round deltas only: the initial orientation build is the same
    # for every batch size, so it would just add a constant to every row.
    rounds = summary.total_rounds

    row = ExperimentRow(
        workload=workload.describe(),
        num_vertices=snapshot.num_vertices,
        num_edges=snapshot.num_edges,
        arboricity_lower=bounds.lower,
        arboricity_upper=bounds.upper,
    )
    row.metrics.update(
        {
            "batch_size": float(dict(workload.params).get("batch_size", 0)),
            "batches": float(summary.num_batches),
            "updates": float(summary.total_updates),
            "rounds": float(rounds),
            "rounds_per_update": rounds / updates,
            "flips": float(summary.total_flips),
            "amortised_flips": summary.amortised_flips,
            "proactive_flips": float(summary.total_proactive_flips),
            "rebuilds": float(summary.total_rebuilds),
            "final_max_outdegree": float(service.orientation.max_outdegree()),
            "outdegree_cap": float(service.orientation.outdegree_cap),
        }
    )
    return row


def run_multi_tenant_experiment(
    workload: MultiTenantWorkload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """S3: stream a tenant fleet through one engine and record the round fold.

    ``rounds_parallel`` is the shared ledger's per-tick max-over-tenants
    charge summed over the ticks; ``rounds_sequential`` is what charging the
    same tenants one after another would have cost (the sum of the per-tenant
    per-tick rounds).  ``round_savings`` is their ratio — it approaches the
    tenant count when the fleet is balanced.  Quality metrics are the worst
    case over the fleet, and every tenant's invariants are verified at the
    end of the run.
    """
    traces = workload.materialize()
    with StreamEngine(delta=delta, seed=seed, workers=workers, tracer=tracer) as engine:
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        summary = engine.run_until_drained()
        engine.verify()

        snapshots = {
            name: engine.tenant_service(name).dynamic.snapshot()
            for name in engine.tenant_names()
        }
        per_tenant_bounds = {
            name: arboricity_bounds(snapshot, exact_density=False)
            for name, snapshot in snapshots.items()
        }
        worst_quality = None
        for name, snapshot in snapshots.items():
            quality = validate_streaming_outdegree(
                engine.tenant_service(name).orientation.max_outdegree(),
                per_tenant_bounds[name].upper,
                snapshot.num_vertices,
            )
            if worst_quality is None or quality.headroom < worst_quality.headroom:
                worst_quality = quality
        proper = all(
            engine.tenant_service(name).coloring.is_proper()
            for name in engine.tenant_names()
        )
        rounds_parallel = summary.total_rounds
        rounds_sequential = sum(tick.sequential_rounds for tick in engine.ticks)
        final = summary.final_report()

        row = ExperimentRow(
            workload=workload.describe(),
            num_vertices=sum(s.num_vertices for s in snapshots.values()),
            num_edges=sum(s.num_edges for s in snapshots.values()),
            arboricity_lower=max(b.lower for b in per_tenant_bounds.values()),
            arboricity_upper=max(b.upper for b in per_tenant_bounds.values()),
        )
        row.metrics.update(
            {
                "tenants": float(workload.num_tenants),
                "ticks": float(summary.num_batches),
                "updates": float(summary.total_updates),
                "flips": float(summary.total_flips),
                "rebuilds": float(summary.total_rebuilds),
                "rounds_parallel": float(rounds_parallel),
                "rounds_sequential": float(rounds_sequential),
                "round_savings": rounds_sequential / max(rounds_parallel, 1),
                "max_outdegree": float(final.max_outdegree),
                "outdegree_ok": 1.0 if (worst_quality is None or worst_quality.passed) else 0.0,
                "colors": float(final.num_colors),
                "proper": 1.0 if proper else 0.0,
                "wall_clock_s": summary.total_wall_clock_s,
            }
        )
    return row


def batch_latencies(ticks) -> dict[str, list[int]]:
    """Per-tenant batch latencies, in ticks, reconstructed from tick reports.

    Batch ``j`` (0-based) of a tenant could have been served at tick ``j`` at
    the earliest (one batch per tenant per tick, everything submitted before
    the first tick); its latency is ``applied_tick - j``.  ``serve-all``
    fleets are all-zero; budgeted policies trade latency for the round cap.
    """
    served_so_far: dict[str, int] = {}
    latencies: dict[str, list[int]] = {}
    for tick in ticks:
        for name in tick.reports:
            position = served_so_far.get(name, 0)
            served_so_far[name] = position + 1
            latencies.setdefault(name, []).append(tick.tick_index - position)
    return latencies


def run_scheduler_experiment(
    workload: SchedulerWorkload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """S4: serve a skewed fleet under one scheduling policy + round budget.

    The headline columns are ``tail_latency`` (worst batch wait, in ticks)
    and ``max_backlog`` (largest end-of-tick queued-update backlog) against
    the configured ``budget``; ``budget_ok`` asserts that the folded tick
    rounds never exceeded the budget, and ``conserved`` that every submitted
    update was applied exactly once — the two contracts the property suite
    checks in anger.  The fleet is rebuild-free by construction, so the
    budget cap is exact (see :mod:`repro.stream.scheduler`).
    """
    traces = workload.materialize()
    submitted = {trace.name: trace.num_updates for trace in traces}
    with StreamEngine(
        delta=delta,
        seed=seed,
        workers=workers,
        planner=workload.make_planner(),
        round_budget=workload.round_budget,
        tracer=tracer,
    ) as engine:
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        # Deferred tenants stretch the drain well past the batch count;
        # deficit-round-robin also needs warm-up ticks while credit accrues.
        max_ticks = 40 * max(len(trace.batches) for trace in traces) + 100
        summary = engine.run_until_drained(max_ticks=max_ticks)
        engine.verify()

        applied = {
            name: engine.tenant_summary(name).total_updates
            for name in engine.tenant_names()
        }
        conserved = applied == submitted
        budget = workload.round_budget
        budget_ok = budget is None or all(
            tick.rounds <= budget for tick in engine.ticks
        )
        latencies = [
            latency
            for per_tenant in batch_latencies(engine.ticks).values()
            for latency in per_tenant
        ]
        if not latencies:
            raise GraphError("scheduler run served no batches")

        snapshots = {
            name: engine.tenant_service(name).dynamic.snapshot()
            for name in engine.tenant_names()
        }
        bounds = {
            name: arboricity_bounds(snapshot, exact_density=False)
            for name, snapshot in snapshots.items()
        }
        proper = all(
            engine.tenant_service(name).coloring.is_proper()
            for name in engine.tenant_names()
        )
        rounds_parallel = summary.total_rounds
        rounds_sequential = sum(tick.sequential_rounds for tick in engine.ticks)

        row = ExperimentRow(
            workload=workload.describe(),
            num_vertices=sum(s.num_vertices for s in snapshots.values()),
            num_edges=sum(s.num_edges for s in snapshots.values()),
            arboricity_lower=max(b.lower for b in bounds.values()),
            arboricity_upper=max(b.upper for b in bounds.values()),
        )
        row.metrics.update(
            {
                "tenants": float(workload.num_tenants),
                "policy": workload.policy,
                "budget": "∞" if budget is None else float(budget),
                "ticks": float(len(engine.ticks)),
                "updates": float(summary.total_updates),
                "served": float(summary.total_served),
                "deferred": float(summary.total_deferred),
                "max_backlog": float(summary.max_backlog_updates),
                "tail_latency": float(max(latencies)),
                "mean_latency": sum(latencies) / len(latencies),
                "rounds_parallel": float(rounds_parallel),
                "rounds_sequential": float(rounds_sequential),
                "budget_ok": 1.0 if budget_ok else 0.0,
                "conserved": 1.0 if conserved else 0.0,
                "proper": 1.0 if proper else 0.0,
                "wall_clock_s": summary.total_wall_clock_s,
            }
        )
    return row
