"""Experiment harness: run one algorithm on one workload and collect a row.

Every experiment (E1–E7) produces rows with a common core — workload
description, arboricity bounds, round counts, quality metrics — so a single
harness covers all of them; per-experiment extras are added by the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.validators import (
    validate_coloring_quality,
    validate_layer_decay,
    validate_orientation_quality,
    validate_round_complexity,
)
from repro.baselines.be_mpc import barenboim_elkin_in_mpc
from repro.baselines.glm19 import glm19_orientation
from repro.baselines.greedy import degeneracy_order_coloring, greedy_delta_coloring
from repro.core.coloring import color
from repro.core.orientation import orient
from repro.experiments.workloads import Workload
from repro.graph.arboricity import arboricity_bounds
from repro.graph.graph import Graph


@dataclass
class ExperimentRow:
    """One measured row of an experiment table."""

    workload: str
    num_vertices: int
    num_edges: int
    arboricity_lower: int
    arboricity_upper: int
    metrics: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Flattened dictionary for the reporting layer."""
        base: dict[str, object] = {
            "workload": self.workload,
            "n": self.num_vertices,
            "m": self.num_edges,
            "lambda_lo": self.arboricity_lower,
            "lambda_hi": self.arboricity_upper,
        }
        base.update(self.metrics)
        return base


def _base_row(workload: Workload, graph: Graph, exact_density: bool = False) -> ExperimentRow:
    bounds = arboricity_bounds(graph, exact_density=exact_density)
    return ExperimentRow(
        workload=workload.describe(),
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        arboricity_lower=bounds.lower,
        arboricity_upper=bounds.upper,
    )


def run_orientation_experiment(
    workload: Workload,
    delta: float = 0.5,
    seed: int = 0,
    exact_density: bool = False,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """E1: run Theorem 1.1 on a workload and record quality/round metrics.

    ``workers`` fans the large-λ Lemma 2.1 parts out through the superstep
    engine; results are identical for any worker count.  ``tracer`` (a
    :class:`repro.obs.Tracer`, optional) records host-side spans without
    affecting any result.
    """
    graph = workload.materialize()
    row = _base_row(workload, graph, exact_density=exact_density)
    run = orient(graph, delta=delta, seed=seed, workers=workers, tracer=tracer)
    quality = validate_orientation_quality(
        run.orientation, row.arboricity_upper, graph.num_vertices
    )
    rounds_check = validate_round_complexity(run.rounds, graph.num_vertices)
    row.metrics.update(
        {
            "max_outdegree": float(run.max_outdegree),
            "outdegree_bound": quality.allowed,
            "outdegree_ok": 1.0 if quality.passed else 0.0,
            "rounds": float(run.rounds),
            "rounds_bound": rounds_check.allowed,
            "rounds_ok": 1.0 if rounds_check.passed else 0.0,
            "max_degree": float(graph.max_degree()),
            "edge_partitioned": 1.0 if run.used_edge_partitioning else 0.0,
        }
    )
    if run.hpartition is not None:
        decay = validate_layer_decay(run.hpartition)
        row.metrics["layer_decay_ok"] = 1.0 if decay.passed else 0.0
        row.metrics["num_layers"] = float(run.hpartition.num_layers)
    return row


def run_coloring_experiment(
    workload: Workload,
    delta: float = 0.5,
    seed: int = 0,
    exact_density: bool = False,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """E2: run Theorem 1.2 on a workload, with the centralised baselines alongside.

    ``workers`` fans the large-λ Lemma 2.2 vertex-partition parts out through
    the superstep engine (exactly like E1's orientation runner); results are
    identical for any worker count.
    """
    graph = workload.materialize()
    row = _base_row(workload, graph, exact_density=exact_density)
    run = color(graph, delta=delta, seed=seed, workers=workers, tracer=tracer)
    quality = validate_coloring_quality(run.coloring, row.arboricity_upper, graph.num_vertices)
    rounds_check = validate_round_complexity(run.rounds, graph.num_vertices)
    delta_baseline = greedy_delta_coloring(graph)
    degeneracy_baseline = degeneracy_order_coloring(graph)
    row.metrics.update(
        {
            "colors": float(run.num_colors),
            "palette": float(run.palette_size),
            "colors_bound": quality.allowed,
            "colors_ok": 1.0 if quality.passed else 0.0,
            "proper": 1.0 if run.coloring.is_proper() else 0.0,
            "rounds": float(run.rounds),
            "rounds_ok": 1.0 if rounds_check.passed else 0.0,
            "greedy_delta_colors": float(delta_baseline.num_colors()),
            "degeneracy_colors": float(degeneracy_baseline.num_colors()),
            "max_degree": float(graph.max_degree()),
        }
    )
    return row


def run_round_scaling_experiment(
    workload: Workload,
    delta: float = 0.5,
    seed: int = 0,
    workers: int = 1,
    tracer=None,
) -> ExperimentRow:
    """E3: round counts of ours vs GLM19-style vs LOCAL-in-MPC on one workload."""
    graph = workload.materialize()
    row = _base_row(workload, graph)
    arboricity = row.arboricity_upper
    ours = orient(graph, delta=delta, seed=seed, workers=workers, tracer=tracer)
    glm = glm19_orientation(graph, arboricity=arboricity, delta=delta)
    be = barenboim_elkin_in_mpc(graph, arboricity=arboricity, delta=delta)
    row.metrics.update(
        {
            "rounds_ours": float(ours.rounds),
            "rounds_glm19": float(glm.rounds),
            "rounds_local": float(be.rounds),
            "outdeg_ours": float(ours.max_outdegree),
            "outdeg_glm19": float(glm.max_outdegree),
            "outdeg_local": float(be.max_outdegree),
        }
    )
    return row


def sweep(
    workloads: list[Workload],
    runner: Callable[[Workload], ExperimentRow],
) -> list[ExperimentRow]:
    """Apply a runner to every workload, returning the result rows."""
    return [runner(workload) for workload in workloads]
