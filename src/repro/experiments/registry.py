"""Experiment registry — the per-experiment index of DESIGN.md, in code.

Each entry names an experiment (E1–E7), the claim it reproduces, the workloads
it sweeps, and the benchmark module that regenerates its table.  The benchmark
modules import :func:`get_experiment` so the definitions live in exactly one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.workloads import (
    Workload,
    dense_sweep,
    forests_sweep,
    power_law_sweep,
    standard_suite,
    union_forest_sweep,
)
from repro.stream.workloads import multi_tenant_suite, scheduler_suite, streaming_suite


@dataclass(frozen=True)
class ExperimentSpec:
    """Description of one experiment in the reproduction."""

    experiment_id: str
    claim: str
    bench_module: str
    workloads: tuple[Workload, ...]
    notes: str = ""
    columns: tuple[str, ...] = field(default_factory=tuple)


def _e1_workloads() -> tuple[Workload, ...]:
    return tuple(standard_suite(seed=1))


def _e2_workloads() -> tuple[Workload, ...]:
    return tuple(standard_suite(seed=2))


def _e3_workloads() -> tuple[Workload, ...]:
    return tuple(
        union_forest_sweep(sizes=(256, 512, 1024, 2048, 4096), arboricities=(4,), seed=3)
    )


def _e4_workloads() -> tuple[Workload, ...]:
    return tuple(dense_sweep(sizes=(400, 800), seed=4))


def _e5_workloads() -> tuple[Workload, ...]:
    return tuple(union_forest_sweep(sizes=(512, 2048), arboricities=(2, 4), seed=5))


def _e6_workloads() -> tuple[Workload, ...]:
    return tuple(union_forest_sweep(sizes=(256, 1024, 4096), arboricities=(4,), seed=6))


def _e7_workloads() -> tuple[Workload, ...]:
    return tuple(forests_sweep(sizes=(256, 1024, 4096), seed=7))


def _s1_workloads() -> tuple:
    # StreamWorkload duck-types Workload (name/family/size/seed/params,
    # materialize/describe); its materialize() yields a StreamTrace instead of
    # a Graph, which the S1 runner consumes.
    return tuple(streaming_suite(seed=8))


# S2 sweeps batch size at a fixed insert budget: every workload performs
# _S2_TOTAL_INSERTS window insertions (plus the matching expiries), only the
# batching changes — so amortised rounds/update is directly comparable.
_S2_TOTAL_INSERTS = 3200
_S2_BATCH_SIZES = (25, 50, 100, 200, 400)


def _s2_workloads() -> tuple:
    from repro.stream.workloads import StreamWorkload

    return tuple(
        StreamWorkload(
            name=f"window-512-b{batch_size}",
            family="sliding_window",
            num_vertices=512,
            seed=9,
            params=(
                ("window", 512),
                ("num_batches", _S2_TOTAL_INSERTS // batch_size),
                ("batch_size", batch_size),
            ),
        )
        for batch_size in _S2_BATCH_SIZES
    )


_REGISTRY: dict[str, ExperimentSpec] = {
    "E1": ExperimentSpec(
        experiment_id="E1",
        claim="Theorem 1.1: orientation with max outdegree O(λ log log n) in poly(log log n) rounds",
        bench_module="benchmarks/bench_e1_orientation.py",
        workloads=_e1_workloads(),
        columns=("workload", "n", "m", "lambda_hi", "max_degree", "max_outdegree", "outdegree_bound", "rounds"),
    ),
    "E2": ExperimentSpec(
        experiment_id="E2",
        claim="Theorem 1.2: proper coloring with O(λ log log n) colors in poly(log log n) rounds",
        bench_module="benchmarks/bench_e2_coloring.py",
        workloads=_e2_workloads(),
        columns=("workload", "n", "lambda_hi", "max_degree", "colors", "colors_bound", "greedy_delta_colors", "degeneracy_colors", "rounds"),
    ),
    "E3": ExperimentSpec(
        experiment_id="E3",
        claim="Round-complexity separation: ours (poly log log n) vs GLM19 (√log n) vs LOCAL-in-MPC (log n)",
        bench_module="benchmarks/bench_e3_round_scaling.py",
        workloads=_e3_workloads(),
        columns=("workload", "n", "rounds_ours", "rounds_glm19", "rounds_local", "outdeg_ours", "outdeg_glm19", "outdeg_local"),
    ),
    "E4": ExperimentSpec(
        experiment_id="E4",
        claim="Lemmas 2.1/2.2: random edge/vertex partitioning reduces per-part arboricity to O(log n)",
        bench_module="benchmarks/bench_e4_partitioning.py",
        workloads=_e4_workloads(),
        columns=("workload", "n", "lambda_hi", "parts", "max_part_arboricity_edges", "max_part_arboricity_vertices", "log_n_budget"),
    ),
    "E5": ExperimentSpec(
        experiment_id="E5",
        claim="Lemma 3.15: complete layering with out-degree O(k log log n) and geometric layer decay",
        bench_module="benchmarks/bench_e5_layer_decay.py",
        workloads=_e5_workloads(),
        columns=("workload", "n", "k", "num_layers", "max_out_degree", "out_degree_bound", "decay_ok"),
    ),
    "E6": ExperimentSpec(
        experiment_id="E6",
        claim="Claims 3.5/3.11: local memory O(n^δ + B), global memory O(nB + m)",
        bench_module="benchmarks/bench_e6_memory.py",
        workloads=_e6_workloads(),
        columns=("workload", "n", "S", "peak_machine_words", "local_bound", "peak_global_words", "global_bound"),
    ),
    "E7": ExperimentSpec(
        experiment_id="E7",
        claim="Forests (λ=1): general pipeline vs the forest-specialised baseline [GLM+23-style]",
        bench_module="benchmarks/bench_e7_forests.py",
        workloads=_e7_workloads(),
        columns=("workload", "n", "outdeg_general", "outdeg_forest", "colors_general", "colors_forest", "rounds_general", "rounds_forest"),
    ),
    "S1": ExperimentSpec(
        experiment_id="S1",
        claim="Streaming: incremental orientation/coloring maintenance keeps max outdegree O(λ) under edge churn, ≥5x faster than recompute-per-batch",
        bench_module="benchmarks/bench_s1_streaming.py",
        workloads=_s1_workloads(),
        notes="Dynamic extension beyond the paper: Brodal–Fagerberg flip paths with a Theorem 1.1 fallback rebuild.",
        columns=("workload", "n", "m", "lambda_hi", "updates", "flips", "recolors", "rebuilds", "rounds", "final_max_outdegree", "outdegree_bound", "final_colors", "proper"),
    ),
    "S3": ExperimentSpec(
        experiment_id="S3",
        claim="Multi-tenant streaming: N tenants multiplexed on one engine; per-tenant results identical to standalone services while aggregate rounds charge parallel ticks as max-over-tenants",
        bench_module="benchmarks/bench_s3_multi_tenant.py",
        workloads=tuple(multi_tenant_suite(seed=10)),
        notes="Ticks fold tenant sub-ledgers with merge_parallel; round_savings = sequential-sum / parallel-max, approaching the tenant count on balanced fleets.",
        columns=("workload", "tenants", "ticks", "updates", "flips", "rebuilds", "rounds_parallel", "rounds_sequential", "round_savings", "max_outdegree", "colors", "proper", "wall_clock_s"),
    ),
    "S4": ExperimentSpec(
        experiment_id="S4",
        claim="Round-budgeted scheduling: top-k-backlog / deficit-round-robin keep per-tick folded rounds within the budget while conserving every update; tail latency and backlog trade against the budget",
        bench_module="benchmarks/bench_s4_scheduler.py",
        workloads=tuple(scheduler_suite(seed=11)),
        notes="Skewed fleet (2 bursty, 6 steady); unserved tenants' batches carry over intact; served tenants stay byte-identical to standalone runs.",
        columns=("workload", "tenants", "policy", "budget", "ticks", "updates", "served", "deferred", "max_backlog", "tail_latency", "rounds_parallel", "rounds_sequential", "budget_ok", "conserved", "proper", "wall_clock_s"),
    ),
    "S2": ExperimentSpec(
        experiment_id="S2",
        claim="Streaming batching: at a fixed update budget, amortised MPC rounds/update fall ~1/batch_size while maintained quality stays flat",
        bench_module="benchmarks/bench_s2_batch_size.py",
        workloads=_s2_workloads(),
        notes="Windowed (turnstile) trace; batch delivery is one communication round regardless of size until the batch outgrows S.",
        columns=("workload", "n", "batch_size", "batches", "updates", "rounds", "rounds_per_update", "flips", "amortised_flips", "rebuilds", "final_max_outdegree"),
    ),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (e.g. ``"E1"``)."""
    return _REGISTRY[experiment_id]


def all_experiments() -> list[ExperimentSpec]:
    """All registered experiments, in id order."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def get_runner(experiment_id: str):
    """The harness runner for an experiment id, for CLI-driven sweeps.

    Every returned callable has the uniform signature
    ``runner(workload, delta=..., seed=..., workers=..., tracer=...) -> ExperimentRow``.
    Experiments whose tables are produced by bespoke benchmark code rather
    than a harness runner (E4–E7) raise ``KeyError`` — run their
    ``bench_module`` instead.  Imported lazily so importing the registry
    stays cheap and dependency-light.
    """
    from repro.experiments.harness import (
        run_coloring_experiment,
        run_orientation_experiment,
        run_round_scaling_experiment,
    )
    from repro.experiments.streaming import (
        run_batch_size_experiment,
        run_multi_tenant_experiment,
        run_scheduler_experiment,
        run_streaming_experiment,
    )

    runners = {
        "E1": run_orientation_experiment,
        "E2": run_coloring_experiment,
        "E3": run_round_scaling_experiment,
        "S1": run_streaming_experiment,
        "S2": run_batch_size_experiment,
        "S3": run_multi_tenant_experiment,
        "S4": run_scheduler_experiment,
    }
    if experiment_id not in runners:
        raise KeyError(
            f"experiment {experiment_id!r} has no harness runner; regenerate its "
            f"table via {get_experiment(experiment_id).bench_module}"
        )
    return runners[experiment_id]
