"""Experiment definitions, workloads and the measurement harness."""

from repro.experiments.harness import (
    ExperimentRow,
    run_coloring_experiment,
    run_orientation_experiment,
    run_round_scaling_experiment,
    sweep,
)
from repro.experiments.registry import ExperimentSpec, all_experiments, get_experiment
from repro.experiments.streaming import run_streaming_experiment
from repro.experiments.workloads import (
    Workload,
    dense_sweep,
    forests_sweep,
    power_law_sweep,
    standard_suite,
    union_forest_sweep,
)

__all__ = [
    "ExperimentRow",
    "ExperimentSpec",
    "Workload",
    "all_experiments",
    "dense_sweep",
    "forests_sweep",
    "get_experiment",
    "power_law_sweep",
    "run_coloring_experiment",
    "run_orientation_experiment",
    "run_round_scaling_experiment",
    "run_streaming_experiment",
    "standard_suite",
    "sweep",
    "union_forest_sweep",
]
