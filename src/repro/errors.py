"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause.  The MPC simulator
raises dedicated subclasses when the paper's resource constraints are violated
(local memory, per-round communication, or global memory), which lets the test
suite assert that the algorithms respect the model rather than merely claiming
so in documentation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for malformed graph inputs (bad vertex ids, duplicate edges...)."""


class InvalidOrientationError(ReproError):
    """Raised when an orientation does not cover the edge set or is malformed."""


class InvalidColoringError(ReproError):
    """Raised when a coloring is not proper or misses vertices."""


class InvalidLayeringError(ReproError):
    """Raised when a layer assignment violates its declared out-degree bound."""


class ParameterError(ReproError):
    """Raised when algorithm parameters violate the paper's preconditions."""


class MPCModelError(ReproError):
    """Base class for violations of the MPC model constraints."""


class MemoryLimitExceeded(MPCModelError):
    """A machine exceeded its local memory capacity ``S`` (in words)."""

    def __init__(self, machine_id: int, used_words: int, capacity_words: int) -> None:
        self.machine_id = machine_id
        self.used_words = used_words
        self.capacity_words = capacity_words
        super().__init__(
            f"machine {machine_id} used {used_words} words, "
            f"exceeding its capacity of {capacity_words} words"
        )

    def __reduce__(self):
        # Multi-argument __init__: the default (cls, self.args) round-trip
        # breaks when a process-backend worker ships this error back.
        return (type(self), (self.machine_id, self.used_words, self.capacity_words))


class CommunicationLimitExceeded(MPCModelError):
    """A machine sent or received more than ``S`` words in a single round."""

    def __init__(self, machine_id: int, direction: str, volume_words: int, capacity_words: int) -> None:
        self.machine_id = machine_id
        self.direction = direction
        self.volume_words = volume_words
        self.capacity_words = capacity_words
        super().__init__(
            f"machine {machine_id} {direction} {volume_words} words in one round, "
            f"exceeding the per-round cap of {capacity_words} words"
        )

    def __reduce__(self):
        return (
            type(self),
            (self.machine_id, self.direction, self.volume_words, self.capacity_words),
        )


class GlobalMemoryExceeded(MPCModelError):
    """The total memory across all machines exceeded the configured budget."""

    def __init__(self, used_words: int, budget_words: int) -> None:
        self.used_words = used_words
        self.budget_words = budget_words
        super().__init__(
            f"global memory use of {used_words} words exceeds the budget of {budget_words} words"
        )

    def __reduce__(self):
        return (type(self), (self.used_words, self.budget_words))


class QuotaExceededError(MPCModelError):
    """A quota-capped sub-ledger (one tenant of a multiplexed service) exceeded
    its provisioned memory quota.

    Raised either *before* a batch is applied (the engine's projected-growth
    admission check — the batch stays queued) or at fold time (the backstop:
    a rebuild grew the tenant past its cap mid-batch).  Either way the tenant
    is left internally consistent and quarantined; sibling tenants are
    unaffected.
    """

    def __init__(self, used_words: int, quota_words: int, scope: str = "sub-ledger") -> None:
        self.used_words = used_words
        self.quota_words = quota_words
        self.scope = scope
        super().__init__(
            f"{scope} needs {used_words} words, exceeding its memory quota "
            f"of {quota_words} words"
        )

    def __reduce__(self):
        return (type(self), (self.used_words, self.quota_words, self.scope))


class SimulationError(ReproError):
    """Raised when the simulator is driven through an invalid sequence of calls."""


class LifecycleError(ReproError):
    """A tenant lifecycle transition that the state machine does not allow.

    The resident engine models every tenant as ``provisioning → active →
    quarantined → lifted → retired`` with an explicit transition table;
    anything off that graph (lifting a retired tenant, retiring twice, ...)
    raises this instead of silently mutating state.
    """

    def __init__(self, tenant: str, from_state: str, to_state: str) -> None:
        self.tenant = tenant
        self.from_state = from_state
        self.to_state = to_state
        super().__init__(
            f"tenant {tenant!r} cannot transition {from_state} -> {to_state}"
        )

    def __reduce__(self):
        return (type(self), (self.tenant, self.from_state, self.to_state))


class CheckpointError(ReproError):
    """A checkpoint file could not be read, validated, or restored.

    Raised for missing/truncated/corrupted snapshot files, format or version
    mismatches, checksum failures, and restored state whose fingerprint does
    not match the one recorded at checkpoint time.  Restore is all-or-nothing:
    when this is raised no partially-built engine escapes (anything created is
    closed before re-raising), and the engine that *wrote* the checkpoint is
    never touched by a failed restore.
    """


class WorkerCrashError(ReproError):
    """A process-backend worker died mid-superstep (killed, OOM, hard crash).

    The executor discards the broken pool when raising this, so the next
    parallel map respawns a fresh set of workers — published shared-memory
    shards live in the parent and survive the crash untouched.  The failed
    superstep itself is lost; callers with atomic batch semantics (the
    streaming service) leave their state exactly as before the call.
    """

    def __init__(self, backend: str, detail: str = "") -> None:
        self.backend = backend
        self.detail = detail
        suffix = f": {detail}" if detail else ""
        super().__init__(
            f"a {backend}-backend worker died mid-superstep{suffix}; "
            f"the pool was discarded and will respawn on the next parallel map"
        )

    def __reduce__(self):
        return (type(self), (self.backend, self.detail))


class StaleShardError(ReproError):
    """A task tried to read a shared-memory shard generation that was retired.

    Raised on either side of the registry: the owner rejects handles whose
    key was republished or invalidated (e.g. after a dynamic-graph
    compaction), and a worker attaching a retired segment finds it unlinked.
    Catching it and re-fetching a fresh handle is always safe — the data of
    the *current* generation is unaffected.
    """

    def __init__(self, key: str, generation: int, reason: str) -> None:
        self.key = key
        self.generation = generation
        self.reason = reason
        super().__init__(
            f"shard {key!r} generation {generation} is stale ({reason}); "
            f"republish and ship a fresh handle"
        )

    def __reduce__(self):
        return (type(self), (self.key, self.generation, self.reason))
