"""The MPC cluster simulator.

The simulator is the reproduction's substitute for a physical MapReduce /
Spark deployment (see DESIGN.md §2).  It models the theoretical MPC machine
exactly:

* the cluster has ``M`` machines, each with ``S`` words of local memory;
* computation proceeds in synchronous rounds;
* per round, each machine may send and receive at most ``S`` words;
* the primary cost measure is the number of rounds.

Algorithms use the cluster in two ways:

1. **Explicit message rounds** — :meth:`MPCCluster.communication_round` takes
   the multiset of messages exchanged in a round (keyed by integer keys whose
   machine placement is determined by :class:`~repro.mpc.config.MPCConfig`),
   verifies the per-machine send/receive caps, and increments the round
   counter.  This is used wherever the data movement matters for the memory
   argument (graph exponentiation, gathering tree views, layer broadcasts).

2. **Primitive charges** — :meth:`MPCCluster.charge_rounds` charges a constant
   number of rounds for a standard primitive (sorting, aggregation, broadcast
   trees) whose constant-round MPC implementations are classical
   [KSV10b, GSZ11, ASS+18] and which the paper likewise invokes as black boxes
   (Claim 3.5, Claim 3.11, Lemma 4.1).  The charged constants are documented
   in :mod:`repro.mpc.primitives`.

The simulator performs the data placement for real — each key lives on a
specific machine and its storage is accounted there — so violating the
``n^δ`` local-memory constraint raises an exception rather than going
unnoticed.

**Dynamic update batches** (:mod:`repro.stream`) extend the same accounting
to streaming workloads.  A batch of edge insertions/deletions is charged as
one communication round whose messages route each 2-word update between the
machines owning the edge's endpoints (oversized batches split into
``⌈volume/S⌉`` rounds exactly like any other exchange).  The incremental
repair work inside a batch is charged through the two standard channels
above: flip-path repair and palette repair are each one aggregation-primitive
round per batch in which they occur (labels ``stream:flip-repair`` /
``stream:recolor``), journal compaction is one sorting-primitive round per
occurrence (``stream:compact``), and a quality-fallback rebuild simply runs
the full Theorem 1.1 pipeline against the *same* cluster, so its rounds and
memory land in this ledger (labels ``stream:rebuild:*`` plus the static
pipeline's own labels).  Extending the model with a new dynamic primitive
means choosing one of these channels: real data movement goes through
:meth:`MPCCluster.communication_round`; classical constant-round plumbing
goes through :meth:`MPCCluster.charge_rounds` with a descriptive label.

**Parallel task fan-out** (:mod:`repro.engine`) adds a third channel for
work that the model executes *simultaneously* — the Lemma 2.1 edge-partition
parts, vertex-disjoint flip-repair groups.  Charging such tasks sequentially
on the shared ledger would overstate rounds by a factor of the task count;
instead each task records into its own **sub-ledger**: :meth:`MPCCluster.fork`
creates an empty child cluster with identical provisioning, the task runs
against the child (rounds, communication, and storage all land there — forks
cross process boundaries freely), and :meth:`MPCCluster.merge_parallel` folds
the children back into the parent with the model's semantics:

* **rounds = max** over the parallel tasks (round ``i`` of every task is one
  superstep; the superstep count is the longest task's); any subsequent
  combination work — e.g. the balanced orientation-merge tree — is charged
  separately on the parent (label ``merge-orientations``);
* per-superstep **communication volume = sum** over the tasks, per-machine
  send/receive peaks = max;
* **memory = sum** of the children's peaks (parallel tasks are co-resident
  on the same machine fleet).

The fold itself lives on :meth:`repro.mpc.metrics.RoundStats.merge_parallel`;
the engine depends only on the :class:`repro.engine.ledger.SubLedger`
protocol that ``fork``/``merge_parallel`` implement.

**Multi-tenant sub-ledgers** (:class:`repro.stream.engine.StreamEngine`)
stretch the fork/merge protocol from per-task to per-*tenant*.  Each hosted
tenant owns one **persistent** fork for its whole lifetime — created by
``fork(config=MPCConfig.for_graph(tenant_initial))`` so the tenant is
provisioned for its own input and its per-batch charges are byte-identical
to a standalone service — and every engine *tick* resolves one batch per
tenant as parallel tasks.  The shared ledger is charged per tick by folding
the tenants' **tick deltas** (:meth:`repro.mpc.metrics.RoundStats.since` of
the pre-tick round mark) with ``merge_parallel``: aggregate rounds for the
tick are the *max* over the tenants served in it (the tick is one run of
supersteps executed by all tenants simultaneously), per-superstep volume is
the sum, and memory folds as the sum of the tenants' lifetime peaks —
tenants are co-resident for the whole tick, so their storage adds even when
a tenant is idle in this particular tick.  Rounds a tenant charges *outside*
any tick — its initial orientation build at registration — fold into the
shared ledger right at registration instead: tenants register one after
another, so construction is sequential (rounds add) and tick folds carry
batch work only.

**Budgeted ticks and quota-capped sub-ledgers** (PR 5).  Two scheduling
controls refine the multi-tenant model without changing the fold arithmetic:

* *Round budgets.*  A tick's folded charge is the max over the served
  tenants, but the cluster's **work** for the tick is their sum (the
  ``sequential_rounds`` quantity).  :mod:`repro.stream.scheduler` caps that
  sum: a :class:`~repro.stream.scheduler.TickPlanner` admits tenants, in
  policy order, while the sum of their *estimated* per-batch round costs
  (:func:`~repro.stream.scheduler.estimate_batch_rounds`, an upper bound on
  any rebuild-free batch delta) fits the budget; everyone else is deferred
  with their batches carried over intact.  A tick that serves nobody (budget
  exhausted, or no deficit-round-robin tenant eligible yet) folds an *empty*
  superstep — zero rounds charged, memory co-residency still observed —
  which :meth:`repro.mpc.metrics.RoundStats.merge_parallel` guarantees.
* *Memory quotas.*  ``fork(config=..., memory_quota=Q)`` provisions a
  tenant's persistent sub-ledger with a cap on its **global memory peak**
  (the sum-of-peaks term the tenant contributes to every tick fold).
  :meth:`MPCCluster.check_quota` raises
  :class:`~repro.errors.QuotaExceededError` on breach, and
  :meth:`MPCCluster.merge_parallel` runs the check on every branch that is a
  quota-capped fork *before* folding — so a breach is detected at the fold
  boundary, never silently absorbed into the parent's sum.  The engine
  additionally rejects a batch *before* applying it when the projected
  post-batch graph size would breach (keeping the offending batch intact in
  its queue); the fold-time check is the backstop for growth an admission
  estimate cannot see (e.g. a rebuild's working set).

**Resident workers and shared-memory shards (PR 6).**  How a parallel task
physically executes is invisible to this ledger.  The engine's
:class:`~repro.engine.pool.WorkerPool` keeps process workers resident and
publishes graph shards into :mod:`multiprocessing.shared_memory` segments
(:mod:`repro.engine.shm`), so a host superstep ships only a shard-handle
descriptor + deltas instead of re-pickling its inputs — but that is *host*
shipping cost, not simulated MPC communication.  Charging is unchanged: a
task records into its fork exactly what the algorithm's rounds move between
simulated machines, whether the task ran serial, threaded, or in a resident
worker reading shared memory, and ``merge_parallel`` folds the forks with
the same max/sum semantics above.  The determinism contract (same seed ⇒
identical rounds for any worker count or backend) is what keeps the fold's
inputs — and therefore every number in this module — reproducible.

**Host-side observability (PR 7).**  The tracing layer in :mod:`repro.obs`
records *wall-clock* spans of the host process (how long a tick, batch, or
kernel fan-out actually took to execute) and is **disjoint from this
ledger**: a span's duration is real time on the simulating machine, while a
:class:`~repro.mpc.metrics.RoundRecord` is a synchronous round of the
*simulated* MPC cluster.  Spans may *annotate* themselves with the ledger
delta charged while they were open (read-only ``RoundStats`` marks — see
``repro.obs.tracer``), which is how a timeline shows both clocks side by
side, but tracing never writes to the ledger, never consumes randomness, and
never changes what an algorithm computes.  ``MPCCluster.instrument`` attaches
a tracer for aggregate round/volume counters; forks never inherit it (they
cross the pickle boundary), so instrumentation stays a parent-process-only
observation.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

from repro.errors import (
    GlobalMemoryExceeded,
    MemoryLimitExceeded,
    QuotaExceededError,
    SimulationError,
)
from repro.mpc.config import MPCConfig
from repro.mpc.machine import Machine
from repro.mpc.metrics import RoundStats
from repro.obs.tracer import NULL_TRACER

Message = tuple[int, int, int]
"""A message is ``(source_key, destination_key, size_in_words)``."""


class MPCCluster:
    """A simulated MPC cluster enforcing the model's resource constraints.

    Parameters
    ----------
    config:
        Cluster provisioning (``n``, ``m``, ``δ``, constants).
    enforce_limits:
        When ``True`` (default) the simulator raises
        :class:`~repro.errors.MemoryLimitExceeded` /
        :class:`~repro.errors.CommunicationLimitExceeded` /
        :class:`~repro.errors.GlobalMemoryExceeded` on violations.  Tests use
        ``False`` to *measure* violations instead of aborting.
    """

    def __init__(
        self,
        config: MPCConfig,
        enforce_limits: bool = True,
        enforce_global_memory: bool = False,
        memory_quota: int | None = None,
    ) -> None:
        if memory_quota is not None and memory_quota < 1:
            raise SimulationError("memory_quota must be at least 1 word (or None)")
        self.config = config
        self.enforce_limits = enforce_limits
        self.enforce_global_memory = enforce_global_memory
        self.memory_quota = memory_quota
        self.stats = RoundStats()
        self._machines: dict[int, Machine] = {}
        self._round_active: list[Machine] = []
        self._num_machines = config.num_machines()
        self._capacity = config.words_per_machine
        self._global_budget = config.global_memory_words()
        self._tracer = NULL_TRACER

    def instrument(self, tracer) -> None:
        """Attach a tracer for aggregate round/volume counters.

        Observation-only (see the module docstring): the tracer reads what
        the ledger records, never the other way around.  Forks do not
        inherit it — they cross the pickle boundary into workers.
        """
        self._tracer = NULL_TRACER if tracer is None else tracer

    def __getstate__(self) -> dict:
        # Tracers hold locks and thread-local state; a pickled cluster
        # (a fork travelling to a worker) must never carry one.
        state = self.__dict__.copy()
        state["_tracer"] = NULL_TRACER
        return state

    # ------------------------------------------------------------------ #
    # Checkpoint seam
    # ------------------------------------------------------------------ #

    def ledger_state(self) -> dict:
        """The cluster as a JSON-serializable snapshot (checkpoint seam).

        Per-machine round counters are deliberately *not* captured:
        :meth:`communication_round` resets every participating machine's
        counters at the start of the round, so a restored cluster whose
        machines start with zeroed counters and an empty active set charges
        future rounds identically.
        """
        return {
            "config": {
                "num_vertices": self.config.num_vertices,
                "num_edges": self.config.num_edges,
                "delta": self.config.delta,
                "memory_constant": self.config.memory_constant,
                "global_memory_factor": self.config.global_memory_factor,
            },
            "enforce_limits": bool(self.enforce_limits),
            "enforce_global_memory": bool(self.enforce_global_memory),
            "memory_quota": self.memory_quota,
            "stats": self.stats.state_dict(),
            "machines": [
                [
                    machine.machine_id,
                    machine.stored_words,
                    machine.peak_stored_words,
                    dict(machine.stored_by_tag),
                ]
                for machine in sorted(
                    self._machines.values(), key=lambda m: m.machine_id
                )
            ],
        }

    @classmethod
    def from_ledger_state(cls, state: dict) -> "MPCCluster":
        """Rebuild a cluster from :meth:`ledger_state` output, exactly."""
        config = MPCConfig(**state["config"])
        cluster = cls(
            config,
            enforce_limits=state["enforce_limits"],
            enforce_global_memory=state["enforce_global_memory"],
            memory_quota=state["memory_quota"],
        )
        cluster.stats = RoundStats.from_state(state["stats"])
        for machine_id, stored, peak, tags in state["machines"]:
            machine = Machine(
                machine_id=machine_id, capacity_words=cluster._capacity
            )
            machine.stored_words = stored
            machine.peak_stored_words = peak
            machine.stored_by_tag = {str(tag): words for tag, words in tags.items()}
            cluster._machines[machine_id] = machine
        return cluster

    # ------------------------------------------------------------------ #
    # Machine access / storage accounting
    # ------------------------------------------------------------------ #

    @property
    def num_machines(self) -> int:
        """Number of machines in the cluster."""
        return self._num_machines

    @property
    def words_per_machine(self) -> int:
        """Local memory capacity ``S`` of each machine."""
        return self._capacity

    def machine_for_key(self, key: int) -> Machine:
        """The machine responsible for an integer key (vertices, edges, tree ids)."""
        machine_id = self.config.machine_of(key)
        machine = self._machines.get(machine_id)
        if machine is None:
            machine = Machine(machine_id=machine_id, capacity_words=self._capacity)
            self._machines[machine_id] = machine
        return machine

    def machine(self, machine_id: int) -> Machine:
        """Machine by explicit id (creating its record lazily)."""
        if not 0 <= machine_id < self._num_machines:
            raise SimulationError(f"machine id {machine_id} out of range 0..{self._num_machines - 1}")
        machine = self._machines.get(machine_id)
        if machine is None:
            machine = Machine(machine_id=machine_id, capacity_words=self._capacity)
            self._machines[machine_id] = machine
        return machine

    def store_at_key(self, key: int, words: int, tag: str = "data") -> None:
        """Store ``words`` words on the machine owning ``key``."""
        self.machine_for_key(key).store(words, tag=tag, enforce=self.enforce_limits)
        self._observe_memory()

    def release_at_key(self, key: int, words: int, tag: str = "data") -> None:
        """Release ``words`` words on the machine owning ``key``."""
        self.machine_for_key(key).release(words, tag=tag)

    def release_tag_everywhere(self, tag: str) -> None:
        """Drop all storage registered under ``tag`` on every machine."""
        for machine in self._machines.values():
            machine.release_tag(tag)

    def store_spread(self, total_words: int, tag: str = "data") -> None:
        """Store ``total_words`` spread evenly across all machines.

        Models large distributed objects (e.g. the collection of all tree
        views, whose *total* size is bounded by ``O(nB)`` while no single
        machine needs to hold more than its even share plus one object).  The
        even share is enforced against each machine's capacity (honoring
        ``enforce_limits``, like every other store); the global budget check
        still applies through :meth:`_observe_memory`.
        """
        if total_words < 0:
            raise SimulationError("total_words must be non-negative")
        machines = self._num_machines
        share = -(-total_words // machines) if total_words else 0
        remaining = total_words
        for machine_id in range(machines):
            if remaining <= 0:
                break
            chunk = min(share, remaining)
            self.machine(machine_id).store(chunk, tag=tag, enforce=self.enforce_limits)
            remaining -= chunk
        self._observe_memory()

    def restore_spread(self, total_words: int, tag: str = "data") -> None:
        """Replace the spread object registered under ``tag`` in one pass.

        Exactly equivalent to :meth:`release_tag_everywhere` followed by
        :meth:`store_spread` — same final per-machine state, same peak
        updates and capacity enforcement (ascending machine id, first
        offender raises), same single memory observation at the end — but
        fused into one walk over the machine records with the per-machine
        arithmetic inlined.  This is the tick hot path of the streaming
        accounting, which re-registers the live graph at every batch
        boundary; on a 100k-vertex cluster the fused walk is what keeps the
        ledger off the profile.
        """
        if total_words < 0:
            raise SimulationError("total_words must be non-negative")
        machines = self._num_machines
        share = -(-total_words // machines) if total_words else 0
        remaining = total_words
        enforce = self.enforce_limits
        capacity = self._capacity
        records = self._machines
        for machine_id in range(machines):
            chunk = min(share, remaining) if remaining > 0 else 0
            machine = records.get(machine_id)
            if machine is None:
                if chunk == 0:
                    # Nothing stored here before (no record) and nothing to
                    # store now — store_spread would not have materialised
                    # this machine either.
                    continue
                machine = Machine(machine_id=machine_id, capacity_words=capacity)
                records[machine_id] = machine
            remaining -= chunk
            tags = machine.stored_by_tag
            old = tags.pop(tag, 0)
            stored = machine.stored_words - old
            if stored < 0:
                stored = 0
            if chunk:
                stored += chunk
                tags[tag] = chunk
                if stored > machine.peak_stored_words:
                    machine.peak_stored_words = stored
            machine.stored_words = stored
            if chunk and enforce and stored > capacity:
                raise MemoryLimitExceeded(machine_id, stored, capacity)
        self._observe_memory()

    def global_memory_in_use(self) -> int:
        """Total words currently stored across all machines."""
        return sum(machine.stored_words for machine in self._machines.values())

    def peak_machine_memory(self) -> int:
        """Largest per-machine peak storage observed so far."""
        return max((m.peak_stored_words for m in self._machines.values()), default=0)

    def _observe_memory(self) -> None:
        global_words = self.global_memory_in_use()
        self.stats.observe_memory(self.peak_machine_memory(), global_words)
        if self.enforce_global_memory and global_words > self._global_budget:
            raise GlobalMemoryExceeded(global_words, self._global_budget)

    # ------------------------------------------------------------------ #
    # Rounds
    # ------------------------------------------------------------------ #

    def communication_round(
        self,
        messages: Iterable[Message],
        label: str = "round",
        store_tag: Optional[str] = None,
        split_oversized: bool = True,
    ) -> int:
        """Execute one (or more) synchronous rounds exchanging ``messages``.

        Each message ``(source_key, destination_key, words)`` is charged as
        ``words`` outgoing traffic on the machine owning ``source_key`` and
        ``words`` incoming traffic on the machine owning ``destination_key``.
        If ``store_tag`` is given, received words are additionally stored on
        the destination machine under that tag (modelling that the payload is
        kept for later rounds, e.g. learned neighborhood views).

        In the MPC model a machine can move at most ``S`` words per round.
        When the requested exchange would exceed that on some machine, the
        exchange genuinely needs several rounds; with ``split_oversized=True``
        (default) the simulator charges ``⌈max_volume / S⌉`` rounds for the
        exchange instead of failing, which keeps round counts honest.  With
        ``split_oversized=False`` a violation raises
        :class:`~repro.errors.CommunicationLimitExceeded` (used by tests that
        check an exchange fits in exactly one round).

        Returns the number of rounds charged.
        """
        # Only machines touched last round can have non-zero counters, so
        # resetting just those is byte-identical to walking every record —
        # and O(active) instead of O(M) per round on big clusters.
        for machine in self._round_active:
            machine.begin_round()
        round_active: dict[int, Machine] = {}

        total_words = 0
        receive_store: dict[int, int] = {}
        for source_key, destination_key, words in messages:
            if words < 0:
                raise SimulationError("message size must be non-negative")
            source = self.machine_for_key(source_key)
            destination = self.machine_for_key(destination_key)
            round_active[source.machine_id] = source
            round_active[destination.machine_id] = destination
            source.account_send(words, enforce=False)
            destination.account_receive(words, enforce=False)
            total_words += words
            if store_tag is not None:
                receive_store[destination.machine_id] = (
                    receive_store.get(destination.machine_id, 0) + words
                )

        if store_tag is not None:
            for machine_id, words in receive_store.items():
                self.machine(machine_id).store(
                    words, tag=store_tag, enforce=self.enforce_limits and not split_oversized
                )

        self._round_active = list(round_active.values())
        max_sent = max((m.round_sent_words for m in self._round_active), default=0)
        max_received = max((m.round_received_words for m in self._round_active), default=0)
        max_volume = max(max_sent, max_received)
        rounds_needed = 1
        if max_volume > self._capacity:
            if self.enforce_limits and not split_oversized:
                direction = "sent" if max_sent >= max_received else "received"
                offender = max(
                    self._machines.values(),
                    key=lambda m: max(m.round_sent_words, m.round_received_words),
                )
                from repro.errors import CommunicationLimitExceeded

                raise CommunicationLimitExceeded(
                    offender.machine_id, direction, max_volume, self._capacity
                )
            rounds_needed = -(-max_volume // self._capacity)

        self.stats.record_round(label, total_words, max_sent, max_received)
        if self._tracer.enabled:
            self._tracer.metrics.inc("mpc.rounds")
            self._tracer.metrics.inc("mpc.words_sent", total_words)
        if rounds_needed > 1:
            self.charge_rounds(rounds_needed - 1, label=f"{label}:oversized-split")
        self._observe_memory()
        return rounds_needed

    def charge_rounds(self, count: int, label: str) -> None:
        """Charge ``count`` rounds for a standard constant-round primitive.

        The volume of such primitives is bounded by the data they touch, which
        the callers account separately via storage; here we only advance the
        round counter, mirroring how the paper cites [ASS+18] for the
        plumbing.
        """
        if count < 0:
            raise SimulationError("cannot charge a negative number of rounds")
        for _ in range(count):
            self.stats.record_round(label, 0, 0, 0)
        if count and self._tracer.enabled:
            self._tracer.metrics.inc("mpc.rounds", count)

    # ------------------------------------------------------------------ #
    # Sub-ledgers (parallel task fan-out; see repro.engine.ledger)
    # ------------------------------------------------------------------ #

    def fork(
        self, config: MPCConfig | None = None, memory_quota: int | None = None
    ) -> "MPCCluster":
        """An empty child cluster with this cluster's provisioning.

        One parallel task records its rounds, communication, and storage into
        one fork; :meth:`merge_parallel` folds the forks back.  The child
        shares the (immutable) config and the enforcement flags but starts
        with fresh machines and an empty ledger, so it is cheap to create and
        safe to send to a worker process.

        ``config`` re-provisions the child: a *persistent* sub-ledger that
        accounts one tenant of a multiplexed service (see
        :class:`repro.stream.engine.StreamEngine`) is sized for that tenant's
        own input — the tenant then behaves, round for round, exactly like a
        standalone service on its own cluster, while the fold arithmetic
        (which never consults the config) still lands in this parent.
        Short-lived task forks keep the parent's config.

        ``memory_quota`` caps the child's *global memory peak*
        (:meth:`check_quota`); quotas are per-fork and never inherited —
        the parent aggregates many tenants, so a tenant-sized cap would be
        meaningless there.
        """
        return MPCCluster(
            self.config if config is None else config,
            enforce_limits=self.enforce_limits,
            enforce_global_memory=self.enforce_global_memory,
            memory_quota=memory_quota,
        )

    def check_quota(self) -> None:
        """Raise :class:`~repro.errors.QuotaExceededError` when this ledger's
        global memory peak exceeds its provisioned quota (no-op when uncapped)."""
        if (
            self.memory_quota is not None
            and self.stats.peak_global_memory_words > self.memory_quota
        ):
            raise QuotaExceededError(
                self.stats.peak_global_memory_words, self.memory_quota
            )

    def merge_parallel(self, branches) -> int:
        """Fold sibling forks back in as parallel supersteps.

        ``branches`` may be :class:`MPCCluster` forks or bare
        :class:`~repro.mpc.metrics.RoundStats` (what a worker process ships
        back).  Rounds fold as max-over-tasks, per-superstep volume as the
        sum, memory peaks as the sum — see the module docstring for the
        charging model.  An empty fold (no branches, or only empty deltas)
        charges zero rounds.  Quota-capped fork branches are checked
        (:meth:`check_quota`) *before* anything is folded, so a breach
        raises without half-merged state.  Returns the number of rounds
        charged.
        """
        branches = [branch for branch in branches if branch is not None]
        for branch in branches:
            if isinstance(branch, MPCCluster):
                branch.check_quota()
        stats = [
            branch.stats if isinstance(branch, MPCCluster) else branch
            for branch in branches
        ]
        return self.stats.merge_parallel(stats)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def load_graph(self, graph, tag: str = "input") -> None:
        """Distribute the input graph across machines (one word per edge endpoint).

        Models the arbitrary initial distribution of the input: edge ``(u, v)``
        is stored on the machine owning the edge's index, and every vertex id
        is stored on the machine owning the vertex.  Placement is batched per
        machine — one store call per machine instead of one per key — which
        keeps loading linear with a small constant even for 10^5-edge inputs.
        The memory observation at the end sees the same totals (stores only
        ever grow), so the recorded peaks are unchanged.
        """
        machine_of = self.config.machine_of
        words_by_machine: dict[int, int] = {}
        for v in range(graph.num_vertices):
            machine_id = machine_of(v)
            words_by_machine[machine_id] = words_by_machine.get(machine_id, 0) + 1
        base = graph.num_vertices
        for index in range(graph.num_edges):
            machine_id = machine_of(base + index)
            words_by_machine[machine_id] = words_by_machine.get(machine_id, 0) + 2
        for machine_id, words in words_by_machine.items():
            self.machine(machine_id).store(words, tag=tag, enforce=self.enforce_limits)
        self._observe_memory()

    def snapshot(self) -> dict[str, float]:
        """Summary of the execution so far (for the experiment harness)."""
        summary = self.stats.summary()
        summary["num_machines"] = float(self._num_machines)
        summary["words_per_machine"] = float(self._capacity)
        summary["global_budget_words"] = float(self._global_budget)
        return summary

    def __repr__(self) -> str:
        return (
            f"MPCCluster(machines={self._num_machines}, S={self._capacity} words, "
            f"rounds={self.stats.num_rounds})"
        )
