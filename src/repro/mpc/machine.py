"""Per-machine bookkeeping for the MPC simulator.

A :class:`Machine` tracks the number of words it currently stores and the
volume it has sent/received in the round in progress.  The cluster consults
these counters to enforce the model constraints:

* local memory never exceeds the capacity ``S``;
* per-round send and receive volumes never exceed ``S`` either (the only
  communication constraint in the MPC model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CommunicationLimitExceeded, MemoryLimitExceeded


@dataclass
class Machine:
    """State of a single simulated machine."""

    machine_id: int
    capacity_words: int
    stored_words: int = 0
    peak_stored_words: int = 0
    round_sent_words: int = 0
    round_received_words: int = 0
    stored_by_tag: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #

    def store(self, words: int, tag: str = "data", enforce: bool = True) -> None:
        """Account for ``words`` additional words of local storage."""
        if words < 0:
            raise ValueError("words must be non-negative")
        self.stored_words += words
        self.stored_by_tag[tag] = self.stored_by_tag.get(tag, 0) + words
        self.peak_stored_words = max(self.peak_stored_words, self.stored_words)
        if enforce and self.stored_words > self.capacity_words:
            raise MemoryLimitExceeded(self.machine_id, self.stored_words, self.capacity_words)

    def release(self, words: int, tag: str = "data") -> None:
        """Release ``words`` words of local storage."""
        if words < 0:
            raise ValueError("words must be non-negative")
        freed = min(words, self.stored_words)
        self.stored_words -= freed
        if tag in self.stored_by_tag:
            self.stored_by_tag[tag] = max(self.stored_by_tag[tag] - words, 0)

    def release_tag(self, tag: str) -> None:
        """Release everything stored under a given tag."""
        words = self.stored_by_tag.pop(tag, 0)
        self.stored_words = max(self.stored_words - words, 0)

    # ------------------------------------------------------------------ #
    # Per-round communication
    # ------------------------------------------------------------------ #

    def begin_round(self) -> None:
        """Reset the per-round send/receive counters."""
        self.round_sent_words = 0
        self.round_received_words = 0

    def account_send(self, words: int, enforce: bool = True) -> None:
        """Charge ``words`` of outgoing traffic for the round in progress."""
        self.round_sent_words += words
        if enforce and self.round_sent_words > self.capacity_words:
            raise CommunicationLimitExceeded(
                self.machine_id, "sent", self.round_sent_words, self.capacity_words
            )

    def account_receive(self, words: int, enforce: bool = True) -> None:
        """Charge ``words`` of incoming traffic for the round in progress."""
        self.round_received_words += words
        if enforce and self.round_received_words > self.capacity_words:
            raise CommunicationLimitExceeded(
                self.machine_id, "received", self.round_received_words, self.capacity_words
            )

    @property
    def utilisation(self) -> float:
        """Fraction of the local memory currently in use."""
        if self.capacity_words == 0:
            return 0.0
        return self.stored_words / self.capacity_words

    def __repr__(self) -> str:
        return (
            f"Machine(id={self.machine_id}, stored={self.stored_words}/"
            f"{self.capacity_words} words)"
        )
