"""MPC model simulation substrate (machines, rounds, memory accounting, primitives)."""

from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.mpc.machine import Machine
from repro.mpc.metrics import RoundRecord, RoundStats
from repro.mpc.primitives import (
    aggregate_by_key,
    broadcast,
    count_by_key,
    gather_bundles,
    prefix_sums,
    sort_by_key,
)

__all__ = [
    "MPCCluster",
    "MPCConfig",
    "Machine",
    "RoundRecord",
    "RoundStats",
    "aggregate_by_key",
    "broadcast",
    "count_by_key",
    "gather_bundles",
    "prefix_sums",
    "sort_by_key",
]
