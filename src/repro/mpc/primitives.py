"""Standard constant-round MPC primitives.

The paper repeatedly appeals to "standard MPC primitives developed in previous
works" ([ASS+18] Section E, [GSZ11], [Gha] lecture notes) for the plumbing of
its algorithms: sorting, aggregation by key, broadcast trees, and the directed
information-gathering of Lemma 4.1.  This module provides those primitives on
top of :class:`~repro.mpc.cluster.MPCCluster`.

Each primitive does the actual data manipulation centrally (the simulator is a
single process) but charges the documented number of MPC rounds and routes the
data volume through the cluster so memory/communication constraints are
enforced.  The constants charged are:

===========================  ======  ==========================================
primitive                    rounds  reference
===========================  ======  ==========================================
``sort_by_key``              3       [GSZ11] constant-round sample sort
``aggregate_by_key``         2       sort + local combine [ASS+18]
``broadcast``                2       n^{δ/2}-ary broadcast tree [Gha §1.3.2]
``prefix_sums``              3       via sorting [GSZ11]
``gather_bundles``           3       Lemma 4.1 (sort, copy via broadcast trees,
                                     match)
===========================  ======  ==========================================
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any, TypeVar

from repro.errors import SimulationError
from repro.mpc.cluster import MPCCluster

K = TypeVar("K")
V = TypeVar("V")

SORT_ROUNDS = 3
AGGREGATE_ROUNDS = 2
BROADCAST_ROUNDS = 2
PREFIX_SUM_ROUNDS = 3
GATHER_ROUNDS = 3


def sort_by_key(
    cluster: MPCCluster,
    items: Sequence[tuple[int, Any]],
    label: str = "sort",
) -> list[tuple[int, Any]]:
    """Sort ``(key, value)`` pairs by key in a constant number of MPC rounds.

    Charges :data:`SORT_ROUNDS` rounds and one round of all-to-all traffic
    proportional to the number of items (each item is counted as one word plus
    an estimated payload word).
    """
    messages = [(key, key, 2) for key, _value in items]
    cluster.communication_round(messages, label=f"{label}:shuffle")
    cluster.charge_rounds(SORT_ROUNDS - 1, label=f"{label}:merge")
    return sorted(items, key=lambda kv: kv[0])


def aggregate_by_key(
    cluster: MPCCluster,
    items: Iterable[tuple[int, V]],
    combine: Callable[[V, V], V],
    label: str = "aggregate",
) -> dict[int, V]:
    """Combine all values sharing a key with an associative ``combine`` function.

    The classic use in this reproduction is summing per-vertex counters (e.g.
    computing degrees or the per-vertex minimum layer in Algorithm 4).
    """
    grouped: dict[int, V] = {}
    count = 0
    for key, value in items:
        count += 1
        if key in grouped:
            grouped[key] = combine(grouped[key], value)
        else:
            grouped[key] = value
    messages = [(key, key, 1) for key in grouped]
    cluster.communication_round(messages, label=f"{label}:shuffle")
    cluster.charge_rounds(AGGREGATE_ROUNDS - 1, label=f"{label}:combine")
    # Touch 'count' so linters don't flag it; it documents the traffic volume.
    del count
    return grouped


def broadcast(
    cluster: MPCCluster,
    payload_words: int,
    destinations: Sequence[int],
    source_key: int = 0,
    label: str = "broadcast",
) -> None:
    """Broadcast a payload of ``payload_words`` words to all ``destinations``.

    Uses the standard ``n^{δ/2}``-ary broadcast tree, hence a constant number
    of rounds; the per-round per-machine volume is bounded by the fan-out
    times the payload, which the cluster verifies.
    """
    if payload_words < 0:
        raise SimulationError("payload_words must be non-negative")
    if not destinations:
        cluster.charge_rounds(BROADCAST_ROUNDS, label=label)
        return
    fan_out = max(int(cluster.words_per_machine ** 0.5), 2)
    frontier = [source_key]
    remaining = list(destinations)
    rounds_used = 0
    while remaining:
        messages = []
        next_frontier = []
        for source in frontier:
            for _ in range(fan_out):
                if not remaining:
                    break
                destination = remaining.pop()
                messages.append((source, destination, payload_words))
                next_frontier.append(destination)
        cluster.communication_round(messages, label=f"{label}:tree")
        frontier = next_frontier
        rounds_used += 1
    if rounds_used < BROADCAST_ROUNDS:
        cluster.charge_rounds(BROADCAST_ROUNDS - rounds_used, label=label)


def prefix_sums(
    cluster: MPCCluster,
    values: Sequence[int],
    label: str = "prefix_sums",
) -> list[int]:
    """Exclusive prefix sums of ``values`` (constant rounds via sorting)."""
    cluster.charge_rounds(PREFIX_SUM_ROUNDS, label=label)
    result: list[int] = []
    running = 0
    for value in values:
        result.append(running)
        running += value
    return result


def gather_bundles(
    cluster: MPCCluster,
    bundles: Mapping[int, int],
    interest_lists: Mapping[int, Sequence[int]],
    label: str = "gather",
    store_tag: str | None = None,
) -> None:
    """Lemma 4.1: every node ``u`` receives the information bundles of ``L_u``.

    ``bundles[v]`` is the size (in words) of node ``v``'s bundle ``B_v``;
    ``interest_lists[u]`` is the list ``L_u`` of nodes whose bundles ``u``
    wants.  The lemma requires ``|B_v| ≤ n^{δ/2}``, ``|L_u| ≤ n^{δ/2}`` and the
    total delivered volume to be ``O(m + n)``; the cluster's communication
    accounting enforces the per-machine consequences of these bounds.

    Charges :data:`GATHER_ROUNDS` rounds (sort + copy + match, as in the
    lemma's proof sketch) plus the delivery round carrying the actual volume.
    """
    cluster.charge_rounds(GATHER_ROUNDS, label=f"{label}:plumbing")
    messages = []
    for u, wanted in interest_lists.items():
        for v in wanted:
            size = bundles.get(v, 0)
            if size > 0:
                messages.append((v, u, size))
    cluster.communication_round(messages, label=f"{label}:deliver", store_tag=store_tag)


def count_by_key(
    cluster: MPCCluster,
    keys: Iterable[int],
    label: str = "count",
) -> dict[int, int]:
    """Count occurrences of each key (a special case of :func:`aggregate_by_key`)."""
    counts: dict[int, int] = defaultdict(int)
    for key in keys:
        counts[key] += 1
    messages = [(key, key, 1) for key in counts]
    cluster.communication_round(messages, label=f"{label}:shuffle")
    cluster.charge_rounds(AGGREGATE_ROUNDS - 1, label=f"{label}:combine")
    return dict(counts)
