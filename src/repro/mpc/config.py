"""Configuration of the simulated MPC cluster.

The scalable (strongly sublinear) MPC regime fixes a constant ``δ ∈ (0, 1)``
and gives every machine ``S = Θ(n^δ)`` words of local memory.  The number of
machines is whatever is needed for the global memory, which the paper bounds
by ``Õ(m + n)`` words.

:class:`MPCConfig` captures exactly these knobs plus the constant factors that
the theory hides, so experiments can (a) enforce the constraints and (b) sweep
``δ`` in the memory experiment E6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError


@dataclass(frozen=True)
class MPCConfig:
    """Resource parameters of a simulated MPC cluster.

    Parameters
    ----------
    num_vertices, num_edges:
        Size of the input the cluster is provisioned for (``n`` and ``m``).
    delta:
        The memory exponent: each machine holds ``S = ceil(memory_constant *
        n^delta)`` words.  Must lie strictly between 0 and 1 for the scalable
        regime (values ≥ 1 are allowed for the near-linear regime baselines
        but flagged by :attr:`is_strongly_sublinear`).
    memory_constant:
        Constant factor in front of ``n^delta``.  The theory hides it; the
        simulator needs a concrete value.
    global_memory_factor:
        The global memory budget is ``global_memory_factor * (m + n)`` words
        (plus a logarithmic slack factor, see :meth:`global_memory_words`),
        matching the paper's ``Õ(m + n)``.
    """

    num_vertices: int
    num_edges: int
    delta: float = 0.5
    memory_constant: float = 4.0
    global_memory_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.num_vertices < 1:
            raise ParameterError("num_vertices must be at least 1")
        if self.num_edges < 0:
            raise ParameterError("num_edges must be non-negative")
        if self.delta <= 0:
            raise ParameterError("delta must be positive")
        if self.memory_constant <= 0 or self.global_memory_factor <= 0:
            raise ParameterError("constants must be positive")

    # ------------------------------------------------------------------ #

    @property
    def is_strongly_sublinear(self) -> bool:
        """Whether the configuration is in the scalable (S = n^δ, δ < 1) regime."""
        return self.delta < 1.0

    @property
    def words_per_machine(self) -> int:
        """Local memory capacity ``S`` in words."""
        capacity = self.memory_constant * (self.num_vertices ** self.delta)
        return max(int(math.ceil(capacity)), 16)

    @property
    def log_n(self) -> float:
        """``log2 n`` (at least 1.0 to avoid degenerate parameters on tiny inputs)."""
        return max(math.log2(self.num_vertices), 1.0)

    @property
    def log_log_n(self) -> float:
        """``log2 log2 n`` (at least 1.0)."""
        return max(math.log2(self.log_n), 1.0)

    def global_memory_words(self) -> int:
        """Global memory budget, ``Õ(m + n)`` words.

        We charge ``global_memory_factor · (m + n) · ⌈log2 n⌉`` which matches
        the paper's soft-O: Theorem 1.1 explicitly spends an extra ``O(log n)``
        factor to guess the arboricity, and Lemma 3.13 spends ``O(n·B)`` with
        ``B ≤ n^δ`` absorbed into the same slack.
        """
        slack = max(int(math.ceil(self.log_n)), 1)
        return int(self.global_memory_factor * (self.num_edges + self.num_vertices + 1) * slack)

    def num_machines(self) -> int:
        """Number of machines needed so that M·S covers the global memory budget.

        Memoised (the config is frozen) because :meth:`machine_of` calls this
        once per placed key, which made graph loading quadratic in practice.
        """
        cached = getattr(self, "_num_machines_cache", None)
        if cached is None:
            cached = max(1, -(-self.global_memory_words() // self.words_per_machine))
            object.__setattr__(self, "_num_machines_cache", cached)
        return cached

    def machine_of(self, key: int) -> int:
        """Deterministic placement of a key (vertex/edge id) onto a machine.

        A multiplicative hash keeps placement spread out even for consecutive
        ids, which is what an adversarial initial distribution would also
        achieve in expectation.
        """
        knuth = 2654435761
        return (key * knuth) % self.num_machines()

    @classmethod
    def for_graph(cls, graph, delta: float = 0.5, **kwargs) -> "MPCConfig":
        """Convenience constructor from a :class:`repro.graph.Graph`."""
        return cls(
            num_vertices=max(graph.num_vertices, 1),
            num_edges=graph.num_edges,
            delta=delta,
            **kwargs,
        )
