"""Run metrics collected by the MPC simulator.

The primary measure in the MPC model is the number of rounds; the experiment
suite also records per-machine peak memory and the total communication volume
so that the memory claims of the paper (Claims 3.5 and 3.11, and the global
memory bounds of Theorems 1.1/1.2) can be reported, not just asserted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class RoundRecord:
    """One simulated MPC round."""

    index: int
    label: str
    words_sent: int
    max_machine_sent: int
    max_machine_received: int


@dataclass
class RoundStats:
    """Aggregated statistics of a simulated MPC execution."""

    rounds: list[RoundRecord] = field(default_factory=list)
    peak_machine_memory_words: int = 0
    peak_global_memory_words: int = 0
    rounds_by_label: Counter = field(default_factory=Counter)

    @property
    def num_rounds(self) -> int:
        """Total number of MPC rounds charged so far."""
        return len(self.rounds)

    @property
    def total_words_sent(self) -> int:
        """Total communication volume, in words, across the whole run."""
        return sum(record.words_sent for record in self.rounds)

    @property
    def max_round_volume(self) -> int:
        """Largest per-round communication volume in words."""
        return max((record.words_sent for record in self.rounds), default=0)

    def record_round(
        self,
        label: str,
        words_sent: int,
        max_machine_sent: int,
        max_machine_received: int,
    ) -> RoundRecord:
        """Append a round record and update per-label counters."""
        record = RoundRecord(
            index=len(self.rounds),
            label=label,
            words_sent=words_sent,
            max_machine_sent=max_machine_sent,
            max_machine_received=max_machine_received,
        )
        self.rounds.append(record)
        self.rounds_by_label[label] += 1
        return record

    def observe_memory(self, machine_peak_words: int, global_words: int) -> None:
        """Update peak memory high-water marks."""
        self.peak_machine_memory_words = max(self.peak_machine_memory_words, machine_peak_words)
        self.peak_global_memory_words = max(self.peak_global_memory_words, global_words)

    def since(self, round_index: int) -> "RoundStats":
        """The suffix of this ledger starting at ``round_index``, re-indexed.

        Used by multiplexers that keep one *persistent* sub-ledger per tenant
        but fold per-superstep deltas into a shared ledger: record
        ``num_rounds`` before the superstep, then fold ``since(mark)`` of
        every tenant with :meth:`merge_parallel`.  The returned snapshot
        carries this ledger's *current* memory high-water marks — co-resident
        tenants occupy the fleet for the whole superstep, so the parallel
        fold's sum-of-peaks semantics wants the lifetime peak, not a delta.

        A mark taken at the current head (``round_index == num_rounds``, the
        idle-tenant case) yields a zero-round delta that still carries the
        peaks; a mark *beyond* the head can only come from a stale or
        corrupted marker and raises rather than silently returning an empty
        delta.
        """
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        if round_index > len(self.rounds):
            raise ValueError(
                f"round mark {round_index} is beyond the ledger head "
                f"({len(self.rounds)} rounds recorded)"
            )
        delta = RoundStats()
        for offset, record in enumerate(self.rounds[round_index:]):
            delta.rounds.append(
                RoundRecord(
                    index=offset,
                    label=record.label,
                    words_sent=record.words_sent,
                    max_machine_sent=record.max_machine_sent,
                    max_machine_received=record.max_machine_received,
                )
            )
            delta.rounds_by_label[record.label] += 1
        delta.peak_machine_memory_words = self.peak_machine_memory_words
        delta.peak_global_memory_words = self.peak_global_memory_words
        return delta

    def merge_parallel(self, branches: "list[RoundStats]") -> int:
        """Fold sibling sub-ledgers in as *parallel* supersteps (in place).

        ``branches`` are the ledgers of tasks that executed concurrently on
        this cluster.  Round ``i`` of every branch happens in the same
        superstep, so the fold appends ``max(branch round counts)`` rounds to
        this ledger where superstep ``i`` carries

        * the label of the *longest* branch's round ``i`` (the critical path
          names the superstep; ties resolve to the earliest branch),
        * the **sum** of all branches' round-``i`` communication volumes, and
        * the **max** of their per-machine send/receive peaks.

        Memory folds as a **sum** of the branches' peaks — parallel tasks
        are co-resident on the same machine fleet (conservative: branches
        may peak at different times).  Returns the number of rounds charged.

        **Empty folds charge zero rounds.**  A fold with no branches is a
        no-op (no superstep ran, nothing is co-resident).  A fold whose
        branches are all zero-round deltas — a budget-exhausted scheduler
        tick where every tenant idled — likewise appends no rounds, but
        still observes the branches' summed memory peaks: the tenants were
        co-resident for the tick whether or not any of them was served.
        """
        branches = [branch for branch in branches if branch is not None]
        if not branches:
            return 0
        spine = max(branches, key=lambda branch: branch.num_rounds)
        depth = spine.num_rounds
        for index in range(depth):
            words = 0
            max_sent = 0
            max_received = 0
            for branch in branches:
                if index < branch.num_rounds:
                    record = branch.rounds[index]
                    words += record.words_sent
                    max_sent = max(max_sent, record.max_machine_sent)
                    max_received = max(max_received, record.max_machine_received)
            self.record_round(spine.rounds[index].label, words, max_sent, max_received)
        self.observe_memory(
            sum(branch.peak_machine_memory_words for branch in branches),
            sum(branch.peak_global_memory_words for branch in branches),
        )
        return depth

    def merge(self, other: "RoundStats") -> "RoundStats":
        """Combine statistics of two sequential executions (rounds add up)."""
        merged = RoundStats()
        merged.rounds = list(self.rounds)
        offset = len(merged.rounds)
        for record in other.rounds:
            merged.rounds.append(
                RoundRecord(
                    index=offset + record.index,
                    label=record.label,
                    words_sent=record.words_sent,
                    max_machine_sent=record.max_machine_sent,
                    max_machine_received=record.max_machine_received,
                )
            )
        merged.rounds_by_label = self.rounds_by_label + other.rounds_by_label
        merged.peak_machine_memory_words = max(
            self.peak_machine_memory_words, other.peak_machine_memory_words
        )
        merged.peak_global_memory_words = max(
            self.peak_global_memory_words, other.peak_global_memory_words
        )
        return merged

    def state_dict(self) -> dict:
        """The ledger as JSON-serializable columns (the checkpoint seam).

        Round indexes are implied by position and ``rounds_by_label`` is
        derivable, so the snapshot stores only the per-round payload plus
        the two memory high-water marks.
        """
        return {
            "rounds": [
                [r.label, r.words_sent, r.max_machine_sent, r.max_machine_received]
                for r in self.rounds
            ],
            "peak_machine_memory_words": self.peak_machine_memory_words,
            "peak_global_memory_words": self.peak_global_memory_words,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RoundStats":
        """Rebuild a ledger from :meth:`state_dict` output, exactly."""
        stats = cls()
        for label, words, max_sent, max_received in state["rounds"]:
            stats.record_round(str(label), words, max_sent, max_received)
        stats.observe_memory(
            state["peak_machine_memory_words"], state["peak_global_memory_words"]
        )
        return stats

    def summary(self) -> dict[str, float]:
        """A flat dictionary for the reporting layer."""
        return {
            "rounds": float(self.num_rounds),
            "total_words_sent": float(self.total_words_sent),
            "max_round_volume": float(self.max_round_volume),
            "peak_machine_memory_words": float(self.peak_machine_memory_words),
            "peak_global_memory_words": float(self.peak_global_memory_words),
        }

    def __repr__(self) -> str:
        return (
            f"RoundStats(rounds={self.num_rounds}, "
            f"peak_machine_memory={self.peak_machine_memory_words}, "
            f"peak_global_memory={self.peak_global_memory_words})"
        )
