"""The superstep execution engine: run independent MPC tasks concurrently.

The paper's round bounds rest on work happening *in parallel across
machines*: the Lemma 2.1 edge-partition parts are oriented simultaneously,
and a batch of vertex-disjoint flip repairs resolves in one superstep.  The
simulator previously walked such task lists in a sequential Python loop,
which both ran one-task-at-a-time on the host and charged each task's rounds
cumulatively on the shared cluster — overstating round complexity relative
to the model being simulated.

:class:`ParallelExecutor` is the one execution layer both the static and the
streaming pipelines now share.  It runs a list of independent tasks through
one of three backends:

* ``serial`` — a plain loop in the calling process (the reference semantics);
* ``thread`` — :class:`concurrent.futures.ThreadPoolExecutor`, for tasks that
  mutate *disjoint* slices of shared state (batch-parallel flip repair);
* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`, for
  CPU-bound pure-Python tasks on picklable inputs (Lemma 2.1 part
  orientation).  Task callables must be module-level functions.

**Determinism contract.**  Results are identical for *any* worker count and
any backend: tasks receive no shared mutable state (or provably disjoint
state), task results are returned in submission order, and randomness is
consumed only through per-task seed streams derived with :func:`derive_seed`
— never through a generator shared across tasks.

**Auto-picking serial.**  Spawning a pool costs more than small inputs are
worth.  When the backend is left unset (``backend=None``), the executor runs
serially unless there are at least two tasks, at least two workers, and the
caller-reported ``total_work`` clears :attr:`serial_work_threshold`; only
then does it use the process backend (the engine's tasks are CPU-bound).
An explicitly requested backend is always honored, which is what the
determinism tests use to pin each backend down on tiny inputs.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any

from repro.errors import ParameterError, WorkerCrashError
from repro.obs.tracer import NULL_TRACER

SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"
BACKENDS = (SERIAL, THREAD, PROCESS)
IN_PROCESS = (SERIAL, THREAD)
"""Backends that run tasks inside the calling process.

Stages that mutate *shared* state through provably disjoint slices (e.g. the
batch flip-repair out-table) are only correct on these; stages that ship
their state explicitly (orientation parts, out-table shards) run on any
backend.
"""

_MASK64 = (1 << 64) - 1


def derive_seed(base_seed: int | None, index: int) -> int:
    """Deterministic per-task seed: splitmix64 of ``(base_seed, index)``.

    Tasks must not share one RNG (consumption order would then depend on the
    schedule); instead each task gets its own stream seeded by its *position*
    in the task list, so any worker count replays identical randomness.
    """
    x = ((0 if base_seed is None else base_seed) + 0x9E3779B97F4A7C15 * (index + 1)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def seed_stream(base_seed: int | None, count: int) -> list[int]:
    """``count`` independent per-task seeds derived from one base seed."""
    if count < 0:
        raise ParameterError("count must be non-negative")
    return [derive_seed(base_seed, index) for index in range(count)]


def _timed_task(fn: Callable[..., Any], args: Sequence[Any]) -> tuple:
    """Run ``fn(*args)`` and report where/when it ran (tracing only).

    This wrapper is what stitches worker-side spans across the pickle
    boundary: it executes inside the worker and returns monotonic
    ``perf_counter_ns`` readings (CLOCK_MONOTONIC on Linux, comparable
    across processes on one machine) plus the worker identity.  The parent
    unwraps the result in submission order, so tracing cannot reorder or
    alter what callers observe.
    """
    start_ns = time.perf_counter_ns()
    result = fn(*args)
    end_ns = time.perf_counter_ns()
    return result, os.getpid(), threading.get_ident(), start_ns, end_ns


class ParallelExecutor:
    """Runs independent tasks concurrently, preserving submission order.

    Parameters
    ----------
    workers:
        Maximum number of concurrent workers (1 means serial).
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``None`` to auto-pick:
        serial for tiny inputs, process otherwise (see module docstring).
    serial_work_threshold:
        Auto-pick cutoff — with ``backend=None``, inputs whose reported
        ``total_work`` is below this run serially (pool startup would cost
        more than it buys).
    """

    def __init__(
        self,
        workers: int = 1,
        backend: str | None = None,
        serial_work_threshold: int = 20_000,
    ) -> None:
        if workers < 1:
            raise ParameterError("workers must be at least 1")
        if backend is not None and backend not in BACKENDS:
            raise ParameterError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        self.workers = workers
        self.backend = backend
        self.serial_work_threshold = serial_work_threshold
        # Pools are created lazily on first parallel map and then reused —
        # callers like the streaming service map once per batch, and paying
        # pool startup/teardown per call would swamp small batches.
        self._pools: dict[str, ThreadPoolExecutor | ProcessPoolExecutor] = {}
        # Health counters, maintained whether or not tracing is attached —
        # `WorkerPool.stats()` reads them when diagnosing failures.
        self.tasks_run = 0
        self.respawns = 0
        self._tracer = NULL_TRACER

    def instrument(self, tracer) -> None:
        """Attach a tracer for map/task spans; ``None`` restores the no-op."""
        self._tracer = NULL_TRACER if tracer is None else tracer

    def live_workers(self) -> int:
        """Workers currently alive across this executor's lazy pools.

        Best-effort introspection of the stdlib pool internals (0 when no
        pool has been spun up yet) — used by ``WorkerPool.stats()``.
        """
        count = 0
        for pool in self._pools.values():
            processes = getattr(pool, "_processes", None)
            if processes is not None:
                count += sum(1 for process in processes.values() if process.is_alive())
                continue
            threads = getattr(pool, "_threads", None)
            if threads is not None:
                count += sum(1 for thread in threads if thread.is_alive())
        return count

    def resolve_backend(
        self,
        num_tasks: int,
        total_work: int | None = None,
        backend: str | None = None,
    ) -> str:
        """The backend a ``map`` call with these dimensions would use.

        ``backend`` is the per-call override (see :meth:`map`); when omitted
        the executor-level backend (or the auto pick) applies.
        """
        if self.workers <= 1 or num_tasks <= 1:
            return SERIAL
        if backend is None:
            backend = self.backend
        if backend is not None:
            return backend
        if total_work is not None and total_work < self.serial_work_threshold:
            return SERIAL
        return PROCESS

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Iterable[Sequence[Any]],
        total_work: int | None = None,
        backend: str | None = None,
    ) -> list[Any]:
        """Apply ``fn(*args)`` to every ``args`` tuple; results in task order.

        ``total_work`` is an optional size hint (e.g. total edges across
        parts) consulted by the auto backend pick.  ``backend`` overrides the
        executor-level backend for this call only — stages with different
        safety requirements (in-process state sharing vs. picklable fan-out)
        can then share one executor and its pools.  On a failing task, the
        first (in-order) exception propagates — but only after pending
        sibling tasks are cancelled and running ones have finished, so the
        caller observes a quiescent state when it catches (the reused pool
        itself stays open until :meth:`close`).
        """
        if backend is not None and backend not in BACKENDS:
            raise ParameterError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
        task_list = [tuple(args) for args in tasks]
        backend = self.resolve_backend(len(task_list), total_work, backend=backend)
        self.tasks_run += len(task_list)
        if self._tracer.enabled:
            return self._map_traced(fn, task_list, backend)
        if backend == SERIAL:
            return [fn(*args) for args in task_list]
        futures = self._submit_all(fn, task_list, backend)
        try:
            return [future.result() for future in futures]
        except BrokenProcessPool as exc:
            # A worker died mid-superstep.  Discard the broken pool so the
            # next map respawns workers cleanly, and surface a typed error —
            # callers distinguish an infrastructure crash from a task bug.
            self._discard_pool(backend)
            raise WorkerCrashError(backend, str(exc)) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            wait(futures)
            raise

    def _map_traced(self, fn: Callable[..., Any], task_list: list, backend: str) -> list[Any]:
        """The :meth:`map` body with span recording (tracer attached).

        Identical result semantics: tasks run through the same backends in
        the same order; only timing is observed.  Pooled tasks run through
        :func:`_timed_task` and are unwrapped here in submission order.
        """
        tracer = self._tracer
        name = getattr(fn, "__name__", "task")
        with tracer.span(
            f"map:{name}", cat="executor", backend=backend, tasks=len(task_list)
        ) as map_span:
            if backend == SERIAL:
                results = []
                for args in task_list:
                    with tracer.span(f"task:{name}", cat="executor"):
                        results.append(fn(*args))
                return results
            submit_marks: list[int] = []
            futures = self._submit_all(
                _timed_task,
                [(fn, args) for args in task_list],
                backend,
                submit_marks=submit_marks,
            )
            try:
                outcomes = [future.result() for future in futures]
            except BrokenProcessPool as exc:
                self._discard_pool(backend)
                raise WorkerCrashError(backend, str(exc)) from exc
            except BaseException:
                for future in futures:
                    future.cancel()
                wait(futures)
                raise
            metrics = tracer.metrics
            results = []
            for outcome, submit_ns in zip(outcomes, submit_marks):
                result, pid, thread_id, start_ns, end_ns = outcome
                worker = pid if backend == PROCESS else thread_id
                tracer.record_span(
                    f"task:{name}",
                    start_ns,
                    end_ns,
                    cat="worker",
                    tid=worker,
                    parent=map_span.span_id,
                    args={"backend": backend},
                )
                metrics.observe(f"pool.queue_wait_ns.worker:{worker}", start_ns - submit_ns)
                metrics.observe(f"pool.run_ns.worker:{worker}", end_ns - start_ns)
                results.append(result)
            return results

    def _submit_all(
        self,
        fn: Callable[..., Any],
        task_list: list,
        backend: str,
        submit_marks: list[int] | None = None,
    ) -> list:
        """Submit every task to the (lazily created) pool for ``backend``."""
        pool = self._pools.get(backend)
        if pool is None:
            pool_cls = ThreadPoolExecutor if backend == THREAD else ProcessPoolExecutor
            pool = pool_cls(max_workers=self.workers)
            self._pools[backend] = pool
        futures = []
        try:
            for args in task_list:
                if submit_marks is not None:
                    submit_marks.append(time.perf_counter_ns())
                futures.append(pool.submit(fn, *args))
        except BrokenProcessPool as exc:
            self._discard_pool(backend)
            raise WorkerCrashError(backend, str(exc)) from exc
        return futures

    def _discard_pool(self, backend: str) -> None:
        """Drop a (broken) pool; a later map lazily creates a fresh one."""
        pool = self._pools.pop(backend, None)
        if pool is not None:
            self.respawns += 1
            self._tracer.metrics.inc("pool.respawns")
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down any pools this executor spun up (idempotent).

        Serial-only executors never create a pool, so closing them is free;
        owners of long-lived executors (services, benchmarks) should close
        on teardown to release worker processes promptly rather than waiting
        for garbage collection.
        """
        pools, self._pools = self._pools, {}
        for pool in pools.values():
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers}, backend={self.backend or 'auto'})"
