"""The sub-ledger protocol: per-task round accounting that merges correctly.

When independent tasks run in parallel on a simulated MPC cluster, charging
their rounds one after another on the shared ledger counts the *sum* of
their round complexities — but the model executes parallel tasks in lockstep
supersteps, so the honest charge is the *maximum*.  The sub-ledger protocol
makes that merge explicit:

1. before the fan-out, the parent ledger is :meth:`~SubLedger.fork`-ed once
   per task — each fork shares the parent's provisioning but starts with an
   empty round/memory record;
2. each task records all of its rounds, communication, and storage into its
   own fork (never touching the parent — forks cross process boundaries
   freely);
3. after the fan-out, :meth:`~SubLedger.merge_parallel` folds the forks back
   into the parent, aligning round ``i`` of every task into one superstep:

   * **rounds = max** over the parallel tasks (the superstep count is the
     longest task's round count); any merge/combination work the caller does
     afterwards is charged separately on the parent;
   * per-superstep **communication volume = sum** over tasks (all tasks'
     round-``i`` messages move in the same superstep) while per-machine
     send/receive maxima take the max;
   * **memory = sum** of the forks' peaks (parallel tasks are co-resident on
     the same machine fleet, so their storage adds — a conservative fold,
     since different tasks may peak at different times).

:class:`repro.mpc.cluster.MPCCluster` implements the protocol (the round
arithmetic itself lives on :class:`repro.mpc.metrics.RoundStats`); the engine
depends only on this interface so future ledgers (e.g. a wall-clock profiler)
can ride the same executor.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol, runtime_checkable


@runtime_checkable
class SubLedger(Protocol):
    """Anything that can account one parallel task and be folded back."""

    def fork(self) -> "SubLedger":
        """An empty child ledger with the same provisioning as this one."""
        ...

    def merge_parallel(self, branches: Sequence[object]) -> int:
        """Fold sibling forks back in as parallel supersteps.

        Returns the number of rounds charged (= the max branch round count).
        """
        ...


def fork_ledgers(ledger: SubLedger | None, count: int) -> list[SubLedger | None]:
    """``count`` forks of ``ledger`` (or ``count`` Nones when unledgered)."""
    if ledger is None:
        return [None] * count
    return [ledger.fork() for _ in range(count)]
