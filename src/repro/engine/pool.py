"""The persistent worker pool: resident workers + shared-memory graph shards.

:class:`WorkerPool` is the control plane matching :mod:`repro.engine.shm`'s
data plane.  It pairs one :class:`~repro.engine.executor.ParallelExecutor`
(whose process workers are spawned once and reused across every ``map`` for
the executor's lifetime) with one :class:`~repro.engine.shm.ShardRegistry`
(whose published shards live in named shared-memory segments for the pool's
lifetime).  Together they change the parallel stack's shipping model from

    *every superstep re-pickles CSR columns, out-table shards and part
    payloads into fresh tasks*

to

    *graph shards are published once per generation; every superstep ships
    only task descriptors (a :class:`~repro.engine.shm.ShardHandle` plus a
    part index) and its deltas (flip lists, result columns).*

All three parallel consumers run on this layer: large-λ ``orient()`` part
fan-out, Theorem 1.2 ``color()`` part fan-out, and process-backend batch
flip repair.  The determinism contract is untouched — the serial and thread
backends resolve the same handles to the owner's original objects
(zero-copy), so there is exactly one code path for shard access and the
published partition fixes every task's input regardless of backend.

Failure semantics: a worker dying mid-superstep surfaces as a typed
:class:`~repro.errors.WorkerCrashError` (the executor discards the broken
pool; the next map respawns workers, and the published segments — owned by
the parent — survive).  Shard teardown is guaranteed by
:meth:`WorkerPool.close`, by a ``weakref`` finalizer on the registry, and by
an ``atexit`` sweep, all pid-guarded (see :mod:`repro.engine.shm`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.engine import shm
from repro.engine.executor import PROCESS, ParallelExecutor
from repro.engine.shm import ShardHandle, ShardRegistry


class WorkerPool:
    """Resident workers plus a shard registry; the parallel stack's runtime.

    Parameters
    ----------
    workers:
        Worker count for a pool-owned executor (ignored when ``executor`` is
        supplied).
    backend:
        Backend for a pool-owned executor (``None`` = auto-pick).
    executor:
        Optional pre-built executor to share.  The pool then *borrows* it:
        :meth:`close` releases only the registry, never a borrowed executor
        (services sharing one engine-owned executor rely on this).
    registry:
        Optional pre-built registry to *share* (a derived pool borrowing an
        engine-owned registry); created fresh — and owned — when omitted.
        :meth:`close` unlinks a borrowed registry's segments only through
        its owner, never through a borrower.
    """

    def __init__(
        self,
        workers: int = 1,
        backend: str | None = None,
        executor: ParallelExecutor | None = None,
        registry: ShardRegistry | None = None,
    ) -> None:
        self._owns_executor = executor is None
        self.executor = (
            executor
            if executor is not None
            else ParallelExecutor(workers=workers, backend=backend)
        )
        self._owns_registry = registry is None
        self.registry = registry if registry is not None else ShardRegistry()

    @property
    def workers(self) -> int:
        return self.executor.workers

    def instrument(self, tracer) -> None:
        """Attach a tracer to the executor and its metrics to the registry.

        Safe to call on borrowed pieces: instrumenting is observation-only,
        and re-instrumenting with the same tracer is idempotent.  ``None``
        restores the no-op defaults.
        """
        self.executor.instrument(tracer)
        self.registry.instrument(None if tracer is None else tracer.metrics)

    def stats(self) -> dict:
        """Health snapshot for diagnostics (cheap, side-effect free).

        Included in :meth:`repro.stream.engine.StreamEngine.verify` error
        messages so pool-related failures are diagnosable from the exception
        alone.
        """
        generations = self.registry.generations()
        return {
            "workers": self.workers,
            "live_workers": self.executor.live_workers(),
            "tasks_run": self.executor.tasks_run,
            "respawns": self.executor.respawns,
            "segments": len(self.registry.segment_names()),
            "registry_keys": len(generations),
            "registry_generations": sum(generations.values()),
            "columns_republished": self.registry.columns_republished,
            "columns_carried": self.registry.columns_carried,
        }

    def allocate_scope(self, prefix: str) -> str:
        """A registry-unique key prefix, so co-resident publishers (one
        registry per engine, one scope per tenant service) can never collide
        on keys — the counter lives on the shared registry, not the pool."""
        return self.registry.allocate_scope(prefix)

    # ------------------------------------------------------------------ #
    # Publication (delegates to the registry's typed helpers)
    # ------------------------------------------------------------------ #

    def publish_edge_parts(self, key: str, num_vertices: int, parts) -> ShardHandle:
        """Publish Lemma 2.1 edge-partition parts under ``key``."""
        return shm.publish_edge_parts(self.registry, key, num_vertices, parts)

    def publish_vertex_parts(self, key: str, parts) -> ShardHandle:
        """Publish Lemma 2.2 vertex-partition parts under ``key``."""
        return shm.publish_vertex_parts(self.registry, key, parts)

    def publish_out_shards(self, key: str, shards) -> ShardHandle:
        """Publish per-group out-table shards under ``key``."""
        return shm.publish_out_shards(self.registry, key, shards)

    def publish_graph_columns(self, key: str, graph) -> dict[str, ShardHandle]:
        """Publish a compacted snapshot's edge columns, delta-aware."""
        return shm.publish_graph_columns(self.registry, key, graph)

    def invalidate(self, key: str) -> None:
        """Retire a key's current generation (e.g. after a graph compaction)."""
        self.registry.invalidate(key)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def resolve_backend(
        self,
        num_tasks: int,
        total_work: int | None = None,
        backend: str | None = None,
    ) -> str:
        """The backend a :meth:`map` with these dimensions would use."""
        return self.executor.resolve_backend(num_tasks, total_work, backend=backend)

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Iterable[Sequence[Any]],
        total_work: int | None = None,
        backend: str | None = None,
        handles: Sequence[ShardHandle] = (),
    ) -> list[Any]:
        """Run ``fn`` over descriptor tasks; results in submission order.

        ``handles`` names the shard publications the tasks read.  Segments
        are materialised only when the resolved backend is ``process`` —
        serial and thread maps resolve the same handles straight to the
        owner's objects, so in-process execution stays allocation-free.
        """
        task_list = [tuple(args) for args in tasks]
        resolved = self.executor.resolve_backend(
            len(task_list), total_work, backend=backend
        )
        if resolved == PROCESS:
            for handle in handles:
                self.registry.ensure_shared(handle)
        return self.executor.map(fn, task_list, total_work=total_work, backend=backend)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release what the pool owns: its registry's segments, its executor.

        Borrowed pieces (a shared engine executor, a shared engine registry)
        are left for their owners, so tenant-scoped derived pools can close
        freely without tearing the engine down.
        """
        if self._owns_registry:
            self.registry.close()
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, "
            f"backend={self.executor.backend or 'auto'}, "
            f"segments={len(self.registry.segment_names())}, "
            f"owns_executor={self._owns_executor})"
        )
