"""Shared-memory graph shards: publish once, ship descriptors per superstep.

PR 4's bench notes put ~93% of parallel-coloring wall-clock in the fan-out:
every process-backend ``ParallelExecutor.map`` re-pickled CSR columns,
out-table shards and part payloads into a fresh task, even though the
underlying graph barely changes between supersteps.  This module is the fix's
data plane: graph shards are *published* into named
:mod:`multiprocessing.shared_memory` segments exactly once per generation,
and per-superstep tasks ship only a tiny :class:`ShardHandle` descriptor
(registry id, key, generation, segment name) plus their deltas.

Design:

* :class:`ShardRegistry` — the owner-side table of published shards.  Every
  entry is ``key -> (generation, objects, lazy columns)``.  ``publish``
  bumps the key's generation and *retires* (unlinks) the previous segment,
  so a handle from an earlier generation can never read republished data —
  it fails with a typed :class:`~repro.errors.StaleShardError` instead.
* **Lazy materialisation.**  Publishing stores the in-process objects and a
  column *builder*; the actual shared-memory segment is only created when a
  process-backend map needs it (:meth:`ShardRegistry.ensure_shared`).  The
  serial and thread backends therefore pay nothing: :func:`attach` resolves
  their handles to the original objects, zero-copy, through the same code
  path the workers use.
* **Worker-side attach cache.**  A worker process attaches each segment once
  (cached by segment name, which embeds the generation) and rebuilds its
  shard objects once per ``(key, generation, index)`` — repeated supersteps
  over an unchanged graph cost only the descriptor pickle.  Republishing a
  key evicts the worker's stale cache entries for it on next attach.
* **Leak safety.**  Every segment this process creates is tracked in a
  module-level table and unlinked by :meth:`ShardRegistry.close`, by a
  ``weakref`` finalizer, and by an ``atexit`` hook — all guarded by the
  creating pid, so a forked worker exiting can never unlink its parent's
  live segments.  A crashed owner still gets its segments reclaimed by the
  stdlib resource tracker.

Segment layout: ``[8-byte little-endian header length][pickled header][raw
column bytes]`` where the header lists ``(column name, byte offset, item
count)`` triples plus small picklable metadata.  Columns are flat
``array('l')`` buffers — the same representation the CSR core uses — so a
worker slice is a single ``frombytes`` memcpy, not element-wise pickling.

**Zero-copy numpy views.**  When numpy is present, :func:`numpy_column`
exposes a column slice as an ``np.frombuffer`` view mapped directly onto the
segment — no memcpy at all — for the vectorized kernels in
:mod:`repro.kernels`.  Such views are read-only and must not outlive the
segment mapping (a republish retires it); see the function docstring for the
full aliasing/lifetime rules.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import struct
import weakref
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.errors import GraphError, StaleShardError
from repro.obs.metrics import NULL_METRICS

_ITEMSIZE = array("l").itemsize
_HEADER_LEN = struct.Struct("<Q")

# Owner-side registries reachable for zero-copy in-process resolution.  Keyed
# by registry uid; weak so a dropped registry (plus its finalizer) is not kept
# alive by the lookup table.
_REGISTRIES: "weakref.WeakValueDictionary[str, ShardRegistry]" = weakref.WeakValueDictionary()

# Every segment created by *this* process: name -> SharedMemory.  The atexit
# sweep unlinks whatever a crashed/forgotten owner left behind.  Guarded by
# pid: a forked worker inherits this table but must never unlink through it.
_OWNED_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_OWNER_PID = os.getpid()

_uid_counter = itertools.count(1)


def _sweep_owned_segments() -> None:  # pragma: no cover - exercised via subprocess
    if os.getpid() != _OWNER_PID:
        return
    for segment in list(_OWNED_SEGMENTS.values()):
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            pass
    _OWNED_SEGMENTS.clear()


atexit.register(_sweep_owned_segments)


def _unlink_segments(names: list[str]) -> None:
    """Finalizer body shared by ``close`` and the weakref safety net."""
    if os.getpid() != _OWNER_PID:  # forked child: not the owner, never unlink
        return
    for name in names:
        segment = _OWNED_SEGMENTS.pop(name, None)
        if segment is None:
            continue
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass
    names.clear()


@dataclass(frozen=True)
class ShardHandle:
    """A picklable descriptor of one published shard generation.

    This is everything a per-superstep task ships about its resident input:
    a few dozen bytes, regardless of the shard's size.  ``segment_name``
    embeds the generation, so worker-side caches keyed by it can never serve
    data from a different generation.
    """

    registry_uid: str
    key: str
    generation: int
    segment_name: str
    kind: str

    def __repr__(self) -> str:
        return f"ShardHandle({self.key!r}@g{self.generation}, kind={self.kind!r})"


class _Entry:
    """Owner-side state of one key's current generation."""

    __slots__ = ("generation", "kind", "objects", "build_columns", "meta", "shared")

    def __init__(self, generation, kind, objects, build_columns, meta):
        self.generation = generation
        self.kind = kind
        self.objects = objects
        self.build_columns = build_columns  # () -> dict[str, array]
        self.meta = meta
        self.shared = False


class ShardView:
    """What :func:`attach` returns: either the owner's objects or the columns.

    Exactly one of ``objects`` (in-process, zero-copy) and ``columns``
    (worker-side, rebuilt from the segment buffer) is set; ``meta`` is always
    available.  Consumers go through the ``shard_*`` accessors below, which
    is what keeps one code path across all three backends.
    """

    __slots__ = ("objects", "columns", "meta", "_segment")

    def __init__(self, objects=None, columns=None, meta=None, segment=None):
        self.objects = objects
        self.columns = columns
        self.meta = meta or {}
        self._segment = segment  # keeps the worker's mapping alive


class ShardRegistry:
    """Publishes shards; owner of the named segments and their lifecycle."""

    def __init__(self) -> None:
        self.uid = f"{os.getpid() % 100000:x}x{next(_uid_counter):x}"
        self._pid = os.getpid()
        self._entries: dict[str, _Entry] = {}
        self._segment_names: list[str] = []
        self._scope_counter = 0
        self._finalizer = weakref.finalize(self, _unlink_segments, self._segment_names)
        self.metrics = NULL_METRICS
        # Plain lifetime counters (metrics-independent, surfaced by stats()).
        self.publishes = 0
        self.invalidations = 0
        self.columns_republished = 0
        self.columns_carried = 0
        # Current handle per column subkey, so an unchanged column can be
        # *carried*: the same generation (and segment) stays live instead of
        # being retired and republished byte-identically.
        self._column_handles: dict[str, ShardHandle] = {}
        _REGISTRIES[self.uid] = self

    def instrument(self, metrics) -> None:
        """Attach a metrics registry (owner-side counters only).

        Worker-side segment attaches happen in other processes that cannot
        reach this object, so they are deliberately not counted here; the
        owner-side figures (publishes, materialisations and their bytes,
        zero-copy resolutions, retirements) describe what this registry
        shipped versus shared in place.
        """
        self.metrics = NULL_METRICS if metrics is None else metrics

    def allocate_scope(self, prefix: str) -> str:
        """A registry-unique key prefix.

        Co-resident publishers sharing one registry (one pool per engine, one
        scope per tenant service) draw from the same counter, so their keys
        can never collide no matter which pool object handed the scope out.
        """
        self._scope_counter += 1
        return f"{prefix}{self._scope_counter}"

    # ------------------------------------------------------------------ #
    # Publication
    # ------------------------------------------------------------------ #

    def publish(
        self,
        key: str,
        objects,
        build_columns,
        meta: dict | None = None,
        kind: str = "columns",
    ) -> ShardHandle:
        """Publish (or republish) a shard set under ``key``.

        ``objects`` is what in-process consumers read zero-copy;
        ``build_columns`` is a zero-argument callable producing the flat
        ``array('l')`` columns — evaluated only if a process-backend map
        materialises the segment.  Republishing bumps the generation and
        unlinks the previous segment, so outstanding handles go stale.
        """
        previous = self._entries.get(key)
        generation = previous.generation + 1 if previous is not None else 1
        if previous is not None:
            self._retire_segment(self._segment_name(key, previous.generation))
        entry = _Entry(generation, kind, objects, build_columns, dict(meta or {}))
        self._entries[key] = entry
        self.publishes += 1
        self.metrics.inc("shm.publishes")
        return ShardHandle(
            registry_uid=self.uid,
            key=key,
            generation=generation,
            segment_name=self._segment_name(key, generation),
            kind=kind,
        )

    def invalidate(self, key: str) -> None:
        """Retire a key: unlink its segment and stale every outstanding handle.

        Idempotent; unknown keys are a no-op.  The next :meth:`publish` of
        the key continues the generation sequence (it never reuses a retired
        generation, so a stale handle can never accidentally resolve again).
        """
        entry = self._entries.get(key)
        if entry is None:
            return
        self._retire_segment(self._segment_name(key, entry.generation))
        self.invalidations += 1
        self.metrics.inc("shm.invalidations")
        # Keep a tombstone carrying the generation counter forward.
        entry.objects = None
        entry.build_columns = None
        entry.shared = False
        self._column_handles.pop(key, None)

    def publish_columns(
        self, key: str, columns: dict, meta: dict | None = None
    ) -> dict[str, ShardHandle]:
        """Publish named flat columns as **delta-aware** per-column shards.

        Each column lives under its own subkey ``"{key}.{name}"`` with an
        independent generation.  Republishing compares the new column against
        the currently published one: an unchanged column is *carried* — its
        handle, generation and any materialised segment stay live, and only
        ``columns_carried`` ticks — while a changed column is republished
        normally (generation bump, old segment retired).  Streaming
        compaction uses this so a snapshot that only grew its edge columns
        republishes exactly the changed columns instead of staleing every
        tenant's handles.

        Published columns are shared zero-copy with in-process readers, so
        callers must treat them as frozen once handed over (the CSR edge
        columns already are).  Returns ``{name: handle}`` for the *current*
        generation of every column, carried or fresh.
        """
        handles: dict[str, ShardHandle] = {}
        for name, column in columns.items():
            subkey = f"{key}.{name}"
            entry = self._entries.get(subkey)
            carried = self._column_handles.get(subkey)
            if (
                carried is not None
                and entry is not None
                and entry.objects is not None
                and entry.objects == column
            ):
                self.columns_carried += 1
                self.metrics.inc("shm.columns_carried")
                handles[name] = carried
                continue
            handle = self.publish(
                subkey,
                objects=column,
                build_columns=lambda name=name, column=column: {name: column},
                meta=meta,
                kind="column",
            )
            self._column_handles[subkey] = handle
            self.columns_republished += 1
            self.metrics.inc("shm.columns_republished")
            handles[name] = handle
        return handles

    def stats(self) -> dict[str, int]:
        """Owner-side lifetime counters plus current table sizes."""
        return {
            "keys": len(self._entries),
            "generations": sum(entry.generation for entry in self._entries.values()),
            "segments": len(self._segment_names),
            "publishes": self.publishes,
            "invalidations": self.invalidations,
            "columns_republished": self.columns_republished,
            "columns_carried": self.columns_carried,
        }

    def ensure_shared(self, handle: ShardHandle) -> None:
        """Materialise the segment for ``handle`` (no-op if already shared).

        Called by the pool right before a process-backend map; serial and
        thread maps never reach it, which is what makes publication free for
        in-process backends.
        """
        entry = self._current_entry(handle)
        if entry.shared:
            return
        if entry.build_columns is None:
            raise StaleShardError(handle.key, handle.generation, "invalidated")
        columns = entry.build_columns()
        header_entries = []
        offset = 0
        for name, column in columns.items():
            if not isinstance(column, array) or column.typecode != "l":
                raise GraphError(
                    f"shard column {name!r} must be an array('l'), got {type(column)!r}"
                )
            header_entries.append((name, offset, len(column)))
            offset += len(column) * _ITEMSIZE
        header = pickle.dumps(
            {"columns": header_entries, "meta": entry.meta, "kind": entry.kind},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        total = _HEADER_LEN.size + len(header) + offset
        segment = shared_memory.SharedMemory(
            name=handle.segment_name, create=True, size=max(total, 1)
        )
        _OWNED_SEGMENTS[segment.name] = segment
        self._segment_names.append(segment.name)
        buf = segment.buf
        buf[: _HEADER_LEN.size] = _HEADER_LEN.pack(len(header))
        buf[_HEADER_LEN.size : _HEADER_LEN.size + len(header)] = header
        base = _HEADER_LEN.size + len(header)
        for (name, col_offset, _count), column in zip(header_entries, columns.values()):
            raw = column.tobytes()
            buf[base + col_offset : base + col_offset + len(raw)] = raw
        entry.shared = True
        self.metrics.inc("shm.segments_materialised")
        self.metrics.inc("shm.bytes_shipped", total)

    # ------------------------------------------------------------------ #
    # Resolution (owner side)
    # ------------------------------------------------------------------ #

    def view(self, handle: ShardHandle) -> ShardView:
        """Zero-copy view of the owner's objects (generation-checked)."""
        entry = self._current_entry(handle)
        if entry.objects is None:
            raise StaleShardError(handle.key, handle.generation, "invalidated")
        self.metrics.inc("shm.zero_copy_views")
        return ShardView(objects=entry.objects, meta=entry.meta)

    def _current_entry(self, handle: ShardHandle) -> _Entry:
        entry = self._entries.get(handle.key)
        if entry is None:
            raise StaleShardError(handle.key, handle.generation, "unknown key")
        if entry.generation != handle.generation:
            raise StaleShardError(
                handle.key,
                handle.generation,
                f"republished as generation {entry.generation}",
            )
        return entry

    def _segment_name(self, key: str, generation: int) -> str:
        # Short and unique per (process, registry, key, generation); the
        # generation in the name is what staleness detection keys off.
        safe_key = "".join(ch if ch.isalnum() else "-" for ch in key)
        return f"rp{self.uid}-{safe_key}-g{generation}"

    def _retire_segment(self, name: str) -> None:
        segment = _OWNED_SEGMENTS.pop(name, None)
        if segment is not None:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
            self.metrics.inc("shm.segments_evicted")
        if name in self._segment_names:
            self._segment_names.remove(name)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def segment_names(self) -> tuple[str, ...]:
        """Names of the segments currently materialised by this registry."""
        return tuple(self._segment_names)

    def generations(self) -> dict[str, int]:
        """Current generation per published key (tombstones included)."""
        return {key: entry.generation for key, entry in self._entries.items()}

    def close(self) -> None:
        """Unlink every materialised segment and drop all entries (idempotent)."""
        _unlink_segments(self._segment_names)
        self._entries.clear()
        self._column_handles.clear()

    def __enter__(self) -> "ShardRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardRegistry(uid={self.uid!r}, keys={sorted(self._entries)}, "
            f"segments={len(self._segment_names)})"
        )


# ---------------------------------------------------------------------- #
# Attachment (both sides)
# ---------------------------------------------------------------------- #

# Worker-side caches.  Segments are cached by name (which embeds the
# generation); rebuilt shard objects are cached per (registry, key) with the
# generation they belong to, so a republish evicts exactly the stale entries.
# ``_LATEST_SEGMENT`` remembers the last segment attached per (registry, key)
# so the previous generation's mapping is closed instead of accumulating one
# dead mapping per republish (streaming republishes every batch).
_ATTACHED_SEGMENTS: dict[str, ShardView] = {}
_OBJECT_CACHE: dict[tuple[str, str], tuple[int, dict]] = {}
_LATEST_SEGMENT: dict[tuple[str, str], str] = {}


def _attach_segment(handle: ShardHandle) -> ShardView:
    cached = _ATTACHED_SEGMENTS.get(handle.segment_name)
    if cached is not None:
        return cached
    try:
        segment = shared_memory.SharedMemory(name=handle.segment_name)
    except FileNotFoundError:
        raise StaleShardError(
            handle.key, handle.generation, "segment retired or never materialised"
        ) from None
    # The worker only *attaches*.  Under fork the workers share the parent's
    # resource-tracker process and its cache is a set, so the attach-side
    # re-registration is a no-op — ownership stays with the publisher, which
    # is the only side that ever calls ``unlink``.
    buf = segment.buf
    (header_len,) = _HEADER_LEN.unpack(bytes(buf[: _HEADER_LEN.size]))
    header = pickle.loads(bytes(buf[_HEADER_LEN.size : _HEADER_LEN.size + header_len]))
    base = _HEADER_LEN.size + header_len
    columns: dict[str, tuple[int, int]] = {
        name: (base + offset, count) for name, offset, count in header["columns"]
    }
    view = ShardView(columns=columns, meta=header["meta"], segment=segment)
    _ATTACHED_SEGMENTS[handle.segment_name] = view
    # Evict cached objects and the previous generation's mapping for this
    # key — a republish means they can never be read again.
    cache_key = (handle.registry_uid, handle.key)
    cached_objects = _OBJECT_CACHE.get(cache_key)
    if cached_objects is not None and cached_objects[0] != handle.generation:
        del _OBJECT_CACHE[cache_key]
    previous_name = _LATEST_SEGMENT.get(cache_key)
    if previous_name is not None and previous_name != handle.segment_name:
        stale = _ATTACHED_SEGMENTS.pop(previous_name, None)
        if stale is not None and stale._segment is not None:
            try:  # pragma: no cover - platform mapping teardown
                stale._segment.close()
            except BufferError:
                pass
    _LATEST_SEGMENT[cache_key] = handle.segment_name
    return view


def attach(handle: ShardHandle) -> ShardView:
    """Resolve a handle to its shard data — one code path for every backend.

    In the owning process (serial/thread backends, or the parent folding
    results) this returns the registry's original objects zero-copy; in a
    worker process it attaches the named segment (cached) and returns its
    column table.  Raises :class:`~repro.errors.StaleShardError` when the
    generation was republished or invalidated on either side.
    """
    registry = _REGISTRIES.get(handle.registry_uid)
    if registry is not None and registry._pid == os.getpid():
        return registry.view(handle)
    return _attach_segment(handle)


def _column_slice(view: ShardView, name: str, start: int, stop: int) -> array:
    """Copy ``column[start:stop]`` out of an attached segment (one memcpy)."""
    byte_base, count = view.columns[name]
    if not (0 <= start <= stop <= count):
        raise GraphError(f"column {name!r} slice {start}:{stop} outside 0..{count}")
    out = array("l")
    out.frombytes(
        bytes(view._segment.buf[byte_base + start * _ITEMSIZE : byte_base + stop * _ITEMSIZE])
    )
    return out


def _column_value(view: ShardView, name: str, index: int) -> int:
    byte_base, count = view.columns[name]
    if not (0 <= index < count):
        raise GraphError(f"column {name!r} index {index} outside 0..{count - 1}")
    return _column_slice(view, name, index, index + 1)[0]


def numpy_column(handle: ShardHandle, name: str, start: int = 0, stop: int | None = None):
    """Zero-copy read-only numpy view over one shared-memory column slice.

    Where :func:`_column_slice` copies the bytes out into an ``array('l')``,
    this maps the numpy kernels straight onto the segment: one
    ``np.frombuffer`` over the mapped buffer, no memcpy.  The rules match the
    kernel layer's (:mod:`repro.kernels.numpy_backend`):

    * the view is returned **read-only** — shards are published data, and a
      write would silently corrupt every attached reader;
    * the view is only valid while the segment mapping is alive — never
      stash it past the shard's generation (a republish retires the
      segment); the view keeps the mapping referenced meanwhile, so the
      owner's ``close`` is deferred (not broken) by a live view.

    The segment must be materialised (:meth:`ShardRegistry.ensure_shared`
    runs automatically before any process-backend map); raises
    :class:`~repro.errors.StaleShardError` otherwise, and
    :class:`~repro.errors.GraphError` without numpy.
    """
    from repro.kernels import numpy_available

    if not numpy_available():
        raise GraphError(
            "numpy_column needs numpy (install the [numpy] extra); "
            "use attach()/_column_slice for the pure path"
        )
    import numpy as np

    view = _attach_segment(handle)
    byte_base, count = view.columns[name]
    if stop is None:
        stop = count
    if not (0 <= start <= stop <= count):
        raise GraphError(f"column {name!r} slice {start}:{stop} outside 0..{count}")
    arr = np.frombuffer(
        view._segment.buf,
        dtype=f"i{_ITEMSIZE}",
        count=stop - start,
        offset=byte_base + start * _ITEMSIZE,
    )
    arr.flags.writeable = False
    return arr


# ---------------------------------------------------------------------- #
# Graph-part shards (Lemma 2.1 edge parts / Lemma 2.2 vertex parts)
# ---------------------------------------------------------------------- #


def publish_edge_parts(registry: ShardRegistry, key: str, num_vertices: int, parts) -> ShardHandle:
    """Publish Lemma 2.1 edge-partition parts (graphs on a shared vertex set).

    The segment holds the parts' canonical edge columns concatenated, plus a
    part-offset column; a worker rebuilds part ``i`` from two column slices.
    """
    parts = list(parts)

    def build_columns() -> dict[str, array]:
        edge_u = array("l")
        edge_v = array("l")
        offsets = array("l", [0])
        for part in parts:
            edge_u.extend(part._edge_u)
            edge_v.extend(part._edge_v)
            offsets.append(len(edge_u))
        return {"edge_u": edge_u, "edge_v": edge_v, "offsets": offsets}

    return registry.publish(
        key,
        objects=parts,
        build_columns=build_columns,
        meta={"num_vertices": int(num_vertices), "num_parts": len(parts)},
        kind="edge-parts",
    )


def publish_vertex_parts(registry: ShardRegistry, key: str, parts) -> ShardHandle:
    """Publish Lemma 2.2 vertex-partition parts (induced subgraphs).

    Beyond the edge columns, each part's local-to-parent id map travels as a
    third concatenated column — the payload that dominated the re-pickle cost
    of the old fan-out (a tuple of Python ints per part, per superstep).
    """
    parts = list(parts)

    def build_columns() -> dict[str, array]:
        edge_u = array("l")
        edge_v = array("l")
        parents = array("l")
        edge_offsets = array("l", [0])
        vertex_offsets = array("l", [0])
        for part in parts:
            edge_u.extend(part._edge_u)
            edge_v.extend(part._edge_v)
            parents.extend(part.parent_ids)
            edge_offsets.append(len(edge_u))
            vertex_offsets.append(len(parents))
        return {
            "edge_u": edge_u,
            "edge_v": edge_v,
            "parents": parents,
            "edge_offsets": edge_offsets,
            "vertex_offsets": vertex_offsets,
        }

    return registry.publish(
        key,
        objects=parts,
        build_columns=build_columns,
        meta={"num_parts": len(parts)},
        kind="vertex-parts",
    )


def shard_graph(handle: ShardHandle, index: int):
    """Part ``index`` of a published graph partition — any backend.

    Owner side: the original part object, zero-copy.  Worker side: rebuilt
    from the segment's column slices and cached per ``(key, generation,
    index)``, so repeated supersteps over an unchanged publication pay only
    the descriptor.
    """
    view = attach(handle)
    if view.objects is not None:
        return view.objects[index]
    cache_key = (handle.registry_uid, handle.key)
    generation_objects = _OBJECT_CACHE.get(cache_key)
    if generation_objects is None or generation_objects[0] != handle.generation:
        generation_objects = (handle.generation, {})
        _OBJECT_CACHE[cache_key] = generation_objects
    cached = generation_objects[1].get(index)
    if cached is not None:
        return cached
    # Imported here so repro.engine stays import-light for non-graph users.
    from repro.graph.graph import Graph, _rebuild_induced_subgraph

    if handle.kind == "edge-parts":
        start = _column_value(view, "offsets", index)
        stop = _column_value(view, "offsets", index + 1)
        part = Graph._from_columns(
            view.meta["num_vertices"],
            _column_slice(view, "edge_u", start, stop),
            _column_slice(view, "edge_v", start, stop),
        )
    elif handle.kind == "vertex-parts":
        e_start = _column_value(view, "edge_offsets", index)
        e_stop = _column_value(view, "edge_offsets", index + 1)
        v_start = _column_value(view, "vertex_offsets", index)
        v_stop = _column_value(view, "vertex_offsets", index + 1)
        part = _rebuild_induced_subgraph(
            v_stop - v_start,
            _column_slice(view, "edge_u", e_start, e_stop),
            _column_slice(view, "edge_v", e_start, e_stop),
            tuple(_column_slice(view, "parents", v_start, v_stop)),
        )
    else:
        raise GraphError(f"handle kind {handle.kind!r} is not a graph partition")
    generation_objects[1][index] = part
    return part


# ---------------------------------------------------------------------- #
# Graph edge columns (streaming compacted snapshots, delta-aware)
# ---------------------------------------------------------------------- #


def publish_graph_columns(registry: ShardRegistry, key: str, graph) -> dict[str, ShardHandle]:
    """Publish a CSR graph's canonical edge columns as per-column shards.

    The streaming service calls this after every compaction: columns that
    the compaction did not change (byte-identical ``array('l')`` content)
    are carried at their current generation, so readers holding their
    handles are undisturbed and only the changed columns go stale.
    """
    edge_u, edge_v = graph.edge_endpoints
    return registry.publish_columns(
        key,
        {"edge_u": edge_u, "edge_v": edge_v},
        meta={"num_vertices": graph.num_vertices},
    )


def graph_column(handle: ShardHandle, name: str) -> array:
    """One published edge column — owner zero-copy, worker one memcpy."""
    view = attach(handle)
    if view.objects is not None:
        return view.objects
    if handle.kind != "column":
        raise GraphError(f"handle kind {handle.kind!r} is not a published column")
    _byte_base, count = view.columns[name]
    return _column_slice(view, name, 0, count)


# ---------------------------------------------------------------------- #
# Out-table shards (batch-parallel flip repair, process backend)
# ---------------------------------------------------------------------- #


def publish_out_shards(registry: ShardRegistry, key: str, shards) -> ShardHandle:
    """Publish per-group out-table shards (vertex -> sorted out-heads).

    ``shards`` is a list of dicts, one per cap-safe conflict group.  The
    segment stores all shards as three flat columns (vertices, CSR-style
    head offsets, heads) plus per-shard vertex offsets; a worker rebuilds
    its group's dict from slices and ships back only a *delta*.
    """
    shards = list(shards)

    def build_columns() -> dict[str, array]:
        vertices = array("l")
        heads = array("l")
        head_offsets = array("l", [0])
        shard_offsets = array("l", [0])
        for shard in shards:
            for vertex in shard:  # dicts preserve the (sorted) insertion order
                vertices.append(vertex)
                heads.extend(shard[vertex])
                head_offsets.append(len(heads))
            shard_offsets.append(len(vertices))
        return {
            "vertices": vertices,
            "heads": heads,
            "head_offsets": head_offsets,
            "shard_offsets": shard_offsets,
        }

    return registry.publish(
        key,
        objects=shards,
        build_columns=build_columns,
        meta={"num_shards": len(shards)},
        kind="out-shards",
    )


def out_shard(handle: ShardHandle, index: int) -> dict[int, tuple[int, ...]]:
    """Shard ``index`` of a published out-table — any backend.

    Not object-cached on the worker side: the out-table is republished every
    batch (a new generation), so a cache could never hit.
    """
    view = attach(handle)
    if view.objects is not None:
        return view.objects[index]
    if handle.kind != "out-shards":
        raise GraphError(f"handle kind {handle.kind!r} is not an out-table shard set")
    v_start = _column_value(view, "shard_offsets", index)
    v_stop = _column_value(view, "shard_offsets", index + 1)
    vertices = _column_slice(view, "vertices", v_start, v_stop)
    head_offsets = _column_slice(view, "head_offsets", v_start, v_stop + 1)
    heads = _column_slice(view, "heads", head_offsets[0], head_offsets[-1])
    base = head_offsets[0]
    return {
        vertex: tuple(heads[head_offsets[i] - base : head_offsets[i + 1] - base])
        for i, vertex in enumerate(vertices)
    }
