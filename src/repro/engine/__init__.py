"""Superstep execution engine for parallel MPC task fan-out.

Public surface:

* :class:`~repro.engine.executor.ParallelExecutor` — serial / thread /
  process backends with a determinism contract and serial auto-pick.
* :class:`~repro.engine.pool.WorkerPool` — resident workers plus a
  shared-memory shard registry: publish graph shards once, ship only task
  descriptors + deltas per superstep.
* :class:`~repro.engine.shm.ShardRegistry` / :func:`~repro.engine.shm.attach`
  — the generation-tagged shared-memory data plane behind the pool.
* :func:`~repro.engine.executor.derive_seed` /
  :func:`~repro.engine.executor.seed_stream` — per-task RNG streams.
* :class:`~repro.engine.ledger.SubLedger` — the fork/merge accounting
  protocol implemented by :class:`repro.mpc.cluster.MPCCluster`.
"""

from repro.engine.executor import (
    BACKENDS,
    IN_PROCESS,
    PROCESS,
    SERIAL,
    THREAD,
    ParallelExecutor,
    derive_seed,
    seed_stream,
)
from repro.engine.ledger import SubLedger, fork_ledgers
from repro.engine.pool import WorkerPool
from repro.engine.shm import ShardHandle, ShardRegistry

__all__ = [
    "BACKENDS",
    "IN_PROCESS",
    "PROCESS",
    "SERIAL",
    "THREAD",
    "ParallelExecutor",
    "ShardHandle",
    "ShardRegistry",
    "SubLedger",
    "WorkerPool",
    "derive_seed",
    "fork_ledgers",
    "seed_stream",
]
