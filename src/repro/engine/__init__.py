"""Superstep execution engine for parallel MPC task fan-out.

Public surface:

* :class:`~repro.engine.executor.ParallelExecutor` — serial / thread /
  process backends with a determinism contract and serial auto-pick.
* :func:`~repro.engine.executor.derive_seed` /
  :func:`~repro.engine.executor.seed_stream` — per-task RNG streams.
* :class:`~repro.engine.ledger.SubLedger` — the fork/merge accounting
  protocol implemented by :class:`repro.mpc.cluster.MPCCluster`.
"""

from repro.engine.executor import (
    BACKENDS,
    IN_PROCESS,
    PROCESS,
    SERIAL,
    THREAD,
    ParallelExecutor,
    derive_seed,
    seed_stream,
)
from repro.engine.ledger import SubLedger, fork_ledgers

__all__ = [
    "BACKENDS",
    "IN_PROCESS",
    "PROCESS",
    "SERIAL",
    "THREAD",
    "ParallelExecutor",
    "SubLedger",
    "derive_seed",
    "fork_ledgers",
    "seed_stream",
]
