"""Algorithm 4 — ``PartialLayerAssignment`` — and the Lemma 3.13 driver.

Algorithm 4 composes the previous pieces: run Algorithm 2 to give every vertex
a pruned tree view, run Algorithm 3 on every tree, and assign every graph
vertex the minimum layer it receives from *any* occurrence in *any* tree.

Guarantees reproduced and tested:

* **Claim 3.12** — the resulting partial assignment has out-degree at most
  ``(s + 1)·k``.
* **Lemma 3.9** — vertices with few strictly-increasing incoming paths
  (``NumPathsIn ≤ √B`` w.r.t. any valid reference assignment) are assigned a
  layer no larger than their reference layer; combined with Lemma 2.4 this
  yields the geometric-decay property of **Lemma 3.13**.
* **Claim 3.11** — ``O(s)`` MPC rounds, ``O(n^δ + B)`` local memory and
  ``O(nB + m)`` global memory; enforced by the cluster when one is supplied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.assign_tree import partial_layer_assignment_tree
from repro.core.exponentiate import ExponentiationResult, exponentiate_and_local_prune
from repro.core.layering import UNASSIGNED, PartialLayerAssignment
from repro.core.parameters import Parameters, choose_parameters
from repro.errors import ParameterError
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.primitives import aggregate_by_key


@dataclass
class PartialAssignmentResult:
    """Output of Algorithm 4 plus the intermediate exponentiation result."""

    assignment: PartialLayerAssignment
    exponentiation: ExponentiationResult
    params: Parameters


def partial_layer_assignment(
    graph: Graph,
    params: Parameters,
    cluster: MPCCluster | None = None,
) -> PartialAssignmentResult:
    """Run Algorithm 4 with explicit parameters ``(B, k, L, s)``.

    Every vertex ends up with either a finite layer in ``1..params.num_layers``
    or ``∞``; the declared out-degree of the returned assignment is
    ``(s + 1)·k`` per Claim 3.12.
    """
    expo = exponentiate_and_local_prune(graph, params, cluster=cluster)

    a = params.layer_out_degree
    best_layer: dict[int, float] = {v: UNASSIGNED for v in graph.vertices}
    contributions: list[tuple[int, float]] = []
    for v in graph.vertices:
        tree_assignment = partial_layer_assignment_tree(
            graph, expo.tree(v), out_degree_parameter=a, num_layers=params.num_layers
        )
        for vertex, layer in tree_assignment.vertex_layers().items():
            contributions.append((vertex, layer))
            if layer < best_layer[vertex]:
                best_layer[vertex] = layer

    if cluster is not None:
        # Combining per-tree layers into the global minimum is an
        # aggregate-by-key over (vertex, layer) pairs: constant MPC rounds.
        aggregate_by_key(cluster, contributions, min, label="assignment:min-combine")

    assignment = PartialLayerAssignment(
        graph=graph,
        layer_of=best_layer,
        num_layers=params.num_layers,
        out_degree=a,
    )
    return PartialAssignmentResult(assignment=assignment, exponentiation=expo, params=params)


@dataclass
class DecayingAssignmentResult:
    """Output of the Lemma 3.13 driver."""

    assignment: PartialLayerAssignment
    params: Parameters
    rounds_charged: int


def partial_assignment_with_decay(
    graph: Graph,
    k: int,
    budget: int,
    cluster: MPCCluster | None = None,
    num_layers: int | None = None,
) -> DecayingAssignmentResult:
    """Lemma 3.13: one shot of Algorithm 4 with parameters giving geometric decay.

    Parameters mirror the lemma: ``L = ⌈c_L · log_k(B)⌉`` layers and
    ``s = Θ(log log n)`` steps, producing a partial assignment with out-degree
    at most ``O(k log log n)`` and ``|{v : ℓ(v) ≥ j}| ≤ 0.5^{j-1}·|V|`` — the
    decay is validated empirically by the E5 benchmark rather than assumed.
    """
    if k < 1:
        raise ParameterError("k must be at least 1")
    if budget < 4:
        raise ParameterError("budget B must be at least 4")
    if num_layers is None:
        if budget > k:
            num_layers = max(1, int(math.ceil(math.log(budget) / math.log(max(k, 2)))))
        else:
            num_layers = 1
    # Lemma 3.7 needs s > log2(L); the paper's ⌈10 log log n⌉ is a proof-friendly
    # overshoot (its L is itself Θ(log log n)-sized), so the minimal admissible
    # step count keeps the round constant small without changing the structure.
    steps = max(int(math.ceil(math.log2(max(num_layers, 2)))) + 1, 2)
    params = Parameters(k=k, budget=budget, steps=steps, num_layers=num_layers)

    before = cluster.stats.num_rounds if cluster is not None else 0
    result = partial_layer_assignment(graph, params, cluster=cluster)
    after = cluster.stats.num_rounds if cluster is not None else 0
    return DecayingAssignmentResult(
        assignment=result.assignment,
        params=params,
        rounds_charged=after - before,
    )


def default_parameters_for(graph: Graph, arboricity_bound: int, delta: float = 0.5) -> Parameters:
    """Convenience wrapper over :func:`repro.core.parameters.choose_parameters`."""
    return choose_parameters(
        num_vertices=max(graph.num_vertices, 1),
        arboricity_bound=arboricity_bound,
        delta=delta,
    )
