"""Lemma 2.1 (edge partitioning) and Lemma 2.2 (vertex partitioning).

Both lemmas reduce the effective arboricity: partitioning the edges (resp.
vertices) of a graph with arboricity λ uniformly at random into
``L = ⌈k / log n⌉`` parts yields parts whose arboricity is ``O(log n)`` with
high probability.  Theorem 1.1 uses the edge version (orient each part
separately and merge); Theorem 1.2 uses the vertex version (color each induced
part with its own palette).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.graph.graph import Graph, InducedSubgraph


def number_of_parts(arboricity_bound: int, num_vertices: int) -> int:
    """The paper's part count ``L = ⌈k / log n⌉`` (at least 1)."""
    if arboricity_bound < 0:
        raise ParameterError("arboricity_bound must be non-negative")
    log_n = max(math.log2(max(num_vertices, 2)), 1.0)
    return max(1, int(math.ceil(arboricity_bound / log_n)))


@dataclass
class EdgePartition:
    """Result of Lemma 2.1: edge-disjoint subgraphs covering all edges."""

    parts: list[Graph]

    @property
    def num_parts(self) -> int:
        """Number of parts ``L``."""
        return len(self.parts)

    def covers(self, graph: Graph) -> bool:
        """Whether the parts partition the original edge set exactly."""
        seen: set = set()
        for part in self.parts:
            for edge in part.edges:
                if edge in seen:
                    return False
                seen.add(edge)
        return seen == set(graph.edges)


def random_edge_partition(
    graph: Graph,
    arboricity_bound: int,
    rng: random.Random | None = None,
    seed: int | None = None,
    num_parts: int | None = None,
) -> EdgePartition:
    """Lemma 2.1: partition the edges into ``⌈k / log n⌉`` parts uniformly at random.

    Every part keeps the full vertex set; with high probability each part has
    arboricity ``O(log n)`` (checked empirically by experiment E4).
    """
    rng = rng if rng is not None else random.Random(seed)
    parts_count = (
        num_parts
        if num_parts is not None
        else number_of_parts(arboricity_bound, graph.num_vertices)
    )
    if parts_count < 1:
        raise ParameterError("num_parts must be at least 1")
    buckets: list[list] = [[] for _ in range(parts_count)]
    for edge in graph.edges:
        buckets[rng.randrange(parts_count)].append(edge)
    # Each bucket inherits the canonical sorted order from graph.edges, so
    # the parts can be assembled through the trusted fast path.
    parts = [
        Graph._from_canonical_sorted(graph.num_vertices, bucket) for bucket in buckets
    ]
    return EdgePartition(parts=parts)


@dataclass
class VertexPartition:
    """Result of Lemma 2.2: vertex-disjoint induced subgraphs."""

    parts: list[InducedSubgraph]

    @property
    def num_parts(self) -> int:
        """Number of parts ``L``."""
        return len(self.parts)

    @property
    def total_edges(self) -> int:
        """Total edges across all parts (the work hint for the engine fan-out).

        Cross-part edges vanish in the induced subgraphs, so this is at most
        the original edge count.
        """
        return sum(part.num_edges for part in self.parts)

    def covers(self, graph: Graph) -> bool:
        """Whether the parts partition the original vertex set exactly."""
        seen: set[int] = set()
        for part in self.parts:
            for parent_id in part.parent_ids:
                if parent_id in seen:
                    return False
                seen.add(parent_id)
        return seen == set(graph.vertices)


def random_vertex_partition(
    graph: Graph,
    arboricity_bound: int,
    rng: random.Random | None = None,
    seed: int | None = None,
    num_parts: int | None = None,
) -> VertexPartition:
    """Lemma 2.2: partition the vertices into ``⌈k / log n⌉`` parts uniformly at random.

    Each part is the subgraph induced by its vertices; with high probability
    each part has arboricity ``O(log n)``.
    """
    rng = rng if rng is not None else random.Random(seed)
    parts_count = (
        num_parts
        if num_parts is not None
        else number_of_parts(arboricity_bound, graph.num_vertices)
    )
    if parts_count < 1:
        raise ParameterError("num_parts must be at least 1")
    # One pass buckets the vertices (consuming exactly one draw per vertex in
    # vertex order — the RNG contract the engine-backed coloring pipeline
    # relies on for worker-count determinism); the old per-part rescan of the
    # whole vertex set was O(n·L).
    buckets: list[list[int]] = [[] for _ in range(parts_count)]
    for v in graph.vertices:
        buckets[rng.randrange(parts_count)].append(v)
    parts = [graph.induced_subgraph(bucket) for bucket in buckets]
    return VertexPartition(parts=parts)
