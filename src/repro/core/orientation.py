"""Theorem 1.1 — the density-dependent orientation algorithm.

Pipeline (see the proof of Theorem 1.1):

1. Obtain an arboricity proxy ``k`` with ``k ∈ [c·λ, 2c·λ]`` (the paper guesses
   it by running every ``(1+ε)^i`` estimate in parallel at an ``O(log n)``
   global-memory premium; we compute the degeneracy, which is a 2-approximation
   of λ, and scale it — same outcome, one extra "round" charged for the guess).
2. If ``k`` is already ``O(log n)``-ish, run the Lemma 3.15 complete layer
   assignment directly and orient every edge toward the strictly higher layer
   (ties toward the higher id).
3. Otherwise apply Lemma 2.1: randomly partition the edges into
   ``⌈k / log n⌉`` parts, orient each part with the layering pipeline (each
   part has arboricity ``O(log n)`` w.h.p.), and merge the orientations.

The Lemma 2.1 parts are *independent*: the paper orients them simultaneously
on the shared cluster, so their layering rounds coincide rather than add.
The large-λ branch therefore fans the parts out through the worker pool
(:class:`repro.engine.WorkerPool`): the parts' CSR columns are published
once into the pool's shared-memory shard registry (:mod:`repro.engine.shm`)
and each task ships only a shard handle plus a part index.  Each part runs
against its own sub-ledger (:meth:`repro.mpc.cluster.MPCCluster.fork`), the
fold charges rounds as max-over-parts, and the part orientations combine as
a balanced merge tree, charging ``⌈log2 L⌉`` extra rounds (label
``merge-orientations``).
Results are identical for any worker count and backend: the parts are fixed
by the partition RNG before the fan-out and each part's layering pipeline is
deterministic.

The output's maximum outdegree is ``O(λ · log log n)`` — experiment E1
measures the realised constant.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.full_assignment import LayerAssignmentRun, complete_layer_assignment
from repro.core.partitioning import random_edge_partition
from repro.engine import ParallelExecutor, WorkerPool
from repro.engine import shm
from repro.engine.shm import ShardHandle
from repro.errors import GraphError, ParameterError
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.obs.tracer import NULL_TRACER


@dataclass
class OrientationRun:
    """Full output of the Theorem 1.1 pipeline, with measurements."""

    orientation: Orientation
    max_outdegree: int
    arboricity_proxy: int
    rounds: int
    used_edge_partitioning: bool
    num_parts: int
    partition_runs: list[LayerAssignmentRun] = field(default_factory=list)
    hpartition: HPartition | None = None
    cluster: MPCCluster | None = None

    def outdegree_to_arboricity_ratio(self) -> float:
        """``max_outdegree / max(arboricity_proxy, 1)`` — the quality measure of E1."""
        return self.max_outdegree / max(self.arboricity_proxy, 1)


def _orient_from_run(graph: Graph, run: LayerAssignmentRun) -> tuple[Orientation, HPartition]:
    partition = run.to_hpartition()
    return partition.to_orientation(), partition


def _orient_part_task(
    handle: ShardHandle, index: int, k: int, delta: float, ledger: MPCCluster | None
) -> tuple[LayerAssignmentRun, Orientation, object]:
    """Orient one Lemma 2.1 part against its own sub-ledger.

    Module-level so the process backend can pickle it by reference.  The part
    itself is *not* in the task tuple: it is read from the published CSR shard
    segment (:func:`repro.engine.shm.shard_graph`), which in-process backends
    resolve zero-copy to the owner's part object and process workers attach
    (and cache per generation) from shared memory.  Returns the sub-ledger's
    stats rather than the cluster — that is all the parent's fold needs.
    """
    part = shm.shard_graph(handle, index)
    run = complete_layer_assignment(part, k=k, delta=delta, cluster=ledger)
    part_orientation, _ = _orient_from_run(part, run)
    return run, part_orientation, (ledger.stats if ledger is not None else None)


def _merge_orientation_tree(
    orientations: list[Orientation], cluster: MPCCluster
) -> Orientation | None:
    """Combine part orientations as a balanced binary merge tree.

    Each tree level merges disjoint pairs simultaneously (one constant-round
    aggregation per level in the model), so ``L`` parts cost ``⌈log2 L⌉``
    rounds instead of the ``L - 1`` a left fold would charge.  The result is
    independent of the merge shape — the merged head map is the union of the
    (edge-disjoint) part maps — which the determinism tests pin down.
    """
    level = list(orientations)
    while len(level) > 1:
        next_level = [
            level[i].merge_with(level[i + 1]) for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
        cluster.charge_rounds(1, label="merge-orientations")
    return level[0] if level else None


def _check_merged_covers(graph: Graph, merged: Orientation | None) -> Orientation:
    """Lemma 2.1 invariant: the oriented parts cover every input edge exactly once.

    Edge-disjointness is already enforced by :meth:`Orientation.merge_with`
    (it rejects overlapping parts), so the only remaining failure mode is a
    partition that *misses* edges — which would silently produce an
    orientation of a subgraph.  Rather than trying to "repair" such a merge
    (the old fallback re-wrapped the incomplete direction map and crashed with
    a confusing coverage error), we fail loudly with the actual invariant that
    broke.
    """
    if merged is None:
        if graph.num_edges == 0:
            return Orientation(graph, {})
        raise GraphError(
            f"edge partition produced no oriented parts although the graph has "
            f"{graph.num_edges} edges"
        )
    if merged.graph != graph:
        raise GraphError(
            f"edge partition does not cover the input graph exactly: the merged "
            f"orientation spans {merged.graph.num_edges} of {graph.num_edges} edges"
        )
    return merged


def orient(
    graph: Graph,
    delta: float = 0.5,
    k: int | None = None,
    k_factor: float = 2.0,
    seed: int | None = None,
    cluster: MPCCluster | None = None,
    force_edge_partitioning: bool | None = None,
    workers: int = 1,
    executor: ParallelExecutor | None = None,
    pool: WorkerPool | None = None,
    tracer=None,
) -> OrientationRun:
    """Compute an ``O(λ log log n)``-outdegree orientation (Theorem 1.1).

    Parameters
    ----------
    graph:
        Input graph.
    delta:
        Local-memory exponent of the simulated cluster.
    k:
        Optional explicit arboricity proxy; computed from the degeneracy when
        omitted (charging one extra guess round, mirroring the paper's
        parallel-guess trick).
    k_factor:
        Multiplier applied to the arboricity estimate (paper: 100–200; we
        default to 2).
    seed:
        Seed for the random edge partitioning (only used in the large-λ branch).
    cluster:
        Optional pre-built cluster; a fresh one sized for ``graph`` is created
        when omitted so every run reports round/memory statistics.
    force_edge_partitioning:
        Override the automatic branch selection (used by tests/ablations).
    workers:
        Host-side parallelism for the large-λ branch: the Lemma 2.1 parts
        fan out through a :class:`~repro.engine.ParallelExecutor` with this
        many workers (1 = serial; the round accounting is max-over-parts
        either way).  Results are identical for any worker count.
    executor:
        Optional pre-built executor (overrides ``workers``); tests use it to
        pin a specific backend.  Wrapped in a transient borrowed
        :class:`~repro.engine.WorkerPool` for the call.
    pool:
        Optional resident :class:`~repro.engine.WorkerPool` (overrides both
        ``workers`` and ``executor``).  The Lemma 2.1 parts are published
        into the pool's shard registry and each task ships only a handle and
        a part index; repeated calls on one pool reuse its resident workers.
    tracer:
        Optional :class:`repro.obs.Tracer`: records kernel-level wall-clock
        spans (layer assignment, part fan-out, merge tree) carrying the
        ledger delta each charged.  Observation only — results and round
        counts are byte-identical with tracing on or off.
    """
    if graph.num_vertices == 0:
        empty = Orientation(graph, {})
        return OrientationRun(
            orientation=empty,
            max_outdegree=0,
            arboricity_proxy=0,
            rounds=0,
            used_edge_partitioning=False,
            num_parts=1,
        )

    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))
        cluster.load_graph(graph)
    tracer = NULL_TRACER if tracer is None else tracer
    if tracer.enabled:
        cluster.instrument(tracer)

    rng = random.Random(seed)
    if k is None:
        estimate = max(arboricity_upper_bound(graph), 1)
        k = max(2, int(math.ceil(k_factor * estimate)))
        # The paper obtains k by running all (1+eps)^i guesses in parallel,
        # which costs a constant number of extra rounds and an O(log n) factor
        # of global memory; we charge the rounds explicitly.
        cluster.charge_rounds(1, label="arboricity-guess")
    if k < 1:
        raise ParameterError("k must be at least 1")
    arboricity_proxy = max(1, int(math.ceil(k / max(k_factor, 1.0))))

    log_n = max(math.log2(max(graph.num_vertices, 2)), 1.0)
    large_lambda = k > 4 * log_n
    if force_edge_partitioning is not None:
        large_lambda = force_edge_partitioning

    partition_runs: list[LayerAssignmentRun] = []
    if not large_lambda:
        with tracer.span("orient:layers", cat="kernel", cluster=cluster):
            run = complete_layer_assignment(graph, k=k, delta=delta, cluster=cluster)
            orientation, hpartition = _orient_from_run(graph, run)
        partition_runs.append(run)
        return OrientationRun(
            orientation=orientation,
            max_outdegree=orientation.max_outdegree(),
            arboricity_proxy=arboricity_proxy,
            rounds=cluster.stats.num_rounds,
            used_edge_partitioning=False,
            num_parts=1,
            partition_runs=partition_runs,
            hpartition=hpartition,
            cluster=cluster,
        )

    # Large-λ branch: Lemma 2.1 edge partitioning, orient all parts in
    # parallel supersteps (each on its own sub-ledger), balanced-tree merge.
    edge_partition = random_edge_partition(graph, arboricity_bound=k, rng=rng)
    cluster.charge_rounds(1, label="edge-partition")
    per_part_k = max(2, int(math.ceil(2 * log_n)))
    # Empty parts happen whenever the part count exceeds the edge count;
    # they contribute nothing and are simply skipped.
    parts = [part for part in edge_partition.parts if part.num_edges]
    owns_pool = pool is None
    if owns_pool:
        # A borrowed executor is wrapped (not owned): closing the transient
        # pool unlinks its segments but leaves the caller's workers resident.
        pool = WorkerPool(workers=workers, executor=executor)
    if tracer.enabled:
        pool.instrument(tracer)
    try:
        with tracer.span(
            "orient:fanout", cat="kernel", cluster=cluster, parts=len(parts)
        ):
            handle = pool.publish_edge_parts("orient-parts", graph.num_vertices, parts)
            results = pool.map(
                _orient_part_task,
                [(handle, i, per_part_k, delta, cluster.fork()) for i in range(len(parts))],
                total_work=sum(part.num_edges for part in parts),
                handles=(handle,),
            )
    finally:
        if owns_pool:
            pool.close()
    with tracer.span("orient:merge", cat="kernel", cluster=cluster):
        partition_runs.extend(run for run, _orientation, _stats in results)
        cluster.merge_parallel([stats for _run, _orientation, stats in results])
        merged = _merge_orientation_tree(
            [part_orientation for _run, part_orientation, _stats in results], cluster
        )
        merged = _check_merged_covers(graph, merged)

    return OrientationRun(
        orientation=merged,
        max_outdegree=merged.max_outdegree(),
        arboricity_proxy=arboricity_proxy,
        rounds=cluster.stats.num_rounds,
        used_edge_partitioning=True,
        num_parts=edge_partition.num_parts,
        partition_runs=partition_runs,
        cluster=cluster,
    )


def orientation_outdegree_bound(
    arboricity: int, num_vertices: int, constant: float = 8.0
) -> int:
    """The Theorem 1.1 target bound ``O(λ · log log n)`` with an explicit constant.

    Used by tests and the E1 benchmark to check the *shape* of the guarantee:
    ``max_outdegree ≤ constant · max(λ, 1) · max(log2 log2 n, 1)``.
    """
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    return int(math.ceil(constant * max(arboricity, 1) * loglog))
