"""Density / coreness decomposition on top of the orientation pipeline.

The paper notes (footnote 2) that [GLM19] state their result for *coreness
decomposition*, obtained "by simply running the algorithm for every
``k = (1+ε)^i`` coreness/arboricity estimate in parallel".  This module
reproduces that application on top of our Theorem 1.1 machinery:

* :func:`approximate_coreness` — for every guess ``k_i = ⌈(1+ε)^i⌉`` run the
  peel-to-layer pipeline restricted to that guess; a vertex's coreness
  estimate is the smallest guess at which it gets peeled.  The result is a
  per-vertex value within a constant factor of the true coreness (our
  validator checks the factor explicitly against the exact values).
* :func:`exact_coreness` — the classical centralised algorithm (bucket
  peeling), used as ground truth by the tests and the ablation benchmark.
* :func:`densest_subgraph_from_coreness` — the standard 2-approximation of the
  densest subgraph read off the largest-coreness core, which downstream users
  typically want next.

Because all guesses run "in parallel" in the MPC model, the round cost charged
is the maximum over guesses plus a constant for combining, and the global
memory cost is the sum — matching how the paper accounts for the same trick in
Theorem 1.1's proof.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.graph.arboricity import degeneracy_ordering
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


def exact_coreness(graph: Graph) -> dict[int, int]:
    """Exact core numbers via the classical peeling algorithm (ground truth)."""
    _order, cores, _d = degeneracy_ordering(graph)
    return {v: cores[v] for v in graph.vertices}


@dataclass
class CorenessResult:
    """Output of the guess-in-parallel approximate coreness decomposition."""

    estimates: dict[int, int]
    guesses: list[int]
    rounds: int
    epsilon: float
    cluster: MPCCluster | None = None
    per_guess_peeled: dict[int, int] = field(default_factory=dict)

    def max_estimate(self) -> int:
        """Largest coreness estimate (an O(1)-approximation of the degeneracy)."""
        return max(self.estimates.values(), default=0)

    def core(self, threshold: int) -> list[int]:
        """Vertices whose estimated coreness is at least ``threshold``."""
        return [v for v, value in self.estimates.items() if value >= threshold]


def geometric_guesses(upper_bound: int, epsilon: float) -> list[int]:
    """The guess ladder ``⌈(1+ε)^i⌉`` up to ``upper_bound`` (deduplicated, sorted)."""
    if upper_bound < 1:
        return [1]
    guesses: list[int] = []
    value = 1.0
    while value < upper_bound * (1 + epsilon):
        guess = int(math.ceil(value))
        if not guesses or guess > guesses[-1]:
            guesses.append(guess)
        value *= 1 + epsilon
    if guesses[-1] < upper_bound:
        guesses.append(upper_bound)
    return guesses


def approximate_coreness(
    graph: Graph,
    epsilon: float = 0.5,
    delta: float = 0.5,
    cluster: MPCCluster | None = None,
    rounds_per_guess: int | None = None,
) -> CorenessResult:
    """Estimate every vertex's coreness by running all ``(1+ε)^i`` guesses in parallel.

    For each guess ``g`` the peeling process "remove vertices of remaining
    degree ≤ 2g" is run to its fixed point (the iterations are what the MPC
    pipeline compresses); a vertex's estimate is the smallest guess whose
    peeling removes it, i.e. the smallest ``g`` such that the vertex lies
    outside the ``(2g+1)``-core.  Consequently every estimate is within a
    factor ``2(1+ε)`` of the exact core number (checked by the tests), the
    same constant-factor regime as the coreness statement of [GLM19].

    Round accounting: the guesses run concurrently on disjoint copies of the
    input (an ``O(log n)``-factor global-memory premium, as in the paper), so
    the charged rounds are the maximum over guesses plus one combining round.
    """
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    n = graph.num_vertices
    if n == 0:
        return CorenessResult(estimates={}, guesses=[], rounds=0, epsilon=epsilon)
    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))

    max_degree = graph.max_degree()
    guesses = geometric_guesses(max(max_degree, 1), epsilon)
    estimates: dict[int, int] = {}
    per_guess_peeled: dict[int, int] = {}
    max_rounds_used = 0

    for guess in guesses:
        threshold = 2 * guess
        # The frontier kernel runs the whole peel-to-fixed-point process in
        # O(n + m) regardless of the number of rounds.
        layers, rounds_used = graph.peel_layers(threshold, max_rounds=rounds_per_guess)
        peeled_total = 0
        for v in range(n):
            if layers[v] and v not in estimates:
                estimates[v] = guess
                peeled_total += 1
        per_guess_peeled[guess] = peeled_total
        max_rounds_used = max(max_rounds_used, rounds_used)

    # Vertices never peeled (cannot happen once the guess reaches max degree,
    # but guard against rounding) get the largest guess.
    for v in range(n):
        estimates.setdefault(v, guesses[-1])

    # All guesses run in parallel; charge the slowest one plus a combine round.
    cluster.charge_rounds(max_rounds_used + 1, label="coreness:parallel-guesses")
    return CorenessResult(
        estimates=estimates,
        guesses=guesses,
        rounds=cluster.stats.num_rounds,
        epsilon=epsilon,
        cluster=cluster,
        per_guess_peeled=per_guess_peeled,
    )


def densest_subgraph_from_coreness(
    graph: Graph, result: CorenessResult
) -> tuple[list[int], float]:
    """The max-coreness core and its density — the classic 2-approximation.

    The subgraph induced by the vertices of maximum (exact) coreness ``c`` has
    minimum degree ≥ c, hence density ≥ c/2 ≥ α(G)/2·(1/(1+ε)) when ``c`` is
    the approximate estimate; returns the core and its measured density.
    """
    if not result.estimates:
        return [], 0.0
    best_core: list[int] = []
    best_density = 0.0
    for threshold in sorted(set(result.estimates.values())):
        core = result.core(threshold)
        if len(core) < 2:
            continue
        induced = graph.induced_subgraph(core)
        if induced.num_edges == 0:
            continue
        density = induced.num_edges / induced.num_vertices
        if density > best_density:
            best_density = density
            best_core = core
    return best_core, best_density
