"""Algorithm 1 — ``LocalPrune``.

``LocalPrune(T, k)`` recursively removes, at every node, the ``k`` heaviest
(pruned) child subtrees; when a node has at most ``k`` children the whole
subtree below it is discarded and only the node itself survives.  The paper
runs it with ``k = O(λ(G))`` on the tree views maintained by Algorithm 2.

Key properties proved in the paper and checked by our tests:

* **Claim 3.1** — pruning increases each surviving node's missing-neighbor
  count by at most ``k``.
* **Lemma 3.2** — if the root's graph vertex has a finite layer under a
  partial layer assignment with out-degree ``d ≤ k``, the pruned tree has at
  most ``NumPathsIn(map(root))`` nodes.

The implementation is iterative (children are processed before parents using
a reverse-BFS order), so arbitrarily deep trees are fine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tree_view import TreeView
from repro.errors import ParameterError


@dataclass(frozen=True)
class PruneOutcome:
    """Result of :func:`local_prune` with bookkeeping used by the analysis."""

    pruned: TreeView
    kept_nodes: int
    removed_nodes: int


def local_prune(tree: TreeView, k: int) -> TreeView:
    """Run Algorithm 1 on ``tree`` with pruning parameter ``k``.

    Returns a new :class:`TreeView` containing the surviving nodes; the input
    is left untouched.

    Notes
    -----
    The paper phrases the algorithm recursively:

    * if the root has at most ``k`` children, return just the root;
    * otherwise prune every child subtree recursively, sort the pruned child
      subtrees by size (descending), remove the ``k`` largest, and attach the
      rest.

    We evaluate the recursion bottom-up: process nodes children-first, compute
    each node's *pruned subtree size* and the set of children it keeps, then
    materialise the surviving node set top-down.  Ties between equal-size
    subtrees are broken toward keeping the child with the smaller node id,
    which is one of the "arbitrary" tie-breaks the paper allows and keeps runs
    deterministic.
    """
    if k < 0:
        raise ParameterError("pruning parameter k must be non-negative")

    order = tree.bfs_order()
    pruned_size = [1] * tree.num_nodes
    kept_children: list[list[int]] = [[] for _ in range(tree.num_nodes)]

    for node in reversed(order):
        children = tree.children[node]
        if len(children) <= k:
            # The paper returns the single-node tree here: every child subtree
            # is discarded.
            pruned_size[node] = 1
            kept_children[node] = []
            continue
        # Sort by pruned size descending; ties by node id ascending so the
        # outcome is deterministic.  Remove the first k.
        ranked = sorted(children, key=lambda c: (-pruned_size[c], c))
        survivors = ranked[k:]
        kept_children[node] = survivors
        pruned_size[node] = 1 + sum(pruned_size[c] for c in survivors)

    kept_nodes: list[int] = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        kept_nodes.append(node)
        stack.extend(kept_children[node])
    return tree.restricted_to(kept_nodes)


def prune_and_report(tree: TreeView, k: int) -> PruneOutcome:
    """Like :func:`local_prune` but also reports simple size bookkeeping."""
    pruned = local_prune(tree, k)
    return PruneOutcome(
        pruned=pruned,
        kept_nodes=pruned.num_nodes,
        removed_nodes=tree.num_nodes - pruned.num_nodes,
    )


def recursive_local_prune_reference(tree: TreeView, k: int) -> TreeView:
    """A direct transcription of the paper's recursive pseudocode.

    Exponential in neither time nor space, but it does use recursion depth
    proportional to the tree height; it exists purely as an oracle for tests
    that verify the iterative implementation matches the pseudocode
    node-for-node (up to the documented tie-breaking).
    """
    import sys

    sys.setrecursionlimit(max(sys.getrecursionlimit(), tree.num_nodes + 100))

    def prune_subtree(node: int) -> tuple[list[int], int]:
        """Return (kept node ids of the pruned subtree rooted at node, size)."""
        children = tree.children[node]
        if len(children) <= k:
            return [node], 1
        pruned_children: list[tuple[int, list[int], int]] = []
        for child in children:
            kept, size = prune_subtree(child)
            pruned_children.append((child, kept, size))
        pruned_children.sort(key=lambda item: (-item[2], item[0]))
        survivors = pruned_children[k:]
        kept_nodes = [node]
        total = 1
        for _child, kept, size in survivors:
            kept_nodes.extend(kept)
            total += size
        return kept_nodes, total

    kept_nodes, _ = prune_subtree(tree.root)
    return tree.restricted_to(kept_nodes)
