"""Theorem 1.2 — the density-dependent coloring algorithm.

Pipeline (see Section 4 of the paper):

1. **Random vertex partitioning (if needed).**  When the arboricity proxy
   ``k`` exceeds ``Θ(log n)``, apply Lemma 2.2: split the vertices into
   ``⌈k / log n⌉`` random parts, color every induced part with its own
   disjoint palette, and return the union.  Each part has arboricity
   ``O(log n)`` w.h.p., so the per-part palette has ``O(log n · log log n)``
   colors and the total is ``O(λ · log log n)``.

2. **Layering.**  Compute the complete layer assignment (H-partition) of
   Lemma 3.15 with out-degree ``d = O(λ log log n)``.

3. **Layer-by-layer coloring, batched with directed exponentiation.**  Color
   layers from the highest down.  Within each batch of layers, every vertex
   only needs the colors of vertices reachable along directed paths (edges
   point toward higher layers; intra-layer edges are bidirectional), so a
   whole batch can be resolved after one directed-exponentiation gather
   (Lemma 4.1).  Inside a layer the conflict is resolved by the degree+1
   list-coloring subroutine (:mod:`repro.local.list_coloring`), using the
   palette ``{0, ..., 3d-1}`` minus the colors of higher-layer neighbors.

The number of colors is at most ``3·d = O(λ log log n)`` per part, and the
coloring is proper by construction (validated, not assumed).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.core.directed_expo import directed_reachability
from repro.core.full_assignment import complete_layer_assignment
from repro.core.partitioning import random_vertex_partition
from repro.errors import ParameterError
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.local.list_coloring import random_list_coloring
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


@dataclass
class ColoringRun:
    """Output of the Theorem 1.2 pipeline, with measurements."""

    coloring: Coloring
    num_colors: int
    palette_size: int
    arboricity_proxy: int
    rounds: int
    used_vertex_partitioning: bool
    num_parts: int
    local_subroutine_rounds: int
    hpartitions: list[HPartition] = field(default_factory=list)
    cluster: MPCCluster | None = None

    def colors_to_arboricity_ratio(self) -> float:
        """``num_colors / max(arboricity_proxy, 1)`` — the quality measure of E2."""
        return self.num_colors / max(self.arboricity_proxy, 1)


def _color_layered_graph(
    graph: Graph,
    hpartition: HPartition,
    palette_base: int,
    palette_size: int,
    cluster: MPCCluster | None,
    rng: random.Random,
    delta: float,
) -> tuple[dict[int, int], int]:
    """Color a single (low-arboricity) graph given its H-partition.

    Layers are processed from the deepest to the shallowest in batches whose
    directed-reachability sets stay below the local-memory proxy ``n^δ``.
    Returns the vertex -> color map (colors offset by ``palette_base``) and
    the total number of LOCAL subroutine rounds consumed.
    """
    layer_of = {v: hpartition.layer_of[v] for v in graph.vertices}
    num_layers = hpartition.num_layers
    colors: dict[int, int] = {}
    local_rounds = 0

    n = max(graph.num_vertices, 2)
    set_size_limit = max(int(math.ceil(4 * (n ** delta))), 16)
    # Batch size in layers: the paper uses Θ(δ log n / log^{2.67} log n); the
    # simulator shrinks a batch adaptively when the reachability sets grow
    # past the local-memory proxy.
    loglog = max(math.log2(max(math.log2(n), 2.0)), 1.0)
    default_batch = max(int(math.ceil(math.log2(n) / (loglog ** 2))), 1)

    highest_uncolored = num_layers
    while highest_uncolored >= 1:
        batch = min(default_batch, highest_uncolored)
        lowest_in_batch = highest_uncolored - batch + 1
        batch_vertices = [
            v for v in graph.vertices if lowest_in_batch <= layer_of[v] <= highest_uncolored
        ]
        if cluster is not None and batch_vertices:
            max_distance = batch * 4
            directed_reachability(
                graph,
                layer_of,
                batch_vertices,
                max_distance=max_distance,
                cluster=cluster,
                set_size_limit=set_size_limit,
            )

        # Color the batch layer by layer (highest first); each layer is a
        # degree+1 list coloring on the graph induced by that layer.
        for layer_index in range(highest_uncolored, lowest_in_batch - 1, -1):
            members = [v for v in graph.vertices if layer_of[v] == layer_index]
            if not members:
                continue
            induced = graph.induced_subgraph(members)
            palettes: dict[int, list[int]] = {}
            for local_v in induced.vertices:
                v = induced.to_parent(local_v)
                taken = {
                    colors[w]
                    for w in graph.neighbors(v)
                    if w in colors and layer_of[w] >= layer_index
                }
                palettes[local_v] = [
                    palette_base + c for c in range(palette_size) if palette_base + c not in taken
                ]
            result = random_list_coloring(induced, palettes, rng=rng)
            local_rounds += result.rounds
            for local_v, color in result.colors.items():
                colors[induced.to_parent(local_v)] = color
        highest_uncolored = lowest_in_batch - 1

    return colors, local_rounds


def color(
    graph: Graph,
    delta: float = 0.5,
    k: int | None = None,
    k_factor: float = 2.0,
    seed: int | None = None,
    cluster: MPCCluster | None = None,
    palette_slack: int = 3,
    force_vertex_partitioning: bool | None = None,
) -> ColoringRun:
    """Compute an ``O(λ log log n)``-coloring of ``graph`` (Theorem 1.2).

    Parameters mirror :func:`repro.core.orientation.orient`; ``palette_slack``
    is the constant in the per-part palette size ``palette_slack · d`` (the
    paper uses 3d).
    """
    if graph.num_vertices == 0:
        empty = Coloring(graph, {})
        return ColoringRun(
            coloring=empty,
            num_colors=0,
            palette_size=0,
            arboricity_proxy=0,
            rounds=0,
            used_vertex_partitioning=False,
            num_parts=1,
            local_subroutine_rounds=0,
        )
    if palette_slack < 2:
        raise ParameterError("palette_slack must be at least 2 for a degree+1 list coloring")

    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))
        cluster.load_graph(graph)
    rng = random.Random(seed)

    if k is None:
        estimate = max(arboricity_upper_bound(graph), 1)
        k = max(2, int(math.ceil(k_factor * estimate)))
        cluster.charge_rounds(1, label="arboricity-guess")
    arboricity_proxy = max(1, int(math.ceil(k / max(k_factor, 1.0))))

    log_n = max(math.log2(max(graph.num_vertices, 2)), 1.0)
    large_lambda = k > 4 * log_n
    if force_vertex_partitioning is not None:
        large_lambda = force_vertex_partitioning

    hpartitions: list[HPartition] = []
    colors: dict[int, int] = {}
    local_rounds = 0
    palette_base = 0
    max_palette_end = 0

    if not large_lambda:
        parts = [None]  # sentinel: color the whole graph in place
        num_parts = 1
        used_partitioning = False
    else:
        vertex_partition = random_vertex_partition(graph, arboricity_bound=k, rng=rng)
        cluster.charge_rounds(1, label="vertex-partition")
        parts = vertex_partition.parts
        num_parts = vertex_partition.num_parts
        used_partitioning = True

    for part in parts:
        if part is None:
            subgraph = graph
            to_parent = None
        else:
            subgraph = part
            to_parent = part.to_parent
        if subgraph.num_vertices == 0:
            continue
        per_part_k = k if part is None else max(2, int(math.ceil(2 * log_n)))
        run = complete_layer_assignment(subgraph, k=per_part_k, delta=delta, cluster=cluster)
        hpartition = run.to_hpartition()
        hpartitions.append(hpartition)
        out_degree = max(hpartition.max_out_degree(), 1)
        palette_size = palette_slack * out_degree
        part_colors, part_local_rounds = _color_layered_graph(
            subgraph,
            hpartition,
            palette_base=palette_base,
            palette_size=palette_size,
            cluster=cluster,
            rng=rng,
            delta=delta,
        )
        local_rounds += part_local_rounds
        for local_vertex, chosen in part_colors.items():
            original = local_vertex if to_parent is None else to_parent(local_vertex)
            colors[original] = chosen
        max_palette_end = max(max_palette_end, palette_base + palette_size)
        palette_base += palette_size

    coloring = Coloring(graph, colors)
    return ColoringRun(
        coloring=coloring,
        num_colors=coloring.num_colors(),
        palette_size=max_palette_end,
        arboricity_proxy=arboricity_proxy,
        rounds=cluster.stats.num_rounds,
        used_vertex_partitioning=used_partitioning,
        num_parts=num_parts,
        local_subroutine_rounds=local_rounds,
        hpartitions=hpartitions,
        cluster=cluster,
    )


def coloring_palette_bound(arboricity: int, num_vertices: int, constant: float = 24.0) -> int:
    """The Theorem 1.2 target bound ``O(λ · log log n)`` with an explicit constant.

    Used by tests and the E2 benchmark: ``num_colors ≤ constant · max(λ, 1) ·
    max(log2 log2 n, 1)``.
    """
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    return int(math.ceil(constant * max(arboricity, 1) * loglog))
