"""Theorem 1.2 — the density-dependent coloring algorithm.

Pipeline (see Section 4 of the paper):

1. **Random vertex partitioning (if needed).**  When the arboricity proxy
   ``k`` exceeds ``Θ(log n)``, apply Lemma 2.2: split the vertices into
   ``⌈k / log n⌉`` random parts, color every induced part with its own
   disjoint palette, and return the union.  Each part has arboricity
   ``O(log n)`` w.h.p., so the per-part palette has ``O(log n · log log n)``
   colors and the total is ``O(λ · log log n)``.

2. **Layering.**  Compute the complete layer assignment (H-partition) of
   Lemma 3.15 with out-degree ``d = O(λ log log n)``.

3. **Layer-by-layer coloring, batched with directed exponentiation.**  Color
   layers from the highest down.  Within each batch of layers, every vertex
   only needs the colors of vertices reachable along directed paths (edges
   point toward higher layers; intra-layer edges are bidirectional), so a
   whole batch can be resolved after one directed-exponentiation gather
   (Lemma 4.1).  Inside a layer the conflict is resolved by the degree+1
   list-coloring subroutine (:mod:`repro.local.list_coloring`), using the
   palette ``{0, ..., 3d-1}`` minus the colors of higher-layer neighbors.

The number of colors is at most ``3·d = O(λ log log n)`` per part, and the
coloring is proper by construction (validated, not assumed).

**Parallel execution.**  The Lemma 2.2 parts are *independent*: the paper
colors them simultaneously on the shared cluster, so their layering and
list-coloring rounds coincide rather than add.  The large-λ branch therefore
fans the parts out through the superstep engine
(:class:`repro.engine.ParallelExecutor`) — each part layers and colors
against its own sub-ledger (:meth:`repro.mpc.cluster.MPCCluster.fork`) and
the fold charges rounds as max-over-parts — and combines the per-part
colorings with a disjoint color-offset scheme: part ``i``'s colors are
shifted by the sum of the palette sizes of parts ``0..i-1`` (a prefix-sum
broadcast, charged as one ``palette-offsets`` round).  Results are
byte-identical for any worker count and backend: the partition is fixed by
the parent RNG before the fan-out, each part draws only from its own seed
stream (:func:`repro.engine.derive_seed` by part position), and the offsets
depend only on the fixed part order.  Cross-process shipping is lean — the
parts' CSR edge columns and parent-id maps are published *once* into the
worker pool's shared-memory shard registry (:mod:`repro.engine.shm`), each
task ships only a shard handle plus a slot index, and the result ships back
as flat ``array('l')`` color/layer columns instead of per-vertex dicts.

The output's color count is ``O(λ · log log n)`` — experiment E2 measures
the realised constant.
"""

from __future__ import annotations

import math
import random
from array import array
from dataclasses import dataclass, field

from repro import kernels
from repro.core.directed_expo import directed_reachability
from repro.core.full_assignment import complete_layer_assignment
from repro.core.partitioning import random_vertex_partition
from repro.engine import ParallelExecutor, WorkerPool, seed_stream
from repro.engine import shm
from repro.engine.shm import ShardHandle
from repro.errors import ParameterError
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph, InducedSubgraph
from repro.graph.hpartition import HPartition
from repro.local.list_coloring import random_list_coloring
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.obs.tracer import NULL_TRACER


@dataclass
class ColoringRun:
    """Output of the Theorem 1.2 pipeline, with measurements.

    ``part_rounds`` records, for every (non-empty) Lemma 2.2 part, the rounds
    the part charged on its own sub-ledger — the quantity the old sequential
    loop summed into ``rounds`` and the parallel fold replaces with the max
    (regression-tested: ``rounds`` stays strictly below ``sum(part_rounds)``
    whenever there is more than one part).
    """

    coloring: Coloring
    num_colors: int
    palette_size: int
    arboricity_proxy: int
    rounds: int
    used_vertex_partitioning: bool
    num_parts: int
    local_subroutine_rounds: int
    hpartitions: list[HPartition] = field(default_factory=list)
    cluster: MPCCluster | None = None
    part_rounds: list[int] = field(default_factory=list)

    def colors_to_arboricity_ratio(self) -> float:
        """``num_colors / max(arboricity_proxy, 1)`` — the quality measure of E2."""
        return self.num_colors / max(self.arboricity_proxy, 1)


def _color_layered_graph(
    graph: Graph,
    hpartition: HPartition,
    palette_base: int,
    palette_size: int,
    cluster: MPCCluster | None,
    rng: random.Random,
    delta: float,
) -> tuple[dict[int, int], int]:
    """Color a single (low-arboricity) graph given its H-partition.

    Layers are processed from the deepest to the shallowest in batches whose
    directed-reachability sets stay below the local-memory proxy ``n^δ``.
    Returns the vertex -> color map (colors offset by ``palette_base``) and
    the total number of LOCAL subroutine rounds consumed.
    """
    layer_of = {v: hpartition.layer_of[v] for v in graph.vertices}
    num_layers = hpartition.num_layers
    colors: dict[int, int] = {}
    local_rounds = 0

    n = max(graph.num_vertices, 2)
    set_size_limit = max(int(math.ceil(4 * (n ** delta))), 16)
    # Batch size in layers: the paper uses Θ(δ log n / log^{2.67} log n); the
    # simulator shrinks a batch adaptively when the reachability sets grow
    # past the local-memory proxy.
    loglog = max(math.log2(max(math.log2(n), 2.0)), 1.0)
    default_batch = max(int(math.ceil(math.log2(n) / (loglog ** 2))), 1)

    highest_uncolored = num_layers
    while highest_uncolored >= 1:
        batch = min(default_batch, highest_uncolored)
        lowest_in_batch = highest_uncolored - batch + 1
        batch_vertices = [
            v for v in graph.vertices if lowest_in_batch <= layer_of[v] <= highest_uncolored
        ]
        if cluster is not None and batch_vertices:
            max_distance = batch * 4
            directed_reachability(
                graph,
                layer_of,
                batch_vertices,
                max_distance=max_distance,
                cluster=cluster,
                set_size_limit=set_size_limit,
            )

        # Color the batch layer by layer (highest first); each layer is a
        # degree+1 list coloring on the graph induced by that layer.
        for layer_index in range(highest_uncolored, lowest_in_batch - 1, -1):
            members = [v for v in graph.vertices if layer_of[v] == layer_index]
            if not members:
                continue
            induced = graph.induced_subgraph(members)
            palettes: dict[int, list[int]] = {}
            for local_v in induced.vertices:
                v = induced.to_parent(local_v)
                taken = {
                    colors[w]
                    for w in graph.neighbors(v)
                    if w in colors and layer_of[w] >= layer_index
                }
                palettes[local_v] = [
                    palette_base + c for c in range(palette_size) if palette_base + c not in taken
                ]
            result = random_list_coloring(induced, palettes, rng=rng)
            local_rounds += result.rounds
            for local_v, color in result.colors.items():
                colors[induced.to_parent(local_v)] = color
        highest_uncolored = lowest_in_batch - 1

    return colors, local_rounds


def _color_part_task(
    handle: ShardHandle,
    slot: int,
    k: int,
    delta: float,
    palette_slack: int,
    seed: int,
    ledger: MPCCluster,
) -> tuple[array, array, int, int, object]:
    """Layer and color one Lemma 2.2 part against its own sub-ledger.

    Module-level so the process backend can pickle it by reference.  The
    part is *not* in the task tuple: it is read from the published CSR shard
    segment (:func:`repro.engine.shm.shard_graph`) — zero-copy to the owner's
    part object in-process, attached from shared memory (and cached per
    generation) in workers.  The part is colored with a palette-local base of
    0 — the parent applies the disjoint offset when folding — and the result
    travels as two flat ``array('l')`` columns (color and layer per local
    vertex id) plus the sub-ledger's stats: everything else (the HPartition
    object, the palette dict) is rebuilt cheaply on the parent side.
    """
    part = shm.shard_graph(handle, slot)
    run = complete_layer_assignment(part, k=k, delta=delta, cluster=ledger)
    hpartition = run.to_hpartition()
    out_degree = max(hpartition.max_out_degree(), 1)
    palette_size = palette_slack * out_degree
    part_colors, local_rounds = _color_layered_graph(
        part,
        hpartition,
        palette_base=0,
        palette_size=palette_size,
        cluster=ledger,
        rng=random.Random(seed),
        delta=delta,
    )
    color_column = array("l", (part_colors[v] for v in part.vertices))
    layer_column = array("l", (hpartition.layer_of[v] for v in part.vertices))
    return color_column, layer_column, palette_size, local_rounds, ledger.stats


def color(
    graph: Graph,
    delta: float = 0.5,
    k: int | None = None,
    k_factor: float = 2.0,
    seed: int | None = None,
    cluster: MPCCluster | None = None,
    palette_slack: int = 3,
    force_vertex_partitioning: bool | None = None,
    workers: int = 1,
    executor: ParallelExecutor | None = None,
    pool: WorkerPool | None = None,
    tracer=None,
) -> ColoringRun:
    """Compute an ``O(λ log log n)``-coloring of ``graph`` (Theorem 1.2).

    Parameters mirror :func:`repro.core.orientation.orient`; ``palette_slack``
    is the constant in the per-part palette size ``palette_slack · d`` (the
    paper uses 3d).  ``workers`` fans the Lemma 2.2 vertex-partition parts of
    the large-λ branch out through a :class:`~repro.engine.ParallelExecutor`
    (1 = serial; the round accounting is max-over-parts either way),
    ``executor`` overrides it with a pre-built executor pinning a specific
    backend, and ``pool`` overrides both with a resident
    :class:`~repro.engine.WorkerPool` — the parts are then published into
    the pool's shard registry and each task ships only a handle and a slot
    index.  Results are byte-identical for any worker count and backend.
    ``tracer`` records kernel-level wall-clock spans (layer+color, fan-out,
    palette union) with their ledger deltas — observation only, results are
    identical with tracing on or off.
    """
    if graph.num_vertices == 0:
        empty = Coloring(graph, {})
        return ColoringRun(
            coloring=empty,
            num_colors=0,
            palette_size=0,
            arboricity_proxy=0,
            rounds=0,
            used_vertex_partitioning=False,
            num_parts=1,
            local_subroutine_rounds=0,
        )
    if palette_slack < 2:
        raise ParameterError("palette_slack must be at least 2 for a degree+1 list coloring")

    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))
        cluster.load_graph(graph)
    tracer = NULL_TRACER if tracer is None else tracer
    if tracer.enabled:
        cluster.instrument(tracer)
    rng = random.Random(seed)

    if k is None:
        estimate = max(arboricity_upper_bound(graph), 1)
        k = max(2, int(math.ceil(k_factor * estimate)))
        cluster.charge_rounds(1, label="arboricity-guess")
    arboricity_proxy = max(1, int(math.ceil(k / max(k_factor, 1.0))))

    log_n = max(math.log2(max(graph.num_vertices, 2)), 1.0)
    large_lambda = k > 4 * log_n
    if force_vertex_partitioning is not None:
        large_lambda = force_vertex_partitioning

    hpartitions: list[HPartition] = []

    if not large_lambda:
        # Small-λ branch: one part, colored in place on the parent ledger.
        with tracer.span("color:layers", cat="kernel", cluster=cluster):
            run = complete_layer_assignment(graph, k=k, delta=delta, cluster=cluster)
            hpartition = run.to_hpartition()
            hpartitions.append(hpartition)
            out_degree = max(hpartition.max_out_degree(), 1)
            palette_size = palette_slack * out_degree
            colors, local_rounds = _color_layered_graph(
                graph,
                hpartition,
                palette_base=0,
                palette_size=palette_size,
                cluster=cluster,
                rng=rng,
                delta=delta,
            )
        coloring = Coloring(graph, colors)
        return ColoringRun(
            coloring=coloring,
            num_colors=coloring.num_colors(),
            palette_size=palette_size,
            arboricity_proxy=arboricity_proxy,
            rounds=cluster.stats.num_rounds,
            used_vertex_partitioning=False,
            num_parts=1,
            local_subroutine_rounds=local_rounds,
            hpartitions=hpartitions,
            cluster=cluster,
        )

    # Large-λ branch: Lemma 2.2 vertex partitioning, layer and color all
    # parts in parallel supersteps (each on its own sub-ledger), then union
    # the per-part colorings under disjoint palette offsets.
    vertex_partition = random_vertex_partition(graph, arboricity_bound=k, rng=rng)
    cluster.charge_rounds(1, label="vertex-partition")
    num_parts = vertex_partition.num_parts
    per_part_k = max(2, int(math.ceil(2 * log_n)))
    # Per-part seeds are derived from the *part position*, so any worker
    # count (and the serial loop) replays identical randomness; empty parts
    # contribute nothing but keep their seed-stream slot so the part count
    # alone fixes every stream.
    part_seeds = seed_stream(seed, num_parts)
    nonempty = [
        (index, part)
        for index, part in enumerate(vertex_partition.parts)
        if part.num_vertices
    ]
    owns_pool = pool is None
    if owns_pool:
        # A borrowed executor is wrapped (not owned): closing the transient
        # pool unlinks its segments but leaves the caller's workers resident.
        pool = WorkerPool(workers=workers, executor=executor)
    if tracer.enabled:
        pool.instrument(tracer)
    try:
        with tracer.span(
            "color:fanout", cat="kernel", cluster=cluster, parts=len(nonempty)
        ):
            handle = pool.publish_vertex_parts(
                "color-parts", [part for _index, part in nonempty]
            )
            results = pool.map(
                _color_part_task,
                [
                    (handle, slot, per_part_k, delta, palette_slack, part_seeds[index], cluster.fork())
                    for slot, (index, _part) in enumerate(nonempty)
                ],
                total_work=vertex_partition.total_edges + graph.num_vertices,
                handles=(handle,),
            )
    finally:
        if owns_pool:
            pool.close()

    with tracer.span("color:merge", cat="kernel", cluster=cluster):
        cluster.merge_parallel([stats for *_rest, stats in results])
        # Disjoint palette offsets: part i's colors shift by the total palette
        # size of the parts before it.  The prefix sums are one broadcast.
        cluster.charge_rounds(1, label="palette-offsets")

        # The prefix-sum offsets and the shifted per-part color scatters run
        # as one kernel pass over the flat columns (vectorized on the numpy
        # backend); the per-vertex mapping materialises once, in vertex
        # order, inside ``Coloring.from_column`` — byte-identical to the old
        # per-part dict accumulation.
        column, offsets = kernels.assemble_color_columns(
            graph.num_vertices,
            [
                (part.parent_ids, result[0], result[2])
                for (_index, part), result in zip(nonempty, results)
            ],
        )
        local_rounds = 0
        part_rounds: list[int] = []
        for (_index, part), result in zip(nonempty, results):
            _color_column, layer_column, _palette_size, part_local_rounds, stats = result
            hpartitions.append(
                HPartition(part, {v: layer_column[v] for v in part.vertices})
            )
            local_rounds += part_local_rounds
            part_rounds.append(stats.num_rounds)
        palette_base = offsets[-1]

    coloring = Coloring.from_column(graph, column)
    return ColoringRun(
        coloring=coloring,
        num_colors=coloring.num_colors(),
        palette_size=palette_base,
        arboricity_proxy=arboricity_proxy,
        rounds=cluster.stats.num_rounds,
        used_vertex_partitioning=True,
        num_parts=num_parts,
        local_subroutine_rounds=local_rounds,
        hpartitions=hpartitions,
        cluster=cluster,
        part_rounds=part_rounds,
    )


def coloring_palette_bound(arboricity: int, num_vertices: int, constant: float = 24.0) -> int:
    """The Theorem 1.2 target bound ``O(λ · log log n)`` with an explicit constant.

    Used by tests and the E2 benchmark: ``num_colors ≤ constant · max(λ, 1) ·
    max(log2 log2 n, 1)``.
    """
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    return int(math.ceil(constant * max(arboricity, 1) * loglog))
