"""Algorithm 2 — ``ExponentiateAndLocalPrune``.

Every vertex ``v`` maintains a rooted tree view ``T_v`` with a valid mapping
whose root maps to ``v``.  The algorithm runs ``s`` steps; in each step every
vertex first prunes its tree with :func:`~repro.core.prune.local_prune`
(parameter ``k``) and is deactivated if the pruned tree exceeds ``√B`` nodes;
then every *active* vertex performs a graph-exponentiation step: the leaves at
distance exactly ``2^{i-1}`` from the root that map to active vertices are
replaced by (fresh copies of) the pruned trees of the vertices they map to.

Invariants (checked by the tests):

* **Claim 3.3** — every maintained mapping stays valid.
* **Claim 3.4** — no tree ever exceeds ``B`` nodes.
* **Claim 3.5** — the procedure takes ``O(s)`` MPC rounds with ``O(n^δ + B)``
  local and ``O(nB + m)`` global memory; the MPC wrapper routes every
  attachment through the cluster so these bounds are enforced, not assumed.
* **Claim 3.6 / Lemma 3.7** — missing-neighbor bounds for nodes close to the
  root, which downstream layer assignment relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import Parameters
from repro.core.prune import local_prune
from repro.core.tree_view import TreeView
from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster


@dataclass
class ExponentiationResult:
    """Output of Algorithm 2: one tree view per vertex, plus bookkeeping."""

    trees: dict[int, TreeView]
    active: dict[int, bool]
    steps_run: int
    max_tree_nodes: int = 0
    deactivated_at_step: dict[int, int] = field(default_factory=dict)

    def tree(self, vertex: int) -> TreeView:
        """The final tree view ``T_v^{(s)}`` of ``vertex``."""
        return self.trees[vertex]

    def num_active(self) -> int:
        """How many vertices were still active after the final step."""
        return sum(1 for flag in self.active.values() if flag)


def _initial_trees(graph: Graph, budget: int) -> tuple[dict[int, TreeView], dict[int, bool]]:
    """Initialisation of Algorithm 2.

    Vertices of degree < B start with the star of their neighborhood and are
    active; higher-degree vertices start with a single node and are inactive.
    """
    trees: dict[int, TreeView] = {}
    active: dict[int, bool] = {}
    for v in graph.vertices:
        if graph.degree(v) < budget:
            trees[v] = TreeView.star_of_neighbors(graph, v)
            active[v] = True
        else:
            trees[v] = TreeView.single_node(v)
            active[v] = False
    return trees, active


def exponentiate_and_local_prune(
    graph: Graph,
    params: Parameters,
    cluster: MPCCluster | None = None,
) -> ExponentiationResult:
    """Run Algorithm 2 with parameters ``(B, k, s)`` from ``params``.

    Parameters
    ----------
    graph:
        Input graph ``G``.
    params:
        Algorithm parameters; ``params.budget`` is ``B``, ``params.k`` is the
        pruning parameter and ``params.steps`` is ``s``.
    cluster:
        Optional MPC cluster.  When provided, each exponentiation step charges
        one communication round whose messages carry the attached subtrees
        (word sizes included), and the stored tree views are accounted against
        the owning machines' memory — giving Claim 3.5's resource profile by
        construction.  When ``None`` the procedure runs centrally (used by
        unit tests focused on the combinatorial invariants).
    """
    budget = params.budget
    k = params.k
    steps = params.steps
    sqrt_budget = params.sqrt_budget

    trees, active = _initial_trees(graph, budget)
    deactivated_at: dict[int, int] = {}
    max_tree_nodes = max((t.num_nodes for t in trees.values()), default=0)

    if cluster is not None:
        # Initial storage: the collection of star views is an O(m + n)-word
        # distributed object; the standard primitives spread it evenly.
        cluster.store_spread(
            sum(t.word_size() for t in trees.values()), tag="tree-view"
        )
        cluster.charge_rounds(1, label="exponentiate:init")

    for step in range(1, steps + 1):
        # ----------------------------------------------------------------- #
        # Local prune step (no communication).
        # ----------------------------------------------------------------- #
        pruned: dict[int, TreeView] = {}
        for v in graph.vertices:
            pruned_tree = local_prune(trees[v], k)
            pruned[v] = pruned_tree
            if pruned_tree.num_nodes > sqrt_budget and active[v]:
                active[v] = False
                deactivated_at[v] = step

        # ----------------------------------------------------------------- #
        # Exponentiation / attachment step.
        # ----------------------------------------------------------------- #
        attach_distance = 2 ** (step - 1)
        messages: list[tuple[int, int, int]] = []
        new_trees: dict[int, TreeView] = {}
        for v in graph.vertices:
            if not active[v]:
                new_trees[v] = pruned[v]
                continue
            base = pruned[v]
            replacements: dict[int, TreeView] = {}
            for leaf in base.leaves_at_depth(attach_distance):
                target = base.map(leaf)
                if not active.get(target, False):
                    continue
                replacements[leaf] = pruned[target]
                messages.append((target, v, pruned[target].word_size()))
            if replacements:
                new_trees[v] = base.attach(replacements)
            else:
                new_trees[v] = base

        if cluster is not None:
            # Replace stored views: release the old ones, run the round that
            # ships the attached subtrees, store the new ones (spread as an
            # O(nB)-word distributed object, per Claim 3.5).
            cluster.release_tag_everywhere("tree-view")
            cluster.communication_round(messages, label=f"exponentiate:step{step}")
            cluster.store_spread(
                sum(t.word_size() for t in new_trees.values()), tag="tree-view"
            )

        trees = new_trees
        max_tree_nodes = max(
            max_tree_nodes, max((t.num_nodes for t in trees.values()), default=0)
        )

    return ExponentiationResult(
        trees=trees,
        active=active,
        steps_run=steps,
        max_tree_nodes=max_tree_nodes,
        deactivated_at_step=deactivated_at,
    )
