"""Partial layer assignments, their combination and path counts.

Implements Section 2.1 of the paper:

* Definition 2.1 — a *partial layer assignment* ``ℓ : V -> [L] ∪ {∞}`` with
  out-degree ``d``: every assigned vertex has at most ``d`` neighbors in the
  same or a higher layer (unassigned = ``∞`` counts as higher).
* Claim 2.3 — the pointwise minimum of two partial layer assignments with the
  same ``L`` and ``d`` is again a partial layer assignment with those
  parameters.
* Definition 2.2 / Lemma 2.4 — strictly increasing paths and the per-vertex
  path counts ``NumPathsIn`` / ``NumPathsOut``; the total is at most
  ``n · d^L`` for a complete assignment with out-degree ``d``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import InvalidLayeringError
from repro.graph.graph import Graph

UNASSIGNED = math.inf
"""Sentinel layer value for unassigned vertices (the paper's ``∞``)."""


@dataclass(frozen=True)
class PartialLayerAssignment:
    """A partial layer assignment ``ℓ : V(G) -> [L] ∪ {∞}`` (Definition 2.1).

    ``layer_of[v]`` is either an integer in ``1..num_layers`` or
    :data:`UNASSIGNED`.  The declared ``out_degree`` is the bound ``d`` the
    assignment promises; :meth:`validate` checks the promise.
    """

    graph: Graph
    layer_of: Mapping[int, float]
    num_layers: int
    out_degree: int

    def __post_init__(self) -> None:
        for v in self.graph.vertices:
            value = self.layer_of.get(v, None)
            if value is None:
                raise InvalidLayeringError(f"vertex {v} has no layer entry (use UNASSIGNED)")
            if value != UNASSIGNED and not (1 <= value <= self.num_layers):
                raise InvalidLayeringError(
                    f"vertex {v} has layer {value} outside 1..{self.num_layers}"
                )

    # ------------------------------------------------------------------ #

    def layer(self, v: int) -> float:
        """Layer of ``v`` (``UNASSIGNED`` if not assigned)."""
        return self.layer_of[v]

    def is_assigned(self, v: int) -> bool:
        """Whether ``v`` has a finite layer."""
        return self.layer_of[v] != UNASSIGNED

    def assigned_vertices(self) -> list[int]:
        """All vertices with a finite layer."""
        return [v for v in self.graph.vertices if self.is_assigned(v)]

    def unassigned_vertices(self) -> list[int]:
        """All vertices with layer ``∞``."""
        return [v for v in self.graph.vertices if not self.is_assigned(v)]

    def higher_or_equal_neighbors(self, v: int) -> list[int]:
        """Neighbors ``u`` of ``v`` with ``ℓ(u) ≥ ℓ(v)`` (the out-degree set)."""
        mine = self.layer_of[v]
        return [u for u in self.graph.neighbors(v) if self.layer_of[u] >= mine]

    def observed_out_degree(self, v: int) -> int:
        """``|{u ∈ N(v) : ℓ(u) ≥ ℓ(v)}|`` for an assigned vertex ``v``."""
        return len(self.higher_or_equal_neighbors(v))

    def max_observed_out_degree(self) -> int:
        """Maximum out-degree over assigned vertices (0 if nothing is assigned)."""
        return max(
            (self.observed_out_degree(v) for v in self.graph.vertices if self.is_assigned(v)),
            default=0,
        )

    def validate(self) -> None:
        """Raise unless every assigned vertex respects the declared out-degree bound.

        This is exactly Definition 2.1's condition.
        """
        for v in self.graph.vertices:
            if not self.is_assigned(v):
                continue
            observed = self.observed_out_degree(v)
            if observed > self.out_degree:
                raise InvalidLayeringError(
                    f"vertex {v} (layer {self.layer_of[v]}) has {observed} neighbors in "
                    f"layers ≥ its own, exceeding the declared bound {self.out_degree}"
                )

    def fraction_assigned(self) -> float:
        """Fraction of vertices with a finite layer."""
        n = self.graph.num_vertices
        if n == 0:
            return 1.0
        return len(self.assigned_vertices()) / n

    # ------------------------------------------------------------------ #
    # Claim 2.3
    # ------------------------------------------------------------------ #

    def combine_min(self, other: "PartialLayerAssignment") -> "PartialLayerAssignment":
        """Pointwise minimum of two partial layer assignments (Claim 2.3).

        Both assignments must be over the same graph and declare the same
        ``L`` and ``d``; the result declares the same parameters and is again
        valid (Claim 2.3's statement, verified by the property tests).
        """
        if other.graph is not self.graph and other.graph != self.graph:
            raise InvalidLayeringError("cannot combine assignments over different graphs")
        if other.num_layers != self.num_layers or other.out_degree != self.out_degree:
            raise InvalidLayeringError(
                "cannot combine assignments with different (L, d) parameters"
            )
        combined = {
            v: min(self.layer_of[v], other.layer_of[v]) for v in self.graph.vertices
        }
        return PartialLayerAssignment(
            graph=self.graph,
            layer_of=combined,
            num_layers=self.num_layers,
            out_degree=self.out_degree,
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def fully_unassigned(cls, graph: Graph, num_layers: int, out_degree: int) -> "PartialLayerAssignment":
        """The trivial assignment mapping every vertex to ``∞``."""
        return cls(
            graph=graph,
            layer_of={v: UNASSIGNED for v in graph.vertices},
            num_layers=num_layers,
            out_degree=out_degree,
        )

    @classmethod
    def from_peeling(cls, graph: Graph, threshold: int, num_layers: int | None = None) -> "PartialLayerAssignment":
        """The auxiliary complete assignment ``ℓ_G`` of Lemma 3.13.

        Peel vertices of remaining degree ≤ ``threshold`` iteratively; the
        iteration index is the layer.  Any vertices that survive all
        iterations (possible only when the threshold is below 2λ) stay ``∞``.
        """
        n = graph.num_vertices
        degree = list(graph.degrees)
        removed = [False] * n
        layer_of: dict[int, float] = {v: UNASSIGNED for v in range(n)}
        current_layer = 1
        remaining = n
        while remaining > 0 and (num_layers is None or current_layer <= num_layers):
            peel = [v for v in range(n) if not removed[v] and degree[v] <= threshold]
            if not peel:
                break
            for v in peel:
                layer_of[v] = current_layer
                removed[v] = True
            remaining -= len(peel)
            for v in peel:
                for w in graph.neighbors(v):
                    if not removed[w]:
                        degree[w] -= 1
            current_layer += 1
        deepest = current_layer if num_layers is None else num_layers
        return cls(
            graph=graph,
            layer_of=layer_of,
            num_layers=max(deepest, 1),
            out_degree=threshold,
        )


# --------------------------------------------------------------------------- #
# Definition 2.2 / Lemma 2.4: strictly increasing path counts
# --------------------------------------------------------------------------- #


def num_paths_in(assignment: PartialLayerAssignment) -> dict[int, int]:
    """``NumPathsIn(v)``: strictly increasing paths (w.r.t. ℓ) ending at ``v``.

    A path ``(v_1, ..., v_k)`` is strictly increasing if
    ``ℓ(v_1) < ℓ(v_2) < ... < ℓ(v_k) < ∞``; the single-vertex path counts, so
    every assigned vertex has ``NumPathsIn ≥ 1`` and unassigned vertices have 0.

    Computed by dynamic programming over vertices in increasing layer order:
    ``NumPathsIn(v) = 1 + Σ_{u ∈ N(v), ℓ(u) < ℓ(v)} NumPathsIn(u)``.
    """
    graph = assignment.graph
    counts: dict[int, int] = {v: 0 for v in graph.vertices}
    assigned = [v for v in graph.vertices if assignment.is_assigned(v)]
    for v in sorted(assigned, key=lambda u: assignment.layer(u)):
        total = 1
        for u in graph.neighbors(v):
            if assignment.is_assigned(u) and assignment.layer(u) < assignment.layer(v):
                total += counts[u]
        counts[v] = total
    return counts


def num_paths_out(assignment: PartialLayerAssignment) -> dict[int, int]:
    """``NumPathsOut(v)``: strictly increasing paths (w.r.t. ℓ) starting at ``v``."""
    graph = assignment.graph
    counts: dict[int, int] = {v: 0 for v in graph.vertices}
    assigned = [v for v in graph.vertices if assignment.is_assigned(v)]
    for v in sorted(assigned, key=lambda u: assignment.layer(u), reverse=True):
        total = 1
        for u in graph.neighbors(v):
            if assignment.is_assigned(u) and assignment.layer(u) > assignment.layer(v):
                total += counts[u]
        counts[v] = total
    return counts


def lemma_2_4_upper_bound(assignment: PartialLayerAssignment) -> int:
    """The right-hand side ``|V| · Σ_{j<L} d^j ≤ |V| · d^L`` of Lemma 2.4."""
    d = max(assignment.out_degree, 2)
    total_per_vertex = sum(d**j for j in range(assignment.num_layers))
    return assignment.graph.num_vertices * total_per_vertex


def enumerate_strictly_increasing_paths(
    assignment: PartialLayerAssignment, start: int, limit: int = 1_000_000
) -> list[list[int]]:
    """Explicitly enumerate strictly increasing paths starting at ``start``.

    Exponential in the worst case — used only by tests on small graphs to
    cross-check the dynamic programs above.
    """
    graph = assignment.graph
    if not assignment.is_assigned(start):
        return []
    paths: list[list[int]] = []
    stack: list[list[int]] = [[start]]
    while stack and len(paths) < limit:
        path = stack.pop()
        paths.append(path)
        tail = path[-1]
        for u in graph.neighbors(tail):
            if assignment.is_assigned(u) and assignment.layer(u) > assignment.layer(tail):
                stack.append(path + [u])
    return paths
