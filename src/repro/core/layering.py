"""Partial layer assignments, their combination and path counts.

Implements Section 2.1 of the paper:

* Definition 2.1 — a *partial layer assignment* ``ℓ : V -> [L] ∪ {∞}`` with
  out-degree ``d``: every assigned vertex has at most ``d`` neighbors in the
  same or a higher layer (unassigned = ``∞`` counts as higher).
* Claim 2.3 — the pointwise minimum of two partial layer assignments with the
  same ``L`` and ``d`` is again a partial layer assignment with those
  parameters.
* Definition 2.2 / Lemma 2.4 — strictly increasing paths and the per-vertex
  path counts ``NumPathsIn`` / ``NumPathsOut``; the total is at most
  ``n · d^L`` for a complete assignment with out-degree ``d``.

Storage layout: layers live in a flat per-vertex list (``∞`` =
:data:`UNASSIGNED`) aligned with the graph's CSR arrays, not in a
``dict[int, float]``.  The public ``layer_of`` attribute remains a read-only
``Mapping`` view over that list for source compatibility; constructors also
accept a plain sequence, which the hot paths (:meth:`~PartialLayerAssignment.from_peeling`,
:meth:`~PartialLayerAssignment.combine_min`) use to skip dict round-trips.
The peeling constructor delegates to the shared frontier kernel
:meth:`repro.graph.graph.Graph.peel_layers`, and the path-count DPs are
single passes over a layer-sorted vertex array.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.errors import InvalidLayeringError
from repro.graph.graph import Graph

UNASSIGNED = math.inf
"""Sentinel layer value for unassigned vertices (the paper's ``∞``)."""


class _LayerArrayView(Mapping):
    """Read-only ``vertex -> layer`` Mapping over the flat layer list."""

    __slots__ = ("_values",)

    def __init__(self, values: list[float]) -> None:
        self._values = values

    def __getitem__(self, v: int) -> float:
        values = self._values
        if isinstance(v, int) and 0 <= v < len(values):
            return values[v]
        raise KeyError(v)

    def __iter__(self) -> Iterator[int]:
        return iter(range(len(self._values)))

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _LayerArrayView):
            return self._values == other._values
        if isinstance(other, Mapping):
            if len(other) != len(self._values):
                return False
            try:
                return all(other[v] == value for v, value in enumerate(self._values))
            except KeyError:
                return False
        return NotImplemented

    __hash__ = None  # mirrors dict's unhashability

    def __repr__(self) -> str:
        return repr(dict(enumerate(self._values)))


@dataclass(frozen=True)
class PartialLayerAssignment:
    """A partial layer assignment ``ℓ : V(G) -> [L] ∪ {∞}`` (Definition 2.1).

    ``layer_of[v]`` is either an integer in ``1..num_layers`` or
    :data:`UNASSIGNED`.  The declared ``out_degree`` is the bound ``d`` the
    assignment promises; :meth:`validate` checks the promise.  ``layer_of``
    may be passed as a mapping (the original API) or as a flat per-vertex
    sequence; it is normalised to the internal flat list either way.
    """

    graph: Graph
    layer_of: Mapping[int, float]
    num_layers: int
    out_degree: int

    def __post_init__(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        provided = self.layer_of
        if isinstance(provided, _LayerArrayView):
            values = list(provided._values)
            if len(values) != n:
                raise InvalidLayeringError(
                    f"layer sequence has {len(values)} entries for {n} vertices"
                )
        elif isinstance(provided, Mapping):
            values = [UNASSIGNED] * n
            for v in range(n):
                value = provided.get(v, None)
                if value is None:
                    raise InvalidLayeringError(f"vertex {v} has no layer entry (use UNASSIGNED)")
                values[v] = value
        else:
            values = list(provided)
            if len(values) != n:
                raise InvalidLayeringError(
                    f"layer sequence has {len(values)} entries for {n} vertices"
                )
        num_layers = self.num_layers
        for v, value in enumerate(values):
            if value != UNASSIGNED and not (1 <= value <= num_layers):
                raise InvalidLayeringError(
                    f"vertex {v} has layer {value} outside 1..{num_layers}"
                )
        object.__setattr__(self, "_values", values)
        object.__setattr__(self, "layer_of", _LayerArrayView(values))

    # ------------------------------------------------------------------ #

    def layer(self, v: int) -> float:
        """Layer of ``v`` (``UNASSIGNED`` if not assigned)."""
        return self._values[v]

    def is_assigned(self, v: int) -> bool:
        """Whether ``v`` has a finite layer."""
        return self._values[v] != UNASSIGNED

    def assigned_vertices(self) -> list[int]:
        """All vertices with a finite layer."""
        return [v for v, value in enumerate(self._values) if value != UNASSIGNED]

    def unassigned_vertices(self) -> list[int]:
        """All vertices with layer ``∞``."""
        return [v for v, value in enumerate(self._values) if value == UNASSIGNED]

    def higher_or_equal_neighbors(self, v: int) -> list[int]:
        """Neighbors ``u`` of ``v`` with ``ℓ(u) ≥ ℓ(v)`` (the out-degree set)."""
        values = self._values
        mine = values[v]
        return [u for u in self.graph.neighbors(v) if values[u] >= mine]

    def observed_out_degree(self, v: int) -> int:
        """``|{u ∈ N(v) : ℓ(u) ≥ ℓ(v)}|`` for an assigned vertex ``v``."""
        return len(self.higher_or_equal_neighbors(v))

    def _observed_out_degrees(self):
        """Yield ``(v, ℓ(v), observed out-degree)`` for every assigned vertex.

        One pass over the CSR adjacency; shared by :meth:`validate` and
        :meth:`max_observed_out_degree`.
        """
        values = self._values
        indptr = self.graph.csr_indptr
        indices = self.graph.csr_indices
        for v, mine in enumerate(values):
            if mine == UNASSIGNED:
                continue
            observed = 0
            for j in range(indptr[v], indptr[v + 1]):
                if values[indices[j]] >= mine:
                    observed += 1
            yield v, mine, observed

    def max_observed_out_degree(self) -> int:
        """Maximum out-degree over assigned vertices (0 if nothing is assigned)."""
        return max(
            (observed for _v, _mine, observed in self._observed_out_degrees()),
            default=0,
        )

    def validate(self) -> None:
        """Raise unless every assigned vertex respects the declared out-degree bound.

        This is exactly Definition 2.1's condition; checked in one pass over
        the CSR adjacency.
        """
        bound = self.out_degree
        for v, mine, observed in self._observed_out_degrees():
            if observed > bound:
                raise InvalidLayeringError(
                    f"vertex {v} (layer {mine}) has {observed} neighbors in "
                    f"layers ≥ its own, exceeding the declared bound {bound}"
                )

    def fraction_assigned(self) -> float:
        """Fraction of vertices with a finite layer."""
        n = self.graph.num_vertices
        if n == 0:
            return 1.0
        return len(self.assigned_vertices()) / n

    # ------------------------------------------------------------------ #
    # Claim 2.3
    # ------------------------------------------------------------------ #

    def combine_min(self, other: "PartialLayerAssignment") -> "PartialLayerAssignment":
        """Pointwise minimum of two partial layer assignments (Claim 2.3).

        Both assignments must be over the same graph and declare the same
        ``L`` and ``d``; the result declares the same parameters and is again
        valid (Claim 2.3's statement, verified by the property tests).
        """
        if other.graph is not self.graph and other.graph != self.graph:
            raise InvalidLayeringError("cannot combine assignments over different graphs")
        if other.num_layers != self.num_layers or other.out_degree != self.out_degree:
            raise InvalidLayeringError(
                "cannot combine assignments with different (L, d) parameters"
            )
        combined = [a if a <= b else b for a, b in zip(self._values, other._values)]
        return PartialLayerAssignment(
            graph=self.graph,
            layer_of=combined,
            num_layers=self.num_layers,
            out_degree=self.out_degree,
        )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def fully_unassigned(cls, graph: Graph, num_layers: int, out_degree: int) -> "PartialLayerAssignment":
        """The trivial assignment mapping every vertex to ``∞``."""
        return cls(
            graph=graph,
            layer_of=[UNASSIGNED] * graph.num_vertices,
            num_layers=num_layers,
            out_degree=out_degree,
        )

    @classmethod
    def from_peeling(cls, graph: Graph, threshold: int, num_layers: int | None = None) -> "PartialLayerAssignment":
        """The auxiliary complete assignment ``ℓ_G`` of Lemma 3.13.

        Peel vertices of remaining degree ≤ ``threshold`` iteratively; the
        iteration index is the layer.  Any vertices that survive all
        iterations (possible only when the threshold is below 2λ) stay ``∞``.

        When ``num_layers`` is omitted, the declared layer count is exactly
        the deepest assigned layer (at least 1), so ``num_layers`` never
        overstates the layering depth that round bounds are derived from.
        """
        layers, rounds_used = graph.peel_layers(threshold, max_rounds=num_layers)
        layer_of = [float(layer) if layer else UNASSIGNED for layer in layers]
        declared = rounds_used if num_layers is None else num_layers
        return cls(
            graph=graph,
            layer_of=layer_of,
            num_layers=max(declared, 1),
            out_degree=threshold,
        )


# --------------------------------------------------------------------------- #
# Definition 2.2 / Lemma 2.4: strictly increasing path counts
# --------------------------------------------------------------------------- #


def num_paths_in(assignment: PartialLayerAssignment) -> dict[int, int]:
    """``NumPathsIn(v)``: strictly increasing paths (w.r.t. ℓ) ending at ``v``.

    A path ``(v_1, ..., v_k)`` is strictly increasing if
    ``ℓ(v_1) < ℓ(v_2) < ... < ℓ(v_k) < ∞``; the single-vertex path counts, so
    every assigned vertex has ``NumPathsIn ≥ 1`` and unassigned vertices have 0.

    Computed by a single dynamic-programming pass over the vertices sorted by
    increasing layer: ``NumPathsIn(v) = 1 + Σ_{u ∈ N(v), ℓ(u) < ℓ(v)} NumPathsIn(u)``.
    """
    graph = assignment.graph
    values = assignment._values
    n = graph.num_vertices
    indptr = graph.csr_indptr
    indices = graph.csr_indices
    counts = [0] * n
    order = sorted(
        (v for v in range(n) if values[v] != UNASSIGNED), key=values.__getitem__
    )
    for v in order:
        mine = values[v]
        total = 1
        for j in range(indptr[v], indptr[v + 1]):
            u = indices[j]
            if values[u] < mine:
                total += counts[u]
        counts[v] = total
    return {v: counts[v] for v in range(n)}


def num_paths_out(assignment: PartialLayerAssignment) -> dict[int, int]:
    """``NumPathsOut(v)``: strictly increasing paths (w.r.t. ℓ) starting at ``v``."""
    graph = assignment.graph
    values = assignment._values
    n = graph.num_vertices
    indptr = graph.csr_indptr
    indices = graph.csr_indices
    counts = [0] * n
    order = sorted(
        (v for v in range(n) if values[v] != UNASSIGNED),
        key=values.__getitem__,
        reverse=True,
    )
    for v in order:
        mine = values[v]
        total = 1
        for j in range(indptr[v], indptr[v + 1]):
            u = indices[j]
            # Unassigned neighbors compare greater but contribute count 0.
            if values[u] > mine:
                total += counts[u]
        counts[v] = total
    return {v: counts[v] for v in range(n)}


def lemma_2_4_upper_bound(assignment: PartialLayerAssignment) -> int:
    """The right-hand side ``|V| · Σ_{j<L} d^j ≤ |V| · d^L`` of Lemma 2.4."""
    d = max(assignment.out_degree, 2)
    total_per_vertex = sum(d**j for j in range(assignment.num_layers))
    return assignment.graph.num_vertices * total_per_vertex


def enumerate_strictly_increasing_paths(
    assignment: PartialLayerAssignment, start: int, limit: int = 1_000_000
) -> list[list[int]]:
    """Explicitly enumerate strictly increasing paths starting at ``start``.

    Exponential in the worst case — used only by tests on small graphs to
    cross-check the dynamic programs above.
    """
    graph = assignment.graph
    if not assignment.is_assigned(start):
        return []
    paths: list[list[int]] = []
    stack: list[list[int]] = [[start]]
    while stack and len(paths) < limit:
        path = stack.pop()
        paths.append(path)
        tail = path[-1]
        for u in graph.neighbors(tail):
            if assignment.is_assigned(u) and assignment.layer(u) > assignment.layer(tail):
                stack.append(path + [u])
    return paths
