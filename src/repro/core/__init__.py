"""The paper's core algorithms (Sections 2–4)."""

from repro.core.assign_tree import TreeLayerAssignment, partial_layer_assignment_tree
from repro.core.coloring import ColoringRun, color, coloring_palette_bound
from repro.core.coreness import (
    CorenessResult,
    approximate_coreness,
    densest_subgraph_from_coreness,
    exact_coreness,
    geometric_guesses,
)
from repro.core.directed_expo import ReachabilityResult, directed_reachability
from repro.core.exponentiate import ExponentiationResult, exponentiate_and_local_prune
from repro.core.full_assignment import (
    LayerAssignmentRun,
    complete_layer_assignment,
    iterated_partial_assignment,
)
from repro.core.layering import (
    UNASSIGNED,
    PartialLayerAssignment,
    enumerate_strictly_increasing_paths,
    lemma_2_4_upper_bound,
    num_paths_in,
    num_paths_out,
)
from repro.core.orientation import OrientationRun, orient, orientation_outdegree_bound
from repro.core.parameters import Parameters, choose_parameters, loglog
from repro.core.partial_assignment import (
    DecayingAssignmentResult,
    PartialAssignmentResult,
    partial_assignment_with_decay,
    partial_layer_assignment,
)
from repro.core.partitioning import (
    EdgePartition,
    VertexPartition,
    number_of_parts,
    random_edge_partition,
    random_vertex_partition,
)
from repro.core.prune import PruneOutcome, local_prune, prune_and_report
from repro.core.tree_view import TreeView, TreeViewError

__all__ = [
    "ColoringRun",
    "CorenessResult",
    "DecayingAssignmentResult",
    "EdgePartition",
    "ExponentiationResult",
    "LayerAssignmentRun",
    "OrientationRun",
    "Parameters",
    "PartialAssignmentResult",
    "PartialLayerAssignment",
    "PruneOutcome",
    "ReachabilityResult",
    "TreeLayerAssignment",
    "TreeView",
    "TreeViewError",
    "UNASSIGNED",
    "VertexPartition",
    "approximate_coreness",
    "choose_parameters",
    "color",
    "coloring_palette_bound",
    "complete_layer_assignment",
    "densest_subgraph_from_coreness",
    "exact_coreness",
    "geometric_guesses",
    "directed_reachability",
    "enumerate_strictly_increasing_paths",
    "exponentiate_and_local_prune",
    "iterated_partial_assignment",
    "lemma_2_4_upper_bound",
    "local_prune",
    "loglog",
    "num_paths_in",
    "num_paths_out",
    "number_of_parts",
    "orient",
    "orientation_outdegree_bound",
    "partial_assignment_with_decay",
    "partial_layer_assignment",
    "partial_layer_assignment_tree",
    "prune_and_report",
    "random_edge_partition",
    "random_vertex_partition",
]
