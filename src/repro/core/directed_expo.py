"""Lemma 4.1 — directed graph exponentiation along outgoing edges.

In Theorem 1.2's coloring algorithm, edges across layers are directed toward
the higher layer and edges inside a layer are bidirectional.  The color of a
vertex in layer ``j'..j-1`` depends only on vertices reachable from it along
*directed* paths of bounded length, so a batch of layers can be colored after
every vertex in the batch learns its directed reachability set (with the
colors of the already-colored, higher-layer vertices in it).

:func:`directed_reachability` computes, for every start vertex in a given set,
the set of vertices reachable along directed paths of length ≤ ``max_distance``
— centrally, but the MPC wrapper charges ``O(log(max_distance))`` rounds of
doubling plus the Lemma 4.1 gather, with per-vertex set sizes reported so the
local-memory condition (|reachable set| ≤ n^δ) is checked by the caller rather
than assumed.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.graph.graph import Graph
from repro.mpc.cluster import MPCCluster
from repro.mpc.primitives import gather_bundles


@dataclass
class ReachabilityResult:
    """Directed-reachability sets for a batch of start vertices."""

    reachable: dict[int, set[int]]
    max_set_size: int
    rounds_charged: int


def out_neighbors_by_layer(
    graph: Graph, layer_of: Mapping[int, int]
) -> dict[int, list[int]]:
    """The directed out-neighborhood used by the coloring algorithm.

    Edges inside a layer are bidirectional; edges across layers point toward
    the strictly higher layer.
    """
    out: dict[int, list[int]] = {v: [] for v in graph.vertices}
    for (u, v) in graph.edges:
        if layer_of[u] == layer_of[v]:
            out[u].append(v)
            out[v].append(u)
        elif layer_of[u] < layer_of[v]:
            out[u].append(v)
        else:
            out[v].append(u)
    return out


def directed_reachability(
    graph: Graph,
    layer_of: Mapping[int, int],
    start_vertices: Iterable[int],
    max_distance: int,
    cluster: MPCCluster | None = None,
    set_size_limit: int | None = None,
) -> ReachabilityResult:
    """Vertices reachable from each start vertex along ≤ ``max_distance`` directed steps.

    Parameters
    ----------
    graph, layer_of:
        The graph and its layer assignment defining edge directions.
    start_vertices:
        The batch of vertices that need to learn their reachability sets.
    max_distance:
        Maximum number of directed steps.
    cluster:
        Optional MPC cluster; when given, ``⌈log2(max_distance)⌉ + 1`` doubling
        rounds plus one Lemma 4.1 gather are charged, and each shipped set is
        a message whose size is the set's cardinality in words.
    set_size_limit:
        When given, reachability sets are truncated at this size and the
        truncation is reported through ``max_set_size`` exceeding the limit —
        callers use this to detect that a batch was too ambitious for the
        local-memory constraint (and must shrink the batch), mirroring the
        ``j - j' = O(δ log n / log^{2.67} log n)`` batch-size condition.
    """
    starts = list(start_vertices)
    out = out_neighbors_by_layer(graph, layer_of)

    reachable: dict[int, set[int]] = {}
    max_size = 0
    for start in starts:
        seen = {start}
        frontier = [start]
        distance = 0
        while frontier and distance < max_distance:
            next_frontier: list[int] = []
            for u in frontier:
                for w in out[u]:
                    if w not in seen:
                        seen.add(w)
                        next_frontier.append(w)
                        if set_size_limit is not None and len(seen) > set_size_limit:
                            break
                if set_size_limit is not None and len(seen) > set_size_limit:
                    break
            frontier = next_frontier
            distance += 1
            if set_size_limit is not None and len(seen) > set_size_limit:
                break
        reachable[start] = seen
        max_size = max(max_size, len(seen))

    rounds = 0
    if cluster is not None:
        doubling_rounds = max(max_distance.bit_length(), 1)
        cluster.charge_rounds(doubling_rounds, label="directed-expo:doubling")
        bundles = {v: 1 for v in graph.vertices}
        interest = {start: sorted(reachable[start]) for start in starts}
        gather_bundles(cluster, bundles, interest, label="directed-expo:gather")
        rounds = doubling_rounds + 4
    return ReachabilityResult(reachable=reachable, max_set_size=max_size, rounds_charged=rounds)
