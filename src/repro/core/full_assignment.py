"""Lemma 3.14 and Lemma 3.15 — from partial to complete layer assignments.

* **Lemma 3.14** (:func:`iterated_partial_assignment`) iterates the Lemma 3.13
  procedure on the still-unassigned residue ``O(log k)`` times, offsetting the
  layers of each round so the final layering is consistent, and keeps the
  geometric decay.

* **Lemma 3.15** (:func:`complete_layer_assignment`) first peels the graph for
  ``O(log k)`` rounds (removing vertices of degree ≤ k — each such round
  removes at least half the remaining vertices because ``k ≥ 2λ``), then runs
  Lemma 3.14 phases with *budget boosting* (``B ← min(B², n^δ·c)``) until every
  vertex is assigned.  The outcome is a complete layer assignment — the
  H-partition used by Theorems 1.1 and 1.2 — with out-degree ``O(k·log log n)``
  and layer decay ``|{v : ℓ(v) ≥ j}| ≤ 0.5^{j-1}·n``.

The functions below work on *induced subgraphs* of the original input; layers
are always reported in terms of the original vertex ids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.layering import UNASSIGNED
from repro.core.parameters import loglog
from repro.core.partial_assignment import partial_assignment_with_decay
from repro.errors import ParameterError
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.mpc.cluster import MPCCluster


@dataclass
class LayerAssignmentRun:
    """A complete (or partial) layer assignment over the original vertex ids."""

    graph: Graph
    layer_of: dict[int, float]
    out_degree_bound: int
    num_layers_used: int
    phases: int
    rounds_charged: int
    phase_log: list[dict[str, float]] = field(default_factory=list)

    def is_complete(self) -> bool:
        """Whether every vertex received a finite layer."""
        return all(self.layer_of[v] != UNASSIGNED for v in self.graph.vertices)

    def to_hpartition(self) -> HPartition:
        """Convert to an :class:`HPartition` (requires completeness)."""
        if not self.is_complete():
            missing = [v for v in self.graph.vertices if self.layer_of[v] == UNASSIGNED]
            raise ParameterError(
                f"assignment is not complete: {len(missing)} unassigned vertices"
            )
        return HPartition(self.graph, {v: int(self.layer_of[v]) for v in self.graph.vertices})


# --------------------------------------------------------------------------- #
# Lemma 3.14
# --------------------------------------------------------------------------- #


def iterated_partial_assignment(
    graph: Graph,
    k: int,
    budget: int,
    cluster: MPCCluster | None = None,
    max_iterations: int | None = None,
) -> LayerAssignmentRun:
    """Lemma 3.14: iterate the Lemma 3.13 partial assignment on the residue.

    Each iteration runs on the subgraph induced by the still-unassigned
    vertices, and the layers produced by iteration ``i`` are offset by the
    total number of layers used by iterations ``1..i-1``.  The number of
    iterations needed is ``O(log k)``; we cap it explicitly and then force the
    (typically empty) remainder into one final layer so callers always get a
    complete assignment over the vertices they passed in.
    """
    if max_iterations is None:
        max_iterations = max(2 * int(math.ceil(math.log2(max(k, 2)))) + 4, 4)

    layer_of: dict[int, float] = {v: UNASSIGNED for v in graph.vertices}
    unassigned = list(graph.vertices)
    offset = 0
    out_degree_bound = 0
    rounds_before = cluster.stats.num_rounds if cluster is not None else 0
    phase_log: list[dict[str, float]] = []
    phases = 0

    while unassigned and phases < max_iterations:
        phases += 1
        subgraph = graph.induced_subgraph(unassigned)
        result = partial_assignment_with_decay(subgraph, k=k, budget=budget, cluster=cluster)
        assignment = result.assignment
        out_degree_bound = max(out_degree_bound, assignment.out_degree)
        newly_assigned = 0
        for local_vertex in subgraph.vertices:
            layer = assignment.layer(local_vertex)
            if layer != UNASSIGNED:
                layer_of[subgraph.to_parent(local_vertex)] = offset + layer
                newly_assigned += 1
        offset += result.params.num_layers
        phase_log.append(
            {
                "phase": float(phases),
                "assigned": float(newly_assigned),
                "remaining": float(len(unassigned) - newly_assigned),
                "layers_in_phase": float(result.params.num_layers),
            }
        )
        unassigned = [v for v in unassigned if layer_of[v] == UNASSIGNED]
        if newly_assigned == 0:
            # The procedure is stuck (can only happen when k is far below the
            # true arboricity); avoid an infinite loop and let the caller's
            # completion step handle the rest.
            break

    if unassigned:
        # Final catch-all layer: the paper never reaches this branch because
        # its parameters guarantee progress; with scaled-down constants we
        # keep the output well-defined and let the validators report the
        # (possibly larger) out-degree honestly.
        offset += 1
        for v in unassigned:
            layer_of[v] = offset

    rounds_after = cluster.stats.num_rounds if cluster is not None else 0
    return LayerAssignmentRun(
        graph=graph,
        layer_of=layer_of,
        out_degree_bound=out_degree_bound,
        num_layers_used=int(offset),
        phases=phases,
        rounds_charged=rounds_after - rounds_before,
        phase_log=phase_log,
    )


# --------------------------------------------------------------------------- #
# Lemma 3.15
# --------------------------------------------------------------------------- #


def _peel_low_degree(
    graph: Graph,
    k: int,
    rounds: int,
    cluster: MPCCluster | None = None,
) -> tuple[dict[int, int], list[int], int]:
    """Stage 1 of Lemma 3.15: peel vertices of degree ≤ k for ``rounds`` rounds.

    Returns the layer of every peeled vertex (1-based), the surviving
    vertices, and the number of peeling rounds actually used.  Each peeling
    round is one MPC round (degree recomputation is an aggregate-by-key,
    charged as part of the same round).
    """
    n = graph.num_vertices
    layers, used_rounds = graph.peel_layers(k, max_rounds=rounds)
    layer_of: dict[int, int] = {}
    survivors: list[int] = []
    for v in range(n):
        if layers[v]:
            layer_of[v] = layers[v]
        else:
            survivors.append(v)
    if cluster is not None and used_rounds:
        cluster.charge_rounds(used_rounds, label="peel:low-degree")
    return layer_of, survivors, used_rounds


def complete_layer_assignment(
    graph: Graph,
    k: int,
    delta: float = 0.5,
    cluster: MPCCluster | None = None,
    initial_budget: int | None = None,
    budget_cap: int | None = None,
) -> LayerAssignmentRun:
    """Lemma 3.15: compute a complete layer assignment (H-partition).

    Parameters
    ----------
    graph:
        Input graph.
    k:
        Arboricity proxy; the lemma requires ``k ≥ c·λ(G)`` (the paper uses
        ``c = 100``; we default to the caller's choice, typically ``2λ``).
    delta:
        Memory exponent used for the budget cap ``n^δ``.
    cluster:
        Optional MPC cluster for round/memory accounting.
    initial_budget / budget_cap:
        Override the starting budget ``B_0`` and its cap (defaults:
        ``max(k², 64)`` and ``4·n^δ``).

    Returns a :class:`LayerAssignmentRun` whose ``layer_of`` is complete.
    """
    if k < 1:
        raise ParameterError("k must be at least 1")
    n = max(graph.num_vertices, 2)
    if budget_cap is None:
        budget_cap = max(int(math.ceil(4 * (n ** delta))), 64)
    if initial_budget is None:
        initial_budget = max(min(k * k, budget_cap), 64)

    rounds_before = cluster.stats.num_rounds if cluster is not None else 0

    # Stage 1: initial peeling for O(log k) rounds.
    peel_rounds = max(int(math.ceil(math.log2(max(k, 2)))) + 2, 2)
    peeled_layers, survivors, used_peel_rounds = _peel_low_degree(
        graph, k, peel_rounds, cluster=cluster
    )

    layer_of: dict[int, float] = {v: UNASSIGNED for v in graph.vertices}
    for v, layer in peeled_layers.items():
        layer_of[v] = float(layer)
    offset = used_peel_rounds

    # Stage 2: iterated partial assignment with budget boosting.
    budget = initial_budget
    phases = 0
    out_degree_bound = k  # the peeled prefix has out-degree ≤ k by construction
    phase_log: list[dict[str, float]] = [
        {
            "phase": 0.0,
            "assigned": float(len(peeled_layers)),
            "remaining": float(len(survivors)),
            "layers_in_phase": float(used_peel_rounds),
        }
    ]
    max_phases = max(int(math.ceil(loglog(n))) + 4, 4)

    remaining = list(survivors)
    while remaining and phases < max_phases:
        phases += 1
        subgraph = graph.induced_subgraph(remaining)
        run = iterated_partial_assignment(subgraph, k=k, budget=budget, cluster=cluster)
        out_degree_bound = max(out_degree_bound, run.out_degree_bound)
        for local_vertex in subgraph.vertices:
            layer = run.layer_of[local_vertex]
            if layer != UNASSIGNED:
                layer_of[subgraph.to_parent(local_vertex)] = offset + layer
        offset += run.num_layers_used
        newly_remaining = [v for v in remaining if layer_of[v] == UNASSIGNED]
        phase_log.append(
            {
                "phase": float(phases),
                "assigned": float(len(remaining) - len(newly_remaining)),
                "remaining": float(len(newly_remaining)),
                "layers_in_phase": float(run.num_layers_used),
            }
        )
        remaining = newly_remaining
        budget = min(budget * budget, budget_cap) if budget < budget_cap else budget_cap

    if remaining:
        offset += 1
        for v in remaining:
            layer_of[v] = float(offset)

    rounds_after = cluster.stats.num_rounds if cluster is not None else 0
    return LayerAssignmentRun(
        graph=graph,
        layer_of=layer_of,
        out_degree_bound=max(out_degree_bound, k),
        num_layers_used=int(offset),
        phases=phases,
        rounds_charged=rounds_after - rounds_before,
        phase_log=phase_log,
    )
