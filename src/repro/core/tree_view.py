"""Rooted tree views with valid mappings (Definitions 2.3–2.7).

During the graph-exponentiation procedure of Algorithm 2, every vertex ``v``
maintains a *rooted tree* ``T_v`` together with a mapping
``map : V(T_v) -> V(G)``.  The same graph vertex may appear many times in the
tree (once per distinct path reaching it), but the mapping must be *valid*
(Definition 2.3):

1. every tree edge maps to a graph edge, and
2. the children of any tree node map to pairwise distinct graph vertices.

The tree operations the paper needs are:

* **pruning** (Definition 2.4) — removing nodes, keeping the root;
* **attachment** (Definition 2.5) — replacing selected leaves with fresh
  copies of other trees whose roots map to the same graph vertex;
* **missing neighbors** (Definition 2.6) — graph neighbors of ``map(x)`` not
  covered by the children of ``x``;
* **strictly monotonic reachability** (Definition 2.7) — whether the layers
  along the path from a node up to the root strictly decrease toward the node
  (equivalently, strictly increase toward the root).

:class:`TreeView` stores the tree in flat arrays (parent pointers and child
lists indexed by node id) so copying, pruning and attaching are simple,
allocation-light operations; all algorithms on it are iterative so deep trees
cannot exhaust Python's recursion limit.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.graph.graph import Graph


class TreeViewError(ReproError):
    """Raised when a tree view is built or manipulated inconsistently."""


class TreeView:
    """A rooted tree whose nodes map to vertices of a graph.

    Node ``0`` is always the root.  ``parent[x]`` is the parent node id
    (``-1`` for the root), ``children[x]`` the list of child ids and
    ``vertex_of[x]`` the graph vertex the node maps to.
    """

    __slots__ = ("parent", "children", "vertex_of")

    def __init__(self, vertex_of: Sequence[int], parent: Sequence[int]) -> None:
        if len(vertex_of) != len(parent):
            raise TreeViewError("vertex_of and parent must have the same length")
        if not vertex_of:
            raise TreeViewError("a tree view has at least its root node")
        if parent[0] != -1:
            raise TreeViewError("node 0 must be the root (parent -1)")
        self.vertex_of: list[int] = [int(v) for v in vertex_of]
        self.parent: list[int] = [int(p) for p in parent]
        self.children: list[list[int]] = [[] for _ in range(len(parent))]
        for node, par in enumerate(self.parent):
            if node == 0:
                continue
            if not 0 <= par < len(self.parent):
                raise TreeViewError(f"node {node} has invalid parent {par}")
            self.children[par].append(node)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def single_node(cls, vertex: int) -> "TreeView":
        """The one-node tree rooted at (and mapping to) ``vertex``."""
        return cls([vertex], [-1])

    @classmethod
    def star_of_neighbors(cls, graph: Graph, vertex: int) -> "TreeView":
        """Root mapping to ``vertex`` with one child per graph neighbor.

        This is the initial tree ``T_v^{(0)}`` of Algorithm 2 for active
        vertices.
        """
        neighbors = graph.neighbors(vertex)
        vertex_of = [vertex] + list(neighbors)
        parent = [-1] + [0] * len(neighbors)
        return cls(vertex_of, parent)

    def copy(self) -> "TreeView":
        """A deep copy (fresh node ids are not needed; structure is copied)."""
        return TreeView(list(self.vertex_of), list(self.parent))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def root(self) -> int:
        """The root node id (always 0)."""
        return 0

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the tree."""
        return len(self.vertex_of)

    def nodes(self) -> range:
        """All node ids."""
        return range(self.num_nodes)

    def map(self, node: int) -> int:
        """Graph vertex the node maps to."""
        return self.vertex_of[node]

    def child_vertices(self, node: int) -> list[int]:
        """Graph vertices of the node's children."""
        return [self.vertex_of[c] for c in self.children[node]]

    def is_leaf(self, node: int) -> bool:
        """Whether the node has no children."""
        return not self.children[node]

    def depth(self, node: int) -> int:
        """Distance from the root to ``node``."""
        d = 0
        while node != 0:
            node = self.parent[node]
            d += 1
        return d

    def depths(self) -> list[int]:
        """Depths of all nodes (BFS order computation, O(n))."""
        depth = [0] * self.num_nodes
        order = self.bfs_order()
        for node in order:
            if node != 0:
                depth[node] = depth[self.parent[node]] + 1
        return depth

    def bfs_order(self) -> list[int]:
        """Node ids in BFS order from the root."""
        order: list[int] = []
        queue: deque[int] = deque([0])
        while queue:
            node = queue.popleft()
            order.append(node)
            queue.extend(self.children[node])
        return order

    def subtree_sizes(self) -> list[int]:
        """Size of the subtree rooted at each node (iterative, reverse BFS)."""
        sizes = [1] * self.num_nodes
        for node in reversed(self.bfs_order()):
            for child in self.children[node]:
                sizes[node] += sizes[child]
        return sizes

    def path_to_root(self, node: int) -> list[int]:
        """The node ids on the path ``node -> ... -> root`` (inclusive)."""
        path = [node]
        while node != 0:
            node = self.parent[node]
            path.append(node)
        return path

    def leaves_at_depth(self, target_depth: int) -> list[int]:
        """Leaf nodes whose distance from the root is exactly ``target_depth``."""
        depth = self.depths()
        return [
            node
            for node in self.nodes()
            if depth[node] == target_depth and self.is_leaf(node)
        ]

    # ------------------------------------------------------------------ #
    # Definition 2.3: validity of the mapping
    # ------------------------------------------------------------------ #

    def mapping_violations(self, graph: Graph) -> list[str]:
        """Human-readable list of validity violations (empty iff valid)."""
        problems: list[str] = []
        for node in self.nodes():
            if node != 0:
                u = self.vertex_of[self.parent[node]]
                v = self.vertex_of[node]
                if not graph.has_edge(u, v):
                    problems.append(
                        f"tree edge ({self.parent[node]}, {node}) maps to non-edge ({u}, {v})"
                    )
            child_vertices = self.child_vertices(node)
            if len(child_vertices) != len(set(child_vertices)):
                problems.append(f"node {node} has two children mapping to the same vertex")
        return problems

    def is_valid_mapping(self, graph: Graph) -> bool:
        """Definition 2.3: tree edges map to graph edges; sibling images are distinct."""
        return not self.mapping_violations(graph)

    # ------------------------------------------------------------------ #
    # Definition 2.6: missing neighbors
    # ------------------------------------------------------------------ #

    def missing_neighbors(self, graph: Graph, node: int) -> set[int]:
        """``Missing(x) = N_G(map(x)) \\ {map(c) : c child of x}``."""
        covered = set(self.child_vertices(node))
        return {u for u in graph.neighbors(self.vertex_of[node]) if u not in covered}

    def missing_count(self, graph: Graph, node: int) -> int:
        """``|Missing(x)|`` without materialising the set twice."""
        return len(self.missing_neighbors(graph, node))

    # ------------------------------------------------------------------ #
    # Definition 2.7: strictly monotonic reachability
    # ------------------------------------------------------------------ #

    def is_strictly_monotonically_reachable(
        self, node: int, layer_of: Mapping[int, float]
    ) -> bool:
        """Whether layers strictly increase along the path from ``node`` to the root.

        ``layer_of`` maps graph vertices to layers (``math.inf`` for ``∞``).
        Following Definition 2.7, we require
        ``ℓ(map(x_1)) < ℓ(map(x_2)) < ... < ℓ(map(x_k))`` where ``x_1 = node``
        and ``x_k`` is the root.  Note that an ``∞`` layer anywhere except
        possibly nowhere (since a strict ``< ∞`` chain cannot pass ∞ twice)
        makes the check fail except when only the root carries it; we follow
        the definition literally: all comparisons must be strict and finite
        values compare normally with ``∞``.
        """
        path = self.path_to_root(node)
        layers = [layer_of[self.vertex_of[x]] for x in path]
        for lower, higher in zip(layers, layers[1:]):
            if not lower < higher:
                return False
        return True

    def strictly_monotonically_reachable_nodes(
        self, layer_of: Mapping[int, float]
    ) -> list[int]:
        """All nodes satisfying Definition 2.7 (computed top-down in O(n))."""
        reachable: list[bool] = [True] * self.num_nodes
        result: list[int] = []
        for node in self.bfs_order():
            if node != 0:
                par = self.parent[node]
                ok = (
                    reachable[par]
                    and layer_of[self.vertex_of[node]] < layer_of[self.vertex_of[par]]
                )
                reachable[node] = ok
            if reachable[node]:
                result.append(node)
        return result

    # ------------------------------------------------------------------ #
    # Definition 2.4: pruning (subset restriction)
    # ------------------------------------------------------------------ #

    def restricted_to(self, kept_nodes: Iterable[int]) -> "TreeView":
        """The tree induced by ``kept_nodes`` (must be closed under parents, contain the root).

        Implements Definition 2.4: node ids are re-packed but the mapping is
        simply restricted.
        """
        kept = set(kept_nodes)
        if 0 not in kept:
            raise TreeViewError("the root must be kept when pruning")
        for node in kept:
            if node != 0 and self.parent[node] not in kept:
                raise TreeViewError(
                    f"kept node {node} has a removed parent; pruning must remove whole subtrees"
                )
        old_order = [node for node in self.bfs_order() if node in kept]
        new_id = {old: new for new, old in enumerate(old_order)}
        vertex_of = [self.vertex_of[old] for old in old_order]
        parent = [
            -1 if old == 0 else new_id[self.parent[old]] for old in old_order
        ]
        return TreeView(vertex_of, parent)

    # ------------------------------------------------------------------ #
    # Definition 2.5: attachment
    # ------------------------------------------------------------------ #

    def attach(self, replacements: Mapping[int, "TreeView"]) -> "TreeView":
        """Replace each leaf in ``replacements`` by a fresh copy of the given tree.

        Implements Definition 2.5: for each (leaf ``x``, tree ``T_x``) pair the
        root of ``T_x`` must map to the same graph vertex as ``x``; the leaf is
        replaced by the whole tree.  Leaves must be distinct leaves of this
        tree.
        """
        for leaf, subtree in replacements.items():
            if not self.is_leaf(leaf):
                raise TreeViewError(f"node {leaf} is not a leaf; cannot attach there")
            if subtree.vertex_of[0] != self.vertex_of[leaf]:
                raise TreeViewError(
                    f"attachment root maps to {subtree.vertex_of[0]} but leaf {leaf} maps "
                    f"to {self.vertex_of[leaf]}"
                )

        vertex_of: list[int] = []
        parent: list[int] = []

        def append_node(vertex: int, parent_id: int) -> int:
            vertex_of.append(vertex)
            parent.append(parent_id)
            return len(vertex_of) - 1

        # Copy this tree in BFS order, substituting subtrees at the chosen leaves.
        new_id_of: dict[int, int] = {}
        for node in self.bfs_order():
            parent_new = -1 if node == 0 else new_id_of[self.parent[node]]
            new_id_of[node] = append_node(self.vertex_of[node], parent_new)

        for leaf, subtree in replacements.items():
            # The leaf's new node becomes the root of the attached copy: its
            # mapping is identical, so we only need to hang the subtree's
            # descendants below it.
            sub_new_id: dict[int, int] = {0: new_id_of[leaf]}
            for sub_node in subtree.bfs_order():
                if sub_node == 0:
                    continue
                parent_new = sub_new_id[subtree.parent[sub_node]]
                sub_new_id[sub_node] = append_node(subtree.vertex_of[sub_node], parent_new)

        return TreeView(vertex_of, parent)

    # ------------------------------------------------------------------ #

    def word_size(self) -> int:
        """Number of machine words needed to describe the tree (for MPC accounting).

        Each node contributes its mapped vertex id and its parent pointer —
        two words — matching the convention that a word describes a vertex or
        an edge.
        """
        return 2 * self.num_nodes

    def __repr__(self) -> str:
        return f"TreeView(nodes={self.num_nodes}, root_vertex={self.vertex_of[0]})"
