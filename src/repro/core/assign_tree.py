"""Algorithm 3 — ``PartialLayerAssignmentTree``.

Given the tree view ``T`` of a vertex (with its valid mapping into ``G``) and
a per-node missing-neighbor count, the algorithm peels the *tree* in ``L``
iterations: in iteration ``j`` every still-unassigned tree node ``x`` whose
number of still-unassigned children plus ``|Missing(x)|`` is at most ``a``
receives layer ``j``.  Nodes that survive all ``L`` iterations get ``∞``.

The paper's guarantees:

* **Lemma 3.8** — for every strictly-monotonically-reachable node ``x``,
  ``ℓ_T(x) ≤ ℓ_G(map(x))`` (with ``a ≥ d + missing``); in particular the root
  gets a layer at most its "true" layer.
* **Lemma 3.10** — projecting the tree layers back to graph vertices by
  taking minima yields out-degree at most ``a``.

This procedure is executed locally on the machine holding the tree (no
communication), which is why the MPC wrapper only charges local computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.tree_view import TreeView
from repro.errors import ParameterError
from repro.graph.graph import Graph

INFINITE_LAYER = math.inf


@dataclass(frozen=True)
class TreeLayerAssignment:
    """Layer assignment ``ℓ_T : V(T) -> [L] ∪ {∞}`` produced by Algorithm 3."""

    tree: TreeView
    layer_of_node: tuple[float, ...]
    num_layers: int
    out_degree_parameter: int

    def layer(self, node: int) -> float:
        """Layer of a tree node (``math.inf`` for ``∞``)."""
        return self.layer_of_node[node]

    def vertex_layers(self) -> dict[int, float]:
        """Per graph-vertex minimum layer over all tree nodes mapping to it.

        This is the projection step used by Algorithm 4 (and Lemma 3.10): a
        vertex inherits the smallest layer any of its occurrences received.
        """
        best: dict[int, float] = {}
        for node in self.tree.nodes():
            vertex = self.tree.map(node)
            layer = self.layer_of_node[node]
            if vertex not in best or layer < best[vertex]:
                best[vertex] = layer
        return best


def partial_layer_assignment_tree(
    graph: Graph,
    tree: TreeView,
    out_degree_parameter: int,
    num_layers: int,
) -> TreeLayerAssignment:
    """Run Algorithm 3 on a single tree view.

    Parameters
    ----------
    graph:
        The underlying graph (needed for the missing-neighbor counts).
    tree:
        The tree view with a valid mapping whose layers we compute.
    out_degree_parameter:
        The threshold ``a``; the paper sets ``a = (s + 1)·k``.
    num_layers:
        The number of peeling iterations ``L``.
    """
    if out_degree_parameter < 0:
        raise ParameterError("the out-degree parameter a must be non-negative")
    if num_layers < 1:
        raise ParameterError("num_layers must be at least 1")

    missing = [tree.missing_count(graph, node) for node in tree.nodes()]
    layer_of: list[float] = [INFINITE_LAYER] * tree.num_nodes
    # unassigned_children[x] = number of children of x that are still in V_{≥ j}.
    unassigned_children = [len(tree.children[node]) for node in tree.nodes()]
    unassigned = set(tree.nodes())

    for layer in range(1, num_layers + 1):
        selected = [
            node
            for node in unassigned
            if unassigned_children[node] + missing[node] <= out_degree_parameter
        ]
        if not selected:
            # No node qualifies; later iterations cannot change that because
            # the quantities only shrink when nodes are removed — but removal
            # happens only via selection, so we can stop early.
            break
        for node in selected:
            layer_of[node] = layer
            unassigned.discard(node)
        for node in selected:
            parent = tree.parent[node]
            if parent >= 0:
                unassigned_children[parent] -= 1

    return TreeLayerAssignment(
        tree=tree,
        layer_of_node=tuple(layer_of),
        num_layers=num_layers,
        out_degree_parameter=out_degree_parameter,
    )
