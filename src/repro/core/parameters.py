"""Parameter selection for the paper's algorithms.

The paper fixes its parameters with large proof-friendly constants
(``k ≥ 100·λ``, ``B = k^100 ≤ n^{δ/100}``, ``s = ⌈10 log log n⌉``,
``L = ⌈0.1 log_k B⌉``).  Running those constants verbatim is impossible at
laptop scale — ``k^100`` overflows any memory for ``k ≥ 2`` — so this module
centralises the translation from the paper's parameter *relations* to
feasible concrete values, keeping every structural requirement intact:

* ``k ≥ c_k · λ``      (the pruning parameter dominates the arboricity),
* ``B ≥ k²`` and ``B ≤ n^δ`` scaled by a constant (tree views fit a machine),
* ``s > log₂ L``        (enough exponentiation steps to span ``L`` layers),
* ``a = (s + 1) · k``   (the layer out-degree bound of Claim 3.12),
* ``L ≥ 1``.

DESIGN.md documents this as a substitution; the validators and tests check all
bounds against the *configured* constants so the shape of every claim is still
verified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class Parameters:
    """Concrete parameters for one invocation of the layer-assignment pipeline.

    Attributes
    ----------
    k:
        Pruning parameter of Algorithm 1/2; must satisfy ``k ≥ λ``.
    budget:
        Tree-view budget ``B`` of Algorithm 2; trees never exceed ``B`` nodes.
    steps:
        Number of exponentiation steps ``s`` in Algorithm 2.
    num_layers:
        Number of layers ``L`` targeted by one call of Algorithm 4.
    """

    k: int
    budget: int
    steps: int
    num_layers: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ParameterError("k must be at least 1")
        if self.budget < 4:
            raise ParameterError("budget B must be at least 4")
        if self.steps < 1:
            raise ParameterError("steps s must be at least 1")
        if self.num_layers < 1:
            raise ParameterError("num_layers L must be at least 1")
        if self.steps < math.log2(self.num_layers) + 1e-9:
            raise ParameterError(
                f"steps s={self.steps} must exceed log2(L)={math.log2(self.num_layers):.2f} "
                "(Lemma 3.7 requires s > log2 L)"
            )

    @property
    def layer_out_degree(self) -> int:
        """The out-degree bound ``a = (s + 1) · k`` of Claim 3.12."""
        return (self.steps + 1) * self.k

    @property
    def sqrt_budget(self) -> int:
        """``⌊√B⌋`` — the per-tree size threshold used by Algorithm 2."""
        return int(math.isqrt(self.budget))


def log2_ceil(x: float) -> int:
    """``⌈log2 x⌉`` for ``x ≥ 1`` (0 for smaller values)."""
    if x <= 1:
        return 0
    return int(math.ceil(math.log2(x)))


def loglog(n: int) -> float:
    """``log2 log2 n`` clamped below at 1.0 (the paper's ubiquitous quantity)."""
    if n < 4:
        return 1.0
    return max(math.log2(math.log2(n)), 1.0)


def choose_parameters(
    num_vertices: int,
    arboricity_bound: int,
    delta: float = 0.5,
    k_factor: float = 2.0,
    budget_cap: int | None = None,
) -> Parameters:
    """Select ``(k, B, s, L)`` for a graph of ``num_vertices`` and arboricity ≤ ``arboricity_bound``.

    Mirrors Lemma 3.13's parameterisation with scaled constants:

    * ``k = max(2, ⌈k_factor · arboricity_bound⌉)``
      (paper: ``k ∈ [100λ, 200λ]``),
    * ``B = min(max(k², 64), ⌈n^δ⌉, budget_cap)``
      (paper: ``k^100 ≤ B ≤ n^{δ/100}``),
    * ``L = max(1, ⌈c_L · log_k B⌉)`` with ``c_L = 1``
      (paper: ``⌈0.1 log_k B⌉``),
    * ``s = ⌈log2 L⌉ + ⌈log2 log2 n⌉ + 1``
      (paper: ``⌈10 log log n⌉``; the relation that matters is ``s > log2 L``).
    """
    if num_vertices < 1:
        raise ParameterError("num_vertices must be at least 1")
    if arboricity_bound < 0:
        raise ParameterError("arboricity_bound must be non-negative")
    if not 0 < delta:
        raise ParameterError("delta must be positive")

    k = max(2, int(math.ceil(k_factor * max(arboricity_bound, 1))))
    machine_budget = int(math.ceil(max(num_vertices, 2) ** delta)) * 4
    budget = max(k * k, 64)
    budget = min(budget, max(machine_budget, 64))
    if budget_cap is not None:
        budget = min(budget, max(budget_cap, 64))
    budget = max(budget, 16)

    if budget > k:
        num_layers = max(1, int(math.ceil(math.log(budget) / math.log(max(k, 2)))))
    else:
        num_layers = 1
    # Lemma 3.7 only needs s > log2(L); see partial_assignment_with_decay for
    # why we do not inflate s with the paper's extra log log n factor.
    steps = max(log2_ceil(max(num_layers, 2)) + 1, 2)
    return Parameters(k=k, budget=budget, steps=steps, num_layers=num_layers)
