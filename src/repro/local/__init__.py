"""LOCAL model substrate: synchronous network simulator and LOCAL subroutines."""

from repro.local.list_coloring import (
    ListColoringResult,
    greedy_list_coloring,
    random_list_coloring,
    validate_lists,
)
from repro.local.network import LocalNetwork, LocalRunResult, VertexAlgorithm
from repro.local.peeling import (
    PeelingResult,
    barenboim_elkin_peeling,
    peeling_layers_reference,
    peeling_threshold,
)

__all__ = [
    "ListColoringResult",
    "LocalNetwork",
    "LocalRunResult",
    "PeelingResult",
    "VertexAlgorithm",
    "barenboim_elkin_peeling",
    "greedy_list_coloring",
    "peeling_layers_reference",
    "peeling_threshold",
    "random_list_coloring",
    "validate_lists",
]
