"""Synchronous LOCAL-model network simulator.

In the LOCAL model [Lin87, Pel00] the graph itself is the communication
network: one processor per vertex, unbounded message size, and per round every
vertex may send one message to each neighbor.  The round complexity is the
number of synchronous rounds until every vertex knows its own output.

The paper uses the LOCAL model twice:

* as the *reference process* the MPC algorithm approximately simulates (the
  Θ(log n)-round Barenboim–Elkin peeling, :mod:`repro.local.peeling`);
* as the subroutine model for degree+1 list coloring inside each layer of
  Theorem 1.2 (:mod:`repro.local.list_coloring`).

This simulator runs vertex programs written against :class:`VertexAlgorithm`
one synchronous round at a time, counting rounds, so baselines that "run the
LOCAL algorithm in MPC round-by-round" can be measured honestly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.graph.graph import Graph


class VertexAlgorithm(ABC):
    """A vertex-centric synchronous algorithm in the LOCAL model.

    The simulator drives the algorithm as follows::

        states = {v: init(v) for v in V}
        while not all halted:
            outbox[v][w] = message(v, state, w)   # one message per neighbor
            state'[v] = update(v, state, inbox)   # inbox: neighbor -> message
    """

    @abstractmethod
    def init(self, vertex: int, graph: Graph) -> Any:
        """Initial state of ``vertex``; it knows only its own id and degree."""

    @abstractmethod
    def message(self, vertex: int, state: Any, neighbor: int) -> Any:
        """Message ``vertex`` sends to ``neighbor`` this round (``None`` = nothing)."""

    @abstractmethod
    def update(self, vertex: int, state: Any, inbox: Mapping[int, Any]) -> Any:
        """New state of ``vertex`` after receiving this round's messages."""

    @abstractmethod
    def is_halted(self, vertex: int, state: Any) -> bool:
        """Whether ``vertex`` has fixed its output."""

    @abstractmethod
    def output(self, vertex: int, state: Any) -> Any:
        """Final output of ``vertex`` (only consulted once halted)."""


@dataclass
class LocalRunResult:
    """Result of running a LOCAL algorithm to completion."""

    outputs: dict[int, Any]
    rounds: int
    halted: bool


class LocalNetwork:
    """Synchronous simulator for the LOCAL model on a fixed graph."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph

    def run(self, algorithm: VertexAlgorithm, max_rounds: int = 10_000) -> LocalRunResult:
        """Run ``algorithm`` until every vertex halts (or ``max_rounds`` elapse).

        Rounds in which every vertex is already halted are not charged, so the
        returned ``rounds`` is the genuine LOCAL round complexity of the run.
        """
        graph = self.graph
        states: dict[int, Any] = {v: algorithm.init(v, graph) for v in graph.vertices}
        rounds = 0
        while rounds < max_rounds:
            active = [v for v in graph.vertices if not algorithm.is_halted(v, states[v])]
            if not active:
                return LocalRunResult(
                    outputs={v: algorithm.output(v, states[v]) for v in graph.vertices},
                    rounds=rounds,
                    halted=True,
                )
            # Message generation: every vertex (halted or not) may still need to
            # answer its neighbors, so we generate messages for all vertices.
            inboxes: dict[int, dict[int, Any]] = {v: {} for v in graph.vertices}
            for v in graph.vertices:
                for w in graph.neighbors(v):
                    payload = algorithm.message(v, states[v], w)
                    if payload is not None:
                        inboxes[w][v] = payload
            for v in graph.vertices:
                if not algorithm.is_halted(v, states[v]):
                    states[v] = algorithm.update(v, states[v], inboxes[v])
            rounds += 1
        return LocalRunResult(
            outputs={v: algorithm.output(v, states[v]) for v in graph.vertices},
            rounds=rounds,
            halted=False,
        )
