"""Randomized degree+1 list coloring in the LOCAL model.

Theorem 1.2 colors the layers of the H-partition from the highest layer down;
inside each layer the remaining task is a *degree+1 list coloring*: every
vertex has a palette that excludes the colors already taken by its
higher-layer neighbors, and the palette is strictly larger than its degree
inside the layer.  The paper plugs in the state-of-the-art
``Õ(log^{5/3} log n)``-round algorithm of [HKNT22, GG24b] as a black box.

We substitute a simple randomized "try a random available color, keep it if no
conflicting neighbor picked the same color" algorithm.  It completes with high
probability in ``O(log n)`` rounds, and in ``O(log Δ_layer + log log n)``
rounds in the parameter regimes we run; the substitution is faithful because
Theorem 1.2 only needs *some* correct degree+1 list-coloring subroutine and we
account for the subroutine's rounds explicitly (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.errors import InvalidColoringError, ParameterError
from repro.graph.graph import Graph


@dataclass
class ListColoringResult:
    """Outcome of a list-coloring run on (a subgraph of) the layer graph."""

    colors: dict[int, int]
    rounds: int


def validate_lists(graph: Graph, palettes: Mapping[int, Sequence[int]]) -> None:
    """Check the degree+1 precondition: ``|palette(v)| ≥ deg(v) + 1`` for all v."""
    for v in graph.vertices:
        palette = palettes.get(v)
        if palette is None:
            raise ParameterError(f"vertex {v} has no palette")
        if len(set(palette)) < graph.degree(v) + 1:
            raise ParameterError(
                f"vertex {v} has {len(set(palette))} colors but degree {graph.degree(v)}"
            )


def random_list_coloring(
    graph: Graph,
    palettes: Mapping[int, Sequence[int]],
    rng: random.Random | None = None,
    seed: int | None = None,
    max_rounds: int | None = None,
) -> ListColoringResult:
    """Color ``graph`` so every vertex gets a color from its own palette.

    The synchronous randomized process: every uncolored vertex proposes a
    uniformly random color from its palette minus the colors of already-fixed
    neighbors; a vertex keeps its proposal if no *uncolored* neighbor proposed
    the same color this round.  Each vertex survives a round with probability
    ≥ 1/2 (since its palette exceeds its degree), so the process finishes in
    ``O(log n)`` rounds with high probability.

    Returns the coloring and the number of synchronous rounds used.
    """
    rng = rng if rng is not None else random.Random(seed)
    validate_lists(graph, palettes)
    n = graph.num_vertices
    if max_rounds is None:
        max_rounds = 16 * max(n.bit_length(), 4)

    colors: dict[int, int] = {}
    uncolored = set(graph.vertices)
    rounds = 0
    while uncolored and rounds < max_rounds:
        rounds += 1
        proposals: dict[int, int] = {}
        for v in uncolored:
            taken = {colors[w] for w in graph.neighbors(v) if w in colors}
            available = [c for c in palettes[v] if c not in taken]
            if not available:
                # Cannot happen under the degree+1 precondition, but guard
                # against caller errors with a clear message.
                raise InvalidColoringError(
                    f"vertex {v} ran out of available colors during list coloring"
                )
            proposals[v] = rng.choice(available)
        newly_colored = []
        for v in uncolored:
            conflict = any(
                w in proposals and proposals[w] == proposals[v]
                for w in graph.neighbors(v)
            )
            if not conflict:
                newly_colored.append(v)
        for v in newly_colored:
            colors[v] = proposals[v]
        uncolored.difference_update(newly_colored)

    if uncolored:
        # Deterministic clean-up: color the stragglers greedily.  They are few
        # (the random process stalls only with negligible probability), and a
        # real LOCAL algorithm would finish them with a deterministic
        # O(Δ + log* n) routine; we count one extra round per vertex colored
        # to stay conservative.
        for v in sorted(uncolored):
            taken = {colors[w] for w in graph.neighbors(v) if w in colors}
            available = [c for c in palettes[v] if c not in taken]
            if not available:
                raise InvalidColoringError(
                    f"vertex {v} ran out of available colors during clean-up"
                )
            colors[v] = available[0]
            rounds += 1

    return ListColoringResult(colors=colors, rounds=rounds)


def greedy_list_coloring(
    graph: Graph, palettes: Mapping[int, Sequence[int]]
) -> dict[int, int]:
    """Sequential greedy list coloring (reference implementation for tests)."""
    validate_lists(graph, palettes)
    colors: dict[int, int] = {}
    for v in graph.vertices:
        taken = {colors[w] for w in graph.neighbors(v) if w in colors}
        available = [c for c in palettes[v] if c not in taken]
        if not available:
            raise InvalidColoringError(f"vertex {v} has no available color")
        colors[v] = available[0]
    return colors
