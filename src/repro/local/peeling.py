"""Barenboim–Elkin peeling in the LOCAL model.

The simple LOCAL algorithm of [BE08] that the paper uses as its reference
process: in every round, all vertices whose *remaining* degree is at most
``(2 + ε)·λ`` remove themselves simultaneously and join the current layer;
their edges are oriented outward (away from them), ties broken toward the
higher identifier.  The process terminates in ``O(log n)`` rounds because a
graph of arboricity λ always has at least half of its vertices with degree
``≤ (2+ε)λ`` — in fact at least an ``ε/(2+ε)`` fraction.

Outputs both the resulting :class:`~repro.graph.hpartition.HPartition` and the
LOCAL round count, which baseline E3 compares against the MPC algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ParameterError
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.local.network import LocalNetwork, VertexAlgorithm


@dataclass
class PeelingResult:
    """Outcome of the LOCAL peeling process."""

    partition: HPartition
    orientation: Orientation
    rounds: int
    threshold: int


class _PeelingState:
    __slots__ = ("layer", "remaining_degree", "removed_neighbors")

    def __init__(self, degree: int) -> None:
        self.layer: int | None = None
        self.remaining_degree = degree
        self.removed_neighbors: set[int] = set()


class _PeelingAlgorithm(VertexAlgorithm):
    """Vertex program implementing the peeling process with threshold ``d``."""

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.current_round = 0

    def init(self, vertex: int, graph: Graph) -> _PeelingState:
        return _PeelingState(graph.degree(vertex))

    def message(self, vertex: int, state: _PeelingState, neighbor: int) -> Any:
        # A vertex announces the round in which it was removed (or None).
        return state.layer

    def update(self, vertex: int, state: _PeelingState, inbox: Mapping[int, Any]) -> _PeelingState:
        # First, account for neighbors removed in the previous round.
        for neighbor, neighbor_layer in inbox.items():
            if neighbor_layer is not None and neighbor not in state.removed_neighbors:
                state.removed_neighbors.add(neighbor)
                state.remaining_degree -= 1
        if state.layer is None and state.remaining_degree <= self.threshold:
            state.layer = self.current_round
        return state

    def is_halted(self, vertex: int, state: _PeelingState) -> bool:
        return state.layer is not None

    def output(self, vertex: int, state: _PeelingState) -> int:
        return state.layer if state.layer is not None else -1


def peeling_threshold(arboricity: int, epsilon: float = 0.5) -> int:
    """The removal threshold ``⌈(2 + ε)·λ⌉`` used by the peeling process."""
    if arboricity < 0:
        raise ParameterError("arboricity must be non-negative")
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    return max(1, math.ceil((2.0 + epsilon) * max(arboricity, 1)))


def barenboim_elkin_peeling(
    graph: Graph,
    arboricity: int,
    epsilon: float = 0.5,
    max_rounds: int | None = None,
) -> PeelingResult:
    """Run the Barenboim–Elkin peeling LOCAL algorithm to completion.

    Parameters
    ----------
    graph:
        Input graph.
    arboricity:
        An upper bound on λ(G); the threshold is ``(2+ε)·arboricity``.
    epsilon:
        Slack constant of the threshold.
    max_rounds:
        Safety cap; defaults to ``4·⌈log2 n⌉ + 8`` which is far above the
        theoretical bound for correct parameters.

    The resulting H-partition has out-degree at most the threshold, and the
    derived orientation therefore has max outdegree ≤ ``(2+ε)·λ``.
    """
    n = graph.num_vertices
    if n == 0:
        empty = HPartition(graph, {})
        return PeelingResult(empty, empty.to_orientation(), 0, 0)
    threshold = peeling_threshold(arboricity, epsilon)
    if max_rounds is None:
        max_rounds = 4 * max(int(math.ceil(math.log2(max(n, 2)))), 1) + 8

    # The simulator drives the vertex program; the program needs to know the
    # current round index to stamp layers, so we advance it manually.
    algorithm = _PeelingAlgorithm(threshold)
    network = LocalNetwork(graph)

    # We cannot use network.run directly because the algorithm's notion of the
    # current round must advance in lockstep; drive rounds explicitly.
    states = {v: algorithm.init(v, graph) for v in graph.vertices}
    rounds = 0
    # Round 0: vertices with initial degree below the threshold join layer 1.
    for v in graph.vertices:
        if states[v].remaining_degree <= threshold:
            states[v].layer = 0
    rounds += 1
    while any(states[v].layer is None for v in graph.vertices) and rounds < max_rounds:
        algorithm.current_round = rounds
        inboxes: dict[int, dict[int, Any]] = {v: {} for v in graph.vertices}
        for v in graph.vertices:
            payload = states[v].layer
            for w in graph.neighbors(v):
                inboxes[w][v] = payload
        for v in graph.vertices:
            if states[v].layer is None:
                states[v] = algorithm.update(v, states[v], inboxes[v])
        rounds += 1

    layer_of = {}
    deepest = max((states[v].layer for v in graph.vertices if states[v].layer is not None), default=0)
    for v in graph.vertices:
        layer = states[v].layer
        if layer is None:
            # Did not terminate within max_rounds (threshold too small);
            # dump survivors into one final layer so the output is complete.
            layer = deepest + 1
        layer_of[v] = layer + 1  # 1-based layers
    partition = HPartition(graph, layer_of)
    orientation = partition.to_orientation()
    del network  # the explicit loop above replaced network.run
    return PeelingResult(partition, orientation, rounds, threshold)


def peeling_layers_reference(graph: Graph, threshold: int) -> HPartition:
    """Centralised reference implementation of the same peeling process.

    Used by tests to check that the LOCAL simulation and the direct
    computation agree, and by the analysis of Lemma 3.13 (the auxiliary
    assignment ``ℓ_G``).  Delegates to the shared frontier peeling kernel;
    vertices the process never removes (threshold too small) are dumped into
    one final layer so the output is complete.
    """
    layers, rounds_used = graph.peel_layers(threshold)
    stuck_layer = rounds_used + 1
    layer_of = {
        v: (layers[v] if layers[v] else stuck_layer) for v in graph.vertices
    }
    return HPartition(graph, layer_of)
