"""repro — reproduction of "Density-Dependent Graph Orientation and Coloring in Scalable MPC".

The package is organised as:

* :mod:`repro.graph` — graph substrate (graphs, generators, density estimation,
  orientation / H-partition / coloring value objects).
* :mod:`repro.mpc` — simulated MPC cluster with round and memory accounting.
* :mod:`repro.local` — LOCAL-model simulator and subroutines.
* :mod:`repro.core` — the paper's algorithms (Theorems 1.1 and 1.2 and all the
  machinery of Sections 2–4).
* :mod:`repro.baselines` — prior-work baselines used for comparison.
* :mod:`repro.analysis` — validators, statistics and report generation.
* :mod:`repro.stream` — streaming subsystem: dynamic graphs under edge churn
  with incremental orientation/coloring maintenance.
* :mod:`repro.engine` — superstep execution engine: parallel task fan-out
  with sub-ledger round accounting and a worker-count determinism contract.
* :mod:`repro.experiments` — workloads and the experiment harness behind the
  benchmark suite.

Quickstart::

    from repro import generators, orient, color

    graph = generators.union_of_random_forests(2048, arboricity=4, seed=0)
    orientation_run = orient(graph, seed=0)
    coloring_run = color(graph, seed=0)
    print(orientation_run.max_outdegree, coloring_run.num_colors)
"""

from repro.core.coloring import ColoringRun, color, coloring_palette_bound
from repro.core.coreness import CorenessResult, approximate_coreness, exact_coreness
from repro.core.full_assignment import complete_layer_assignment
from repro.core.orientation import OrientationRun, orient, orientation_outdegree_bound
from repro.engine import ParallelExecutor
from repro.graph import generators
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch

__version__ = "1.1.0"

__all__ = [
    "Coloring",
    "ColoringRun",
    "CorenessResult",
    "DynamicGraph",
    "Graph",
    "HPartition",
    "MPCCluster",
    "MPCConfig",
    "Orientation",
    "OrientationRun",
    "ParallelExecutor",
    "StreamingService",
    "UpdateBatch",
    "__version__",
    "approximate_coreness",
    "color",
    "coloring_palette_bound",
    "complete_layer_assignment",
    "exact_coreness",
    "generators",
    "orient",
    "orientation_outdegree_bound",
]
