"""Prior-work baselines used by the experiment suite."""

from repro.baselines.be_mpc import BEMpcResult, barenboim_elkin_in_mpc
from repro.baselines.forest import ForestResult, forest_orient_and_color
from repro.baselines.glm19 import GLM19Result, glm19_orientation, phase_length_for
from repro.baselines.greedy import degeneracy_order_coloring, greedy_delta_coloring

__all__ = [
    "BEMpcResult",
    "ForestResult",
    "GLM19Result",
    "barenboim_elkin_in_mpc",
    "degeneracy_order_coloring",
    "forest_orient_and_color",
    "glm19_orientation",
    "greedy_delta_coloring",
    "phase_length_for",
]
