"""Baseline: forest-specialised orientation and coloring (the λ = 1 case).

Grunau et al. [GLM+23] orient forests with outdegree ≤ 2 and 3-color them in
``O(log log n)`` scalable MPC rounds; the paper repeatedly contrasts its
general-graph result against this forest-only special case (which "critically
uses that the local neighborhood around each node has no cycle").

We reproduce the spirit of that baseline — not its exact pointer-jumping
internals — with an algorithm that achieves the same guarantees on forests and
charges ``O(log log n)``-style rounds:

* **Orientation**: repeat "peel all vertices of remaining degree ≤ 2" — on a
  forest at least half of the vertices have degree ≤ 2 at any time, so
  ``O(log n)`` LOCAL iterations suffice; the MPC baseline compresses each
  group of ``√log n``... we instead charge ``⌈log2`` (iterations) ``⌉ + c``
  rounds per doubling batch, giving the ``O(log log n)`` round shape on
  forests, where the peeling genuinely halves the vertex count per iteration.
* **Coloring**: orient first (outdegree ≤ 2), then color greedily from the
  deepest layer up; every vertex sees at most 2 already-colored neighbors in
  layers ≥ its own when it picks a color, so 3 colors always suffice —
  matching the 3-coloring guarantee of [GLM+23] (our round accounting for the
  coloring sweep is the same compressed O(log log n) charge as for the
  orientation, rather than their more intricate pipeline).

Experiment E7 compares this specialised baseline with the general pipeline on
random forests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


@dataclass
class ForestResult:
    """Output of the forest-specialised baseline."""

    orientation: Orientation
    partition: HPartition
    coloring: Coloring
    max_outdegree: int
    num_colors: int
    rounds: int
    cluster: MPCCluster


def forest_orient_and_color(
    graph: Graph,
    delta: float = 0.5,
    cluster: MPCCluster | None = None,
) -> ForestResult:
    """Orient (outdegree ≤ 2) and color a forest with a small constant palette.

    Raises :class:`~repro.errors.ParameterError` when the input is not a
    forest — the whole point of the baseline is that it exploits acyclicity.
    """
    if not graph.is_forest():
        raise ParameterError("the forest baseline requires an acyclic input graph")
    n = graph.num_vertices
    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))

    # Peeling with threshold 2: on forests every iteration removes at least
    # half of the remaining vertices, so there are O(log n) iterations; the
    # MPC implementation of [GLM+23] compresses them into O(log log n) rounds
    # via exponentiation on the (degree ≤ 2) remainder, which we charge
    # accordingly: one round per batch of doubling length.
    degree = list(graph.degrees)
    removed = [False] * n
    layer_of: dict[int, int] = {}
    iteration = 0
    remaining = n
    while remaining > 0:
        iteration += 1
        peel = [v for v in range(n) if not removed[v] and degree[v] <= 2]
        if not peel:
            break
        for v in peel:
            removed[v] = True
            layer_of[v] = iteration
        remaining -= len(peel)
        for v in peel:
            for w in graph.neighbors(v):
                if not removed[w]:
                    degree[w] -= 1
    if remaining > 0:
        iteration += 1
        for v in range(n):
            if not removed[v]:
                layer_of[v] = iteration

    # Round accounting: compressing `iteration` peeling steps takes
    # O(log(iteration)) = O(log log n) exponentiation rounds.
    compressed_rounds = max(int(math.ceil(math.log2(max(iteration, 2)))), 1) + 2
    cluster.charge_rounds(compressed_rounds, label="forest:orientation")

    partition = HPartition(graph, layer_of) if n > 0 else HPartition(graph, {})
    orientation = partition.to_orientation()

    # Coloring: process layers from the deepest down; each vertex has at most
    # 2 neighbors in layers ≥ its own, and lower-layer neighbors are still
    # uncolored when it picks, so the greedy choice never exceeds color 2.
    colors: dict[int, int] = {}
    num_layers = partition.num_layers
    for layer_index in range(num_layers, 0, -1):
        for v in partition.layer(layer_index):
            taken = {
                colors[w]
                for w in graph.neighbors(v)
                if w in colors
            }
            color = 0
            while color in taken:
                color += 1
            colors[v] = color
    cluster.charge_rounds(compressed_rounds, label="forest:coloring")

    coloring = Coloring(graph, colors)
    return ForestResult(
        orientation=orientation,
        partition=partition,
        coloring=coloring,
        max_outdegree=orientation.max_outdegree(),
        num_colors=coloring.num_colors(),
        rounds=cluster.stats.num_rounds,
        cluster=cluster,
    )
