"""Baseline: Barenboim–Elkin peeling simulated round-by-round in MPC.

The simplest way to orient a graph with outdegree ``(2+ε)λ`` in scalable MPC
is to run the ``O(log n)``-round LOCAL peeling algorithm directly, one LOCAL
round per MPC round (each LOCAL round is a constant number of MPC
aggregations).  The paper cites this as the trivial baseline whose round
complexity — ``Θ(log n)`` — is exactly what Theorem 1.1 improves upon.

Experiment E3 compares this baseline's round count against the GLM19-style
sparsification baseline and our poly(log log n) pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.local.peeling import peeling_threshold
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


@dataclass
class BEMpcResult:
    """Result of the LOCAL-peeling-in-MPC baseline."""

    orientation: Orientation
    partition: HPartition
    max_outdegree: int
    rounds: int
    threshold: int
    cluster: MPCCluster


def barenboim_elkin_in_mpc(
    graph: Graph,
    arboricity: int,
    epsilon: float = 0.5,
    delta: float = 0.5,
    cluster: MPCCluster | None = None,
    max_rounds: int | None = None,
) -> BEMpcResult:
    """Run the (2+ε)λ peeling, charging one MPC round per peeling iteration.

    Each iteration consists of: every remaining vertex checks its remaining
    degree (an aggregate over its incident edges) and, if at most the
    threshold, removes itself and notifies its neighbors.  Both the check and
    the notification fit in a constant number of MPC rounds; we charge one
    round per iteration, which only makes the baseline *stronger* in the
    comparison.
    """
    if arboricity < 0:
        raise ParameterError("arboricity must be non-negative")
    n = graph.num_vertices
    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))
    threshold = peeling_threshold(arboricity, epsilon)
    if max_rounds is None:
        max_rounds = 4 * max(int(math.ceil(math.log2(max(n, 2)))), 1) + 8

    degree = list(graph.degrees)
    removed = [False] * n
    layer_of: dict[int, int] = {}
    rounds = 0
    remaining = n
    while remaining > 0 and rounds < max_rounds:
        peel = [v for v in range(n) if not removed[v] and degree[v] <= threshold]
        if not peel:
            break
        rounds += 1
        cluster.communication_round(
            [(v, w, 1) for v in peel for w in graph.neighbors(v) if not removed[w]],
            label="be-peeling:notify",
        )
        for v in peel:
            removed[v] = True
            layer_of[v] = rounds
        remaining -= len(peel)
        for v in peel:
            for w in graph.neighbors(v):
                if not removed[w]:
                    degree[w] -= 1

    # Any survivors (threshold below 2λ) get a final layer.
    if remaining > 0:
        rounds += 1
        final_layer = rounds
        for v in range(n):
            if not removed[v]:
                layer_of[v] = final_layer

    partition = HPartition(graph, layer_of) if n > 0 else HPartition(graph, {})
    orientation = partition.to_orientation()
    return BEMpcResult(
        orientation=orientation,
        partition=partition,
        max_outdegree=orientation.max_outdegree(),
        rounds=cluster.stats.num_rounds,
        threshold=threshold,
        cluster=cluster,
    )
