"""Sequential (centralised) coloring baselines.

These are not MPC algorithms — they are the centralised references the
benchmark tables use to put the distributed results in context:

* :func:`greedy_delta_coloring` — color greedily in vertex-id order; uses at
  most Δ+1 colors.  This is the "Δ-dependent" yardstick the paper argues is
  too weak for sparse-but-skewed graphs (a star needs Θ(n) palette here).
* :func:`degeneracy_order_coloring` — color greedily in reverse degeneracy
  order; uses at most ``degeneracy + 1 ≤ 2λ`` colors.  This is the best
  density-dependent bound a centralised algorithm gets trivially, i.e. the
  quality target our distributed coloring is allowed to miss only by the
  ``O(log log n)`` factor.
"""

from __future__ import annotations

from repro.graph.arboricity import degeneracy_ordering
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph


def _greedy_in_order(graph: Graph, order: list[int]) -> Coloring:
    colors: dict[int, int] = {}
    for v in order:
        taken = {colors[w] for w in graph.neighbors(v) if w in colors}
        color = 0
        while color in taken:
            color += 1
        colors[v] = color
    return Coloring(graph, colors)


def greedy_delta_coloring(graph: Graph) -> Coloring:
    """Greedy coloring in vertex-id order (≤ Δ+1 colors)."""
    return _greedy_in_order(graph, list(graph.vertices))


def degeneracy_order_coloring(graph: Graph) -> Coloring:
    """Greedy coloring in reverse degeneracy order (≤ degeneracy+1 ≤ 2λ colors)."""
    order, _cores, _d = degeneracy_ordering(graph)
    return _greedy_in_order(graph, list(reversed(order)))
