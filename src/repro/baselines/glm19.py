"""Baseline: GLM19-style sparsification + exponentiation orientation.

Ghaffari, Lattanzi and Mitrović [GLM19, Section 4] orient with outdegree
``(2+ε)λ`` in ``Õ(√log n)`` MPC rounds: the ``T = Θ(log n)``-round LOCAL
peeling is split into ``T / T'`` phases of ``T' = Θ(√log n)`` LOCAL rounds
each; inside a phase the relevant subgraph is sparsified so that
``T'``-hop neighborhoods have size ``2^{Θ(T')} ≤ n^δ`` and can be collected
with ``O(log T')`` rounds of graph exponentiation, after which the phase is
finished locally.

Our baseline reproduces this *round structure* faithfully while computing the
same peeling layers as the LOCAL process:

* the peeling is executed phase by phase, ``T'`` LOCAL iterations per phase;
* each phase charges ``⌈log2 T'⌉ + c`` MPC rounds (the exponentiation that
  collects the ``T'``-hop sparsified neighborhoods, plus constant overhead),
  instead of the ``T'`` rounds the direct simulation would pay;
* the output orientation is identical to the LOCAL peeling's.

The resulting round count grows like ``√log n · log log n`` — the ``Θ̃(√log n)``
curve that experiment E3 plots against our poly(log log n) pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.local.peeling import peeling_threshold
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig


@dataclass
class GLM19Result:
    """Result of the sparsification-based orientation baseline."""

    orientation: Orientation
    partition: HPartition
    max_outdegree: int
    rounds: int
    phases: int
    local_rounds_simulated: int
    phase_length: int
    cluster: MPCCluster


def phase_length_for(num_vertices: int) -> int:
    """The phase length ``T' = ⌈√(log2 n)⌉`` of the sparsification approach."""
    log_n = max(math.log2(max(num_vertices, 2)), 1.0)
    return max(int(math.ceil(math.sqrt(log_n))), 1)


def glm19_orientation(
    graph: Graph,
    arboricity: int,
    epsilon: float = 0.5,
    delta: float = 0.5,
    cluster: MPCCluster | None = None,
    max_local_rounds: int | None = None,
) -> GLM19Result:
    """Orient ``graph`` with the GLM19-style phase/sparsification round structure."""
    if arboricity < 0:
        raise ParameterError("arboricity must be non-negative")
    n = graph.num_vertices
    if cluster is None:
        cluster = MPCCluster(MPCConfig.for_graph(graph, delta=delta))
    threshold = peeling_threshold(arboricity, epsilon)
    if max_local_rounds is None:
        max_local_rounds = 4 * max(int(math.ceil(math.log2(max(n, 2)))), 1) + 8
    phase_length = phase_length_for(n)

    degree = list(graph.degrees)
    removed = [False] * n
    layer_of: dict[int, int] = {}
    local_rounds = 0
    phases = 0
    remaining = n

    while remaining > 0 and local_rounds < max_local_rounds:
        phases += 1
        # One phase: T' LOCAL peeling iterations, realised in MPC by collecting
        # the sparsified T'-hop neighborhoods via exponentiation.
        exponentiation_rounds = max(int(math.ceil(math.log2(max(phase_length, 2)))), 1) + 2
        cluster.charge_rounds(exponentiation_rounds, label="glm19:exponentiation")
        # The data shipped per phase is proportional to the sparsified
        # neighborhoods; we charge one explicit round carrying one word per
        # remaining incident edge as a conservative stand-in.
        cluster.communication_round(
            [
                (u, v, 1)
                for (u, v) in graph.edges
                if not removed[u] and not removed[v]
            ],
            label="glm19:sparsified-gather",
        )
        for _ in range(phase_length):
            if remaining == 0 or local_rounds >= max_local_rounds:
                break
            peel = [v for v in range(n) if not removed[v] and degree[v] <= threshold]
            local_rounds += 1
            if not peel:
                break
            for v in peel:
                removed[v] = True
                layer_of[v] = local_rounds
            remaining -= len(peel)
            for v in peel:
                for w in graph.neighbors(v):
                    if not removed[w]:
                        degree[w] -= 1

    if remaining > 0:
        local_rounds += 1
        for v in range(n):
            if not removed[v]:
                layer_of[v] = local_rounds

    partition = HPartition(graph, layer_of) if n > 0 else HPartition(graph, {})
    orientation = partition.to_orientation()
    return GLM19Result(
        orientation=orientation,
        partition=partition,
        max_outdegree=orientation.max_outdegree(),
        rounds=cluster.stats.num_rounds,
        phases=phases,
        local_rounds_simulated=local_rounds,
        phase_length=phase_length,
        cluster=cluster,
    )
