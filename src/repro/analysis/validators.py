"""Validators for every quantitative claim the paper makes.

Each validator returns a :class:`ValidationReport` (rather than raising), so
the experiment harness can record *how close* a run came to a bound as well as
whether it met it.  Strict ``check_*`` wrappers that raise are provided for
tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.layering import PartialLayerAssignment
from repro.core.parameters import Parameters
from repro.core.tree_view import TreeView
from repro.errors import ReproError
from repro.graph.coloring import Coloring
from repro.graph.graph import Graph
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation
from repro.mpc.metrics import RoundStats


class ValidationError(ReproError):
    """Raised by the strict ``check_*`` wrappers when a claim fails."""


@dataclass
class ValidationReport:
    """Outcome of one validator: pass/fail plus measured-vs-allowed numbers."""

    name: str
    passed: bool
    measured: float
    allowed: float
    details: dict[str, float] = field(default_factory=dict)

    @property
    def headroom(self) -> float:
        """``allowed / measured`` (∞ when nothing was measured)."""
        if self.measured == 0:
            return math.inf
        return self.allowed / self.measured

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` when the check failed."""
        if not self.passed:
            raise ValidationError(
                f"{self.name}: measured {self.measured} exceeds allowed {self.allowed} "
                f"(details: {self.details})"
            )


# --------------------------------------------------------------------------- #
# Theorem 1.1 / 1.2 outputs
# --------------------------------------------------------------------------- #


def validate_orientation_quality(
    orientation: Orientation, arboricity: int, num_vertices: int, constant: float = 8.0
) -> ValidationReport:
    """Theorem 1.1: max outdegree ≤ constant · λ · log log n."""
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    allowed = constant * max(arboricity, 1) * loglog
    measured = orientation.max_outdegree()
    return ValidationReport(
        name="theorem-1.1-outdegree",
        passed=measured <= allowed,
        measured=float(measured),
        allowed=float(allowed),
        details={"arboricity": float(arboricity), "loglog_n": loglog},
    )


def validate_coloring_quality(
    coloring: Coloring, arboricity: int, num_vertices: int, constant: float = 24.0
) -> ValidationReport:
    """Theorem 1.2: proper coloring with ≤ constant · λ · log log n colors."""
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    allowed = constant * max(arboricity, 1) * loglog
    measured = coloring.num_colors()
    proper = coloring.is_proper()
    return ValidationReport(
        name="theorem-1.2-colors",
        passed=proper and measured <= allowed,
        measured=float(measured),
        allowed=float(allowed),
        details={"proper": 1.0 if proper else 0.0, "arboricity": float(arboricity)},
    )


def validate_round_complexity(
    rounds: int, num_vertices: int, constant: float = 40.0, exponent: float = 3.0
) -> ValidationReport:
    """poly(log log n) round complexity: rounds ≤ constant · (log log n)^exponent."""
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    allowed = constant * (loglog ** exponent)
    return ValidationReport(
        name="round-complexity",
        passed=rounds <= allowed,
        measured=float(rounds),
        allowed=float(allowed),
        details={"loglog_n": loglog},
    )


# --------------------------------------------------------------------------- #
# H-partition / layer assignment claims
# --------------------------------------------------------------------------- #


def validate_hpartition_out_degree(
    partition: HPartition, bound: int
) -> ValidationReport:
    """Lemma 3.15 property (1): every vertex has ≤ bound neighbors in layers ≥ its own."""
    measured = partition.max_out_degree()
    return ValidationReport(
        name="hpartition-out-degree",
        passed=measured <= bound,
        measured=float(measured),
        allowed=float(bound),
    )


def validate_layer_decay(
    partition: HPartition, ratio: float = 0.5, slack: float = 2.0
) -> ValidationReport:
    """Lemma 3.15 property (2): |{v : ℓ(v) ≥ j}| ≤ slack · ratio^{j-1} · n."""
    n = max(partition.graph.num_vertices, 1)
    worst_excess = 0.0
    worst_layer = 0
    for j, suffix in enumerate(partition.suffix_sizes(), start=1):
        allowed = slack * (ratio ** (j - 1)) * n
        excess = suffix / allowed if allowed > 0 else math.inf
        if excess > worst_excess:
            worst_excess = excess
            worst_layer = j
    return ValidationReport(
        name="layer-decay",
        passed=worst_excess <= 1.0,
        measured=worst_excess,
        allowed=1.0,
        details={"worst_layer": float(worst_layer), "ratio": ratio, "slack": slack},
    )


def validate_partial_assignment(assignment: PartialLayerAssignment) -> ValidationReport:
    """Definition 2.1 / Claim 3.12: observed out-degree ≤ declared out-degree."""
    measured = assignment.max_observed_out_degree()
    return ValidationReport(
        name="partial-assignment-out-degree",
        passed=measured <= assignment.out_degree,
        measured=float(measured),
        allowed=float(assignment.out_degree),
        details={"fraction_assigned": assignment.fraction_assigned()},
    )


# --------------------------------------------------------------------------- #
# Algorithm 2 invariants
# --------------------------------------------------------------------------- #


def validate_tree_budget(trees: dict[int, TreeView], params: Parameters) -> ValidationReport:
    """Claim 3.4: no tree view ever exceeds B nodes."""
    measured = max((t.num_nodes for t in trees.values()), default=0)
    return ValidationReport(
        name="tree-budget",
        passed=measured <= params.budget,
        measured=float(measured),
        allowed=float(params.budget),
    )


def validate_tree_mappings(graph: Graph, trees: dict[int, TreeView]) -> ValidationReport:
    """Claim 3.3: every maintained mapping is valid."""
    bad = sum(0 if t.is_valid_mapping(graph) else 1 for t in trees.values())
    return ValidationReport(
        name="tree-mapping-validity",
        passed=bad == 0,
        measured=float(bad),
        allowed=0.0,
        details={"num_trees": float(len(trees))},
    )


# --------------------------------------------------------------------------- #
# Streaming maintenance claims
# --------------------------------------------------------------------------- #


def validate_streaming_outdegree(
    max_outdegree: int, arboricity: int, num_vertices: int, constant: float = 8.0
) -> ValidationReport:
    """Streaming maintenance: max outdegree ≤ constant · λ · log log n.

    The flip-path invariant keeps the maintained outdegree at most
    ``flip_slack`` (default 4) times the arboricity estimate, the amortised
    quality check keeps the estimate within a factor 2 of the current
    degeneracy (≤ 2λ), and a Theorem 1.1 fallback rebuild can realise the
    static ``O(λ log log n)`` bound — the envelope is therefore the same
    shape (and constant) as :func:`validate_orientation_quality`.  The much
    tighter run-time invariant ``max_outdegree ≤ flip_slack · λ̂`` is enforced
    directly by :meth:`repro.stream.service.StreamingService.verify`.
    """
    loglog = max(math.log2(max(math.log2(max(num_vertices, 4)), 2.0)), 1.0)
    allowed = constant * max(arboricity, 1) * loglog
    return ValidationReport(
        name="streaming-outdegree",
        passed=max_outdegree <= allowed,
        measured=float(max_outdegree),
        allowed=float(allowed),
        details={"arboricity": float(arboricity), "loglog_n": loglog},
    )


# --------------------------------------------------------------------------- #
# MPC resource claims
# --------------------------------------------------------------------------- #


def validate_local_memory(
    stats: RoundStats, num_vertices: int, budget: int, delta: float, constant: float = 16.0
) -> ValidationReport:
    """Claims 3.5 / 3.11: peak per-machine memory ≤ constant · (n^δ + B) words."""
    allowed = constant * ((max(num_vertices, 2) ** delta) + budget)
    measured = stats.peak_machine_memory_words
    return ValidationReport(
        name="local-memory",
        passed=measured <= allowed,
        measured=float(measured),
        allowed=float(allowed),
        details={"delta": delta, "budget": float(budget)},
    )


def validate_global_memory(
    stats: RoundStats,
    num_vertices: int,
    num_edges: int,
    budget: int,
    constant: float = 16.0,
) -> ValidationReport:
    """Claims 3.5 / 3.11: global memory ≤ constant · (n·B + m) words."""
    allowed = constant * (num_vertices * max(budget, 1) + num_edges + 1)
    measured = stats.peak_global_memory_words
    return ValidationReport(
        name="global-memory",
        passed=measured <= allowed,
        measured=float(measured),
        allowed=float(allowed),
        details={"budget": float(budget)},
    )


# --------------------------------------------------------------------------- #
# Strict wrappers
# --------------------------------------------------------------------------- #


def check_all(reports: list[ValidationReport]) -> None:
    """Raise on the first failed report (test helper)."""
    for report in reports:
        report.raise_if_failed()
