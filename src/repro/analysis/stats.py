"""Small statistics helpers used by the experiment harness and reports."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary for table rows."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Mean / std / min / max of a sample (std 0.0 for fewer than two points)."""
    data = [float(v) for v in values]
    if not data:
        return Summary(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    mean = sum(data) / len(data)
    if len(data) > 1:
        variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    else:
        variance = 0.0
    return Summary(
        count=len(data),
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sample)."""
    data = [float(v) for v in values if v > 0]
    if not data:
        return 0.0
    return math.exp(sum(math.log(v) for v in data) / len(data))


def ratio_series(numerators: Sequence[float], denominators: Sequence[float]) -> list[float]:
    """Element-wise ratios, skipping zero denominators."""
    ratios: list[float] = []
    for num, den in zip(numerators, denominators):
        if den != 0:
            ratios.append(num / den)
    return ratios


def growth_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of log(value) against log(size).

    Used to characterise round-count growth: a LOCAL-style baseline shows an
    exponent near the slope of ``log log n`` vs ``log n`` (≈ sub-linear but
    clearly positive), whereas a poly(log log n) algorithm's fitted exponent
    over the same range is close to zero.
    """
    points = [
        (math.log(s), math.log(v))
        for s, v in zip(sizes, values)
        if s > 0 and v > 0
    ]
    if len(points) < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / len(points)
    mean_y = sum(y for _, y in points) / len(points)
    denom = sum((x - mean_x) ** 2 for x, _ in points)
    if denom == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y) for x, y in points) / denom
