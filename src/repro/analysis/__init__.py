"""Analysis layer: claim validators, statistics and report tables."""

from repro.analysis.reporting import Table
from repro.analysis.stats import Summary, geometric_mean, growth_exponent, ratio_series, summarize
from repro.analysis.validators import (
    ValidationError,
    ValidationReport,
    check_all,
    validate_coloring_quality,
    validate_global_memory,
    validate_hpartition_out_degree,
    validate_layer_decay,
    validate_local_memory,
    validate_orientation_quality,
    validate_partial_assignment,
    validate_round_complexity,
    validate_tree_budget,
    validate_tree_mappings,
)

__all__ = [
    "Summary",
    "Table",
    "ValidationError",
    "ValidationReport",
    "check_all",
    "geometric_mean",
    "growth_exponent",
    "ratio_series",
    "summarize",
    "validate_coloring_quality",
    "validate_global_memory",
    "validate_hpartition_out_degree",
    "validate_layer_decay",
    "validate_local_memory",
    "validate_orientation_quality",
    "validate_partial_assignment",
    "validate_round_complexity",
    "validate_tree_budget",
    "validate_tree_mappings",
]
