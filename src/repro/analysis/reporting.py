"""Rendering experiment results as ASCII / Markdown tables.

The benchmark harness prints the same rows that EXPERIMENTS.md records, so the
documented numbers can be regenerated with a single command.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field


@dataclass
class Table:
    """A simple column-ordered table of result rows."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, values: Mapping[str, object] | Sequence[object]) -> None:
        """Append a row given as a mapping (by column name) or a sequence."""
        if isinstance(values, Mapping):
            row = [self._format(values.get(column, "")) for column in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"row has {len(values)} entries but the table has {len(self.columns)} columns"
                )
            row = [self._format(value) for value in values]
        self.rows.append(row)

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            if not math.isfinite(value):
                # int(inf) raises OverflowError and int(nan) ValueError, so
                # non-finite metrics (a bench ratio over a zero baseline,
                # json's Infinity literal) must short-circuit here.
                return str(value)
            if value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return f"{value:.3f}"
        return str(value)

    # ------------------------------------------------------------------ #

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_ascii(self) -> str:
        """Fixed-width plain-text rendering for terminal output."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        def render_row(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = [self.title, render_row(self.columns), render_row(["-" * w for w in widths])]
        lines.extend(render_row(row) for row in self.rows)
        return "\n".join(lines)

    def print(self) -> None:
        """Print the ASCII rendering (used by the benchmark harness)."""
        print()
        print(self.to_ascii())
        print()
