"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``orient``
    Read an edge list, run the Theorem 1.1 orientation, print (or write) the
    per-edge directions plus a summary.
``color``
    Read an edge list, run the Theorem 1.2 coloring, print (or write) the
    per-vertex colors plus a summary.
``layers``
    Read an edge list, compute the Lemma 3.15 H-partition, print (or write)
    the per-vertex layers plus the decay profile.
``coreness``
    Read an edge list, run the guess-in-parallel coreness decomposition.
``generate``
    Emit an edge list from one of the built-in graph families (useful for
    piping into the other commands or external tools).
``stream``
    Generate a streaming trace (uniform churn / sliding window / densifying
    core), maintain the orientation and coloring incrementally through the
    :class:`~repro.stream.service.StreamingService`, and print per-batch
    maintenance metrics plus a summary.
``stream-multi``
    Generate one trace per tenant (cycling the trace families), multiplex
    the fleet on one :class:`~repro.stream.engine.StreamEngine`, and print
    per-tick aggregate metrics (rounds charged as max-over-tenants) plus a
    per-tenant summary.  ``--policy`` picks the cross-tenant scheduler
    (serve-all / top-k-backlog / deficit-round-robin), ``--round-budget``
    caps each tick's scheduled work, and ``--quota`` puts a per-tenant
    memory cap on every tenant's sub-ledger.  ``--checkpoint-dir`` writes a
    versioned, checksummed snapshot of the drained engine
    (``checkpoint.json``); ``--restore`` rebuilds the engine from that
    snapshot instead of generating a fleet — byte-identically, verified
    against the recorded fingerprint — then drains and verifies as usual.
``experiment``
    Run a registered experiment sweep (E1/E2/E3/S1/S2/S3/S4) through its
    harness runner and print the result table (ASCII, or Markdown with
    ``--markdown``).
``trace-report``
    Summarise a ``--trace`` artifact (Chrome trace-event JSON) as text
    tables: per-span wall-clock totals with ledger deltas, plus the counter
    and histogram snapshots.
``bench-report``
    Render a trend table over the ``BENCH_*.json`` snapshots in a directory
    (latest vs. previous value per metric, per benchmark).

Every command accepts ``--seed`` for reproducibility and ``--output`` to write
the main artifact to a file instead of stdout.  ``orient``, ``color``,
``stream``, ``stream-multi`` and ``experiment`` also accept ``--workers N`` —
host-side parallelism for the superstep engine (Lemma 2.1 part orientation,
Lemma 2.2 part coloring, batch-parallel flip repair, cross-tenant ticks);
results are identical for any worker count — and ``--trace out.json``, which
records host-side spans for the run and writes a Perfetto-loadable Chrome
trace (results are identical with tracing on or off).

The compute-heavy commands (``orient``, ``color``, ``layers``, ``stream``,
``stream-multi``, ``experiment``) accept ``--kernels {pure,numpy}`` to pick
the :mod:`repro.kernels` backend for the CSR hot paths; the flag overrides
the ``REPRO_KERNELS`` environment variable, and outputs are byte-identical
under either backend.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro import kernels
from repro.core.coloring import color
from repro.core.coreness import approximate_coreness, exact_coreness
from repro.core.full_assignment import complete_layer_assignment
from repro.core.orientation import orient
from repro.graph import generators
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.io import (
    format_coloring,
    format_layering,
    format_orientation,
    read_edge_list,
    write_text,
)
from repro.stream.engine import StreamEngine
from repro.stream.scheduler import POLICIES, make_planner
from repro.stream.service import StreamingService
from repro.stream.workloads import (
    generate_trace,
    multi_tenant_traces,
    stream_family_names,
)

RUNNABLE_EXPERIMENTS = ("E1", "E2", "E3", "S1", "S2", "S3", "S4")


def _emit(content: str, output: str | None) -> None:
    if output:
        write_text(content, output)
    else:
        print(content)


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="superstep-engine workers (default 1 = serial; results are "
        "identical for any worker count)",
    )


def _add_kernels_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernels",
        choices=sorted(kernels.BACKENDS),
        default=None,
        help="compute-kernel backend (default: the REPRO_KERNELS env var, "
        "else pure python; numpy is vectorized but byte-identical)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record host-side spans and write a Chrome trace-event JSON "
        "(Perfetto-loadable) to PATH; results are identical with tracing "
        "on or off",
    )


def _make_tracer(args):
    """A live tracer when ``--trace`` was given, else ``None``."""
    if getattr(args, "trace", None) is None:
        return None
    from repro.obs import Tracer

    return Tracer()


def _export_trace(tracer, args) -> None:
    if tracer is not None:
        tracer.export_chrome(args.trace)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("graph", help="path to an edge-list file ('u v' per line)")
    parser.add_argument("--seed", type=int, default=0, help="random seed (default 0)")
    parser.add_argument("--delta", type=float, default=0.5, help="memory exponent δ (default 0.5)")
    parser.add_argument("--output", help="write the main artifact to this file instead of stdout")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary on stderr"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Density-dependent orientation and coloring in simulated scalable MPC",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    orient_parser = subparsers.add_parser("orient", help="compute an O(λ log log n) orientation")
    _add_common_arguments(orient_parser)
    _add_workers_argument(orient_parser)
    _add_kernels_argument(orient_parser)
    _add_trace_argument(orient_parser)

    color_parser = subparsers.add_parser("color", help="compute an O(λ log log n) coloring")
    _add_common_arguments(color_parser)
    _add_workers_argument(color_parser)
    _add_kernels_argument(color_parser)
    _add_trace_argument(color_parser)

    layers_parser = subparsers.add_parser("layers", help="compute the Lemma 3.15 H-partition")
    _add_common_arguments(layers_parser)
    layers_parser.add_argument(
        "--k", type=int, default=None, help="arboricity proxy k (default: 2·degeneracy)"
    )
    _add_kernels_argument(layers_parser)

    coreness_parser = subparsers.add_parser("coreness", help="approximate coreness decomposition")
    _add_common_arguments(coreness_parser)
    coreness_parser.add_argument(
        "--epsilon", type=float, default=0.5, help="guess-ladder resolution (default 0.5)"
    )
    coreness_parser.add_argument(
        "--exact", action="store_true", help="also print the exact core numbers for comparison"
    )

    generate_parser = subparsers.add_parser("generate", help="emit an edge list from a built-in family")
    generate_parser.add_argument("family", choices=sorted(generators.family_names()))
    generate_parser.add_argument("num_vertices", type=int)
    generate_parser.add_argument("--seed", type=int, default=0)
    generate_parser.add_argument("--arboricity", type=int, default=4)
    generate_parser.add_argument("--output", help="write the edge list to this file")

    stream_parser = subparsers.add_parser(
        "stream", help="maintain orientation/coloring incrementally over a streaming trace"
    )
    stream_parser.add_argument("family", choices=sorted(stream_family_names()))
    stream_parser.add_argument("num_vertices", type=int)
    stream_parser.add_argument("--batches", type=int, default=10, help="number of update batches")
    stream_parser.add_argument("--batch-size", type=int, default=200, help="updates per batch")
    stream_parser.add_argument("--seed", type=int, default=0)
    stream_parser.add_argument("--delta", type=float, default=0.5, help="memory exponent δ (default 0.5)")
    stream_parser.add_argument(
        "--arboricity", type=int, default=3, help="initial arboricity (uniform_churn only)"
    )
    stream_parser.add_argument(
        "--window", type=int, default=None, help="live-edge window (sliding_window only)"
    )
    stream_parser.add_argument(
        "--core-size", type=int, default=None, help="adversarial core size (densifying_core only)"
    )
    stream_parser.add_argument("--output", help="write the per-batch metrics to this file")
    stream_parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary on stderr"
    )
    _add_workers_argument(stream_parser)
    _add_kernels_argument(stream_parser)
    _add_trace_argument(stream_parser)

    multi_parser = subparsers.add_parser(
        "stream-multi", help="multiplex N streaming tenants on one shared engine"
    )
    multi_parser.add_argument(
        "num_vertices",
        type=int,
        nargs="?",
        default=None,
        help="vertices per tenant graph (optional with --smoke, which defaults to 96)",
    )
    multi_parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI-sized preset: 96 vertices, 3 tenants, 3 batches of 40 "
        "updates (explicit flags still win)",
    )
    multi_parser.add_argument(
        "--tenants", type=int, default=None, help="number of tenants (default 4; 3 with --smoke)"
    )
    multi_parser.add_argument(
        "--batches", type=int, default=None, help="batches per tenant (default 6; 3 with --smoke)"
    )
    multi_parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="updates per batch (default 120; 40 with --smoke)",
    )
    multi_parser.add_argument("--seed", type=int, default=0)
    multi_parser.add_argument(
        "--delta", type=float, default=0.5, help="memory exponent δ (default 0.5)"
    )
    multi_parser.add_argument(
        "--policy",
        choices=POLICIES,
        default="serve-all",
        help="cross-tenant scheduling policy (default serve-all)",
    )
    multi_parser.add_argument(
        "--round-budget",
        type=int,
        default=None,
        help="per-tick round budget for scheduled work (default: unbounded)",
    )
    multi_parser.add_argument(
        "--topk",
        type=int,
        default=3,
        help="K for --policy top-k-backlog (default 3)",
    )
    multi_parser.add_argument(
        "--quantum",
        type=int,
        default=4,
        help="per-tick round credit for --policy deficit-round-robin (default 4)",
    )
    multi_parser.add_argument(
        "--quota",
        type=int,
        default=None,
        help="per-tenant memory quota in words (default: uncapped)",
    )
    multi_parser.add_argument("--output", help="write the per-tick metrics to this file")
    multi_parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary on stderr"
    )
    multi_parser.add_argument(
        "--checkpoint-dir",
        help="write a checkpoint.json snapshot of the drained engine into this "
        "directory (created if missing); with --restore, read it from there",
    )
    multi_parser.add_argument(
        "--restore",
        action="store_true",
        help="restore the engine from --checkpoint-dir instead of generating a "
        "fleet, then drain and verify (the snapshot fingerprint is re-verified)",
    )
    _add_workers_argument(multi_parser)
    _add_kernels_argument(multi_parser)
    _add_trace_argument(multi_parser)

    experiment_parser = subparsers.add_parser(
        "experiment", help="run a registered experiment sweep and print its table"
    )
    experiment_parser.add_argument(
        "experiment_id",
        choices=sorted(RUNNABLE_EXPERIMENTS),
        help="experiment to run (experiments with bespoke benchmarks run via benchmarks/)",
    )
    experiment_parser.add_argument("--seed", type=int, default=0)
    experiment_parser.add_argument(
        "--delta", type=float, default=0.5, help="memory exponent δ (default 0.5)"
    )
    experiment_parser.add_argument(
        "--markdown", action="store_true", help="emit the table as Markdown instead of ASCII"
    )
    experiment_parser.add_argument("--output", help="write the table to this file")
    experiment_parser.add_argument(
        "--quiet", action="store_true", help="suppress the human-readable summary on stderr"
    )
    _add_workers_argument(experiment_parser)
    _add_kernels_argument(experiment_parser)
    _add_trace_argument(experiment_parser)

    trace_report_parser = subparsers.add_parser(
        "trace-report", help="summarise a --trace artifact as text tables"
    )
    trace_report_parser.add_argument(
        "trace", help="path to a Chrome trace-event JSON written by --trace"
    )
    trace_report_parser.add_argument(
        "--markdown", action="store_true", help="emit the tables as Markdown instead of ASCII"
    )
    trace_report_parser.add_argument("--output", help="write the tables to this file")

    bench_report_parser = subparsers.add_parser(
        "bench-report", help="trend table over BENCH_*.json benchmark snapshots"
    )
    bench_report_parser.add_argument(
        "directory",
        nargs="?",
        default="benchmarks",
        help="directory holding BENCH_*.json snapshots (default: benchmarks)",
    )
    bench_report_parser.add_argument(
        "--markdown", action="store_true", help="emit the tables as Markdown instead of ASCII"
    )
    bench_report_parser.add_argument("--output", help="write the tables to this file")
    return parser


def _summary(lines: list[str], quiet: bool) -> None:
    if quiet:
        return
    for line in lines:
        print(line, file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    # Select the kernel backend for the whole run; ``None`` (flag absent or
    # command without the flag) defers to REPRO_KERNELS, then pure.
    kernels.set_backend(getattr(args, "kernels", None))

    if args.command == "generate":
        kwargs = {}
        if args.family == "union_forests":
            kwargs["arboricity"] = args.arboricity
        graph = generators.generate(args.family, args.num_vertices, seed=args.seed, **kwargs)
        lines = [f"# vertices {graph.num_vertices}"]
        lines.extend(f"{u} {v}" for u, v in graph.edges)
        _emit("\n".join(lines), args.output)
        return 0

    if args.command == "stream":
        params: dict[str, object] = {
            "num_batches": args.batches,
            "batch_size": args.batch_size,
        }
        if args.family == "uniform_churn":
            params["arboricity"] = args.arboricity
        if args.family == "sliding_window" and args.window is not None:
            params["window"] = args.window
        if args.family == "densifying_core":
            # Default core: 32 vertices, clamped so tiny graphs still work.
            params["core_size"] = (
                args.core_size
                if args.core_size is not None
                else max(2, min(32, args.num_vertices))
            )
        trace = generate_trace(args.family, args.num_vertices, seed=args.seed, **params)
        tracer = _make_tracer(args)
        service = StreamingService(
            trace.initial, delta=args.delta, seed=args.seed, workers=args.workers, tracer=tracer
        )
        header = (
            "batch inserts deletes flips recolors rebuilds compactions "
            "rounds m max_outdegree colors"
        )
        lines = [f"# {header}"]
        for batch in trace.batches:
            report = service.apply(batch)
            lines.append(
                f"{report.batch_index} {report.num_inserts} {report.num_deletes} "
                f"{report.flips} {report.recolors} {report.rebuilds} "
                f"{report.compactions} {report.rounds} {report.num_edges} "
                f"{report.max_outdegree} {report.num_colors}"
            )
        service.verify()
        service.close()
        _export_trace(tracer, args)
        _emit("\n".join(lines), args.output)
        summary = service.summary
        final = summary.final_report()
        _summary(
            [
                f"n={trace.initial.num_vertices} initial_m={trace.initial.num_edges} "
                f"final_m={final.num_edges}",
                f"updates: {summary.total_updates} in {summary.num_batches} batches",
                f"flips: {summary.total_flips} ({summary.amortised_flips:.3f}/update), "
                f"recolors: {summary.total_recolors}, rebuilds: {summary.total_rebuilds}, "
                f"compactions: {summary.total_compactions}",
                f"final max outdegree: {final.max_outdegree} (cap {final.outdegree_cap})",
                f"final colors: {final.num_colors}",
                f"simulated MPC rounds: {service.cluster.stats.num_rounds}",
            ],
            args.quiet,
        )
        return 0

    if args.command == "stream-multi":
        if args.restore and not args.checkpoint_dir:
            parser.error("stream-multi: --restore requires --checkpoint-dir")
        checkpoint_path = (
            os.path.join(args.checkpoint_dir, "checkpoint.json")
            if args.checkpoint_dir
            else None
        )
        tracer = _make_tracer(args)
        if args.restore:
            engine = StreamEngine.restore(
                checkpoint_path, workers=args.workers, tracer=tracer
            )
            traces = []
        else:
            if args.num_vertices is None:
                if not args.smoke:
                    parser.error(
                        "stream-multi: num_vertices is required unless --smoke is given"
                    )
                args.num_vertices = 96
            num_tenants = args.tenants if args.tenants is not None else (3 if args.smoke else 4)
            num_batches = args.batches if args.batches is not None else (3 if args.smoke else 6)
            batch_size = args.batch_size if args.batch_size is not None else (40 if args.smoke else 120)
            traces = multi_tenant_traces(
                num_tenants=num_tenants,
                num_vertices=args.num_vertices,
                num_batches=num_batches,
                batch_size=batch_size,
                seed=args.seed,
            )
            policy_options = {}
            if args.policy == "top-k-backlog":
                policy_options["k"] = args.topk
            if args.policy == "deficit-round-robin":
                policy_options["quantum"] = args.quantum
            planner = make_planner(args.policy, **policy_options)
            engine = StreamEngine(
                delta=args.delta,
                seed=args.seed,
                workers=args.workers,
                planner=planner,
                round_budget=args.round_budget,
                tracer=tracer,
            )
        with engine:
            for trace in traces:
                engine.add_tenant(trace.name, trace.initial, memory_quota=args.quota)
                engine.submit_all(trace.name, trace.batches)
            num_tenants = len(engine.tenant_names())
            summary = engine.run_until_drained()
            engine.verify()
            header = (
                "tick served deferred backlog inserts deletes flips rebuilds "
                "rounds rounds_sequential m max_outdegree colors"
            )
            lines = [f"# {header}"]
            for tick, report in zip(engine.ticks, summary.reports):
                lines.append(
                    f"{tick.tick_index} {tick.num_tenants_served} "
                    f"{tick.num_tenants_deferred} {tick.backlog_updates} "
                    f"{report.num_inserts} {report.num_deletes} {report.flips} "
                    f"{report.rebuilds} {tick.rounds} {tick.sequential_rounds} "
                    f"{report.num_edges} {report.max_outdegree} {report.num_colors}"
                )
            _emit("\n".join(lines), args.output)
            saved = None
            if checkpoint_path is not None:
                os.makedirs(args.checkpoint_dir, exist_ok=True)
                saved = engine.checkpoint(checkpoint_path)
            parallel_rounds = summary.total_rounds
            sequential_rounds = sum(tick.sequential_rounds for tick in engine.ticks)
            budget = "unbounded" if engine.round_budget is None else engine.round_budget
            fleet_line = (
                f"tenants: {num_tenants} (restored from {checkpoint_path})"
                if args.restore
                else f"tenants: {num_tenants} (n={args.num_vertices} each)"
            )
            tenant_lines = [
                f"  {name}: updates={engine.tenant_summary(name).total_updates} "
                f"flips={engine.tenant_summary(name).total_flips} "
                f"rebuilds={engine.tenant_summary(name).total_rebuilds} "
                f"rounds={engine.tenant_summary(name).total_rounds}"
                for name in engine.tenant_names()
            ]
            _summary(
                [
                    f"{fleet_line}, "
                    f"ticks: {len(engine.ticks)}, updates: {summary.total_updates}",
                    f"policy: {engine.planner.name}, round budget: {budget}, "
                    f"served: {summary.total_served}, deferred: {summary.total_deferred}, "
                    f"max backlog: {summary.max_backlog_updates} updates",
                    *tenant_lines,
                    f"tick rounds: {parallel_rounds} parallel (max-over-tenants) vs "
                    f"{sequential_rounds} sequential "
                    f"({sequential_rounds / max(parallel_rounds, 1):.2f}x saved)",
                    f"shared-ledger rounds incl. tenant builds: "
                    f"{engine.cluster.stats.num_rounds}",
                    *(
                        [f"checkpoint: {checkpoint_path} fingerprint {saved['fingerprint']}"]
                        if saved is not None
                        else []
                    ),
                ],
                args.quiet,
            )
        _export_trace(tracer, args)
        return 0

    if args.command == "experiment":
        from repro.analysis.reporting import Table
        from repro.experiments.registry import get_experiment, get_runner

        spec = get_experiment(args.experiment_id)
        runner = get_runner(args.experiment_id)
        tracer = _make_tracer(args)
        table = Table(title=f"{spec.experiment_id}: {spec.claim}", columns=list(spec.columns))
        for workload in spec.workloads:
            row = runner(
                workload, delta=args.delta, seed=args.seed, workers=args.workers, tracer=tracer
            )
            table.add_row(row.as_dict())
        _export_trace(tracer, args)
        _emit(table.to_markdown() if args.markdown else table.to_ascii(), args.output)
        _summary(
            [
                f"experiment {spec.experiment_id}: {len(spec.workloads)} workloads, "
                f"workers={args.workers}",
                f"claim: {spec.claim}",
            ],
            args.quiet,
        )
        return 0

    if args.command == "trace-report":
        from repro.obs.report import trace_report_tables

        tables = trace_report_tables(args.trace)
        rendered = "\n\n".join(
            table.to_markdown() if args.markdown else table.to_ascii() for table in tables
        )
        _emit(rendered, args.output)
        return 0

    if args.command == "bench-report":
        from repro.obs.report import bench_trend_tables

        tables = bench_trend_tables(args.directory)
        if not tables:
            print(f"no benchmark snapshots under {args.directory}", file=sys.stderr)
            return 1
        rendered = "\n\n".join(
            table.to_markdown() if args.markdown else table.to_ascii() for table in tables
        )
        _emit(rendered, args.output)
        return 0

    graph = read_edge_list(args.graph)

    if args.command == "orient":
        tracer = _make_tracer(args)
        run = orient(graph, delta=args.delta, seed=args.seed, workers=args.workers, tracer=tracer)
        _export_trace(tracer, args)
        _emit(format_orientation(run.orientation), args.output)
        _summary(
            [
                f"n={graph.num_vertices} m={graph.num_edges}",
                f"max outdegree: {run.max_outdegree}",
                f"simulated MPC rounds: {run.rounds}",
                f"edge partitioning used: {run.used_edge_partitioning}",
            ],
            args.quiet,
        )
        return 0

    if args.command == "color":
        tracer = _make_tracer(args)
        run = color(graph, delta=args.delta, seed=args.seed, workers=args.workers, tracer=tracer)
        _export_trace(tracer, args)
        _emit(format_coloring(run.coloring), args.output)
        _summary(
            [
                f"n={graph.num_vertices} m={graph.num_edges}",
                f"colors used: {run.num_colors} (palette {run.palette_size})",
                f"proper: {run.coloring.is_proper()}",
                f"simulated MPC rounds: {run.rounds}",
            ],
            args.quiet,
        )
        return 0

    if args.command == "layers":
        k = args.k if args.k is not None else max(2, 2 * arboricity_upper_bound(graph))
        run = complete_layer_assignment(graph, k=k, delta=args.delta)
        partition = run.to_hpartition()
        _emit(format_layering(partition), args.output)
        _summary(
            [
                f"n={graph.num_vertices} m={graph.num_edges} k={k}",
                f"layers: {partition.num_layers}",
                f"max out-degree: {partition.max_out_degree()} (bound {run.out_degree_bound})",
                f"layer sizes: {partition.layer_sizes()}",
            ],
            args.quiet,
        )
        return 0

    if args.command == "coreness":
        result = approximate_coreness(graph, epsilon=args.epsilon, delta=args.delta)
        lines = [f"{v} {result.estimates[v]}" for v in graph.vertices]
        _emit("\n".join(lines), args.output)
        summary = [
            f"n={graph.num_vertices} m={graph.num_edges}",
            f"guesses: {result.guesses}",
            f"max estimate: {result.max_estimate()}",
            f"simulated MPC rounds: {result.rounds}",
        ]
        if args.exact:
            exact = exact_coreness(graph)
            worst = max(
                (result.estimates[v] / max(exact[v], 1) for v in graph.vertices), default=0.0
            )
            summary.append(f"max estimate / exact core ratio: {worst:.2f}")
        _summary(summary, args.quiet)
        return 0

    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
