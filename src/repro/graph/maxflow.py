"""Dinic's maximum-flow algorithm.

This is a substrate module: the paper's algorithms never compute max-flow, but
our *evaluation* needs the exact maximum subgraph density ``α(G) = max_S
|E(S)|/|S|`` to report the ratio between achieved outdegree and the densest
subgraph density (Theorems 1.1/1.2 are stated relative to the arboricity λ,
and ``α ≤ λ ≤ α + 1``).  Exact densest subgraph is computed by Goldberg's
classic reduction: binary search over the guess ``g`` combined with a min-cut
on a bipartite-style flow network.  We implement Dinic's algorithm from
scratch rather than depending on networkx so that the library stands alone.

The implementation is iterative (explicit stacks) and uses adjacency arrays of
edge indices so it copes with the graph sizes used in the benchmarks
(thousands of vertices, tens of thousands of edges) in well under a second.
"""

from __future__ import annotations

from collections import deque
from typing import Optional


class FlowNetwork:
    """A directed flow network supporting Dinic's max-flow.

    Edges are added in pairs (forward edge with the given capacity and a
    residual back edge with capacity 0).  Capacities are floats so the network
    can be reused by the densest-subgraph binary search, which needs
    fractional capacities.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.num_nodes = num_nodes
        self._head: list[list[int]] = [[] for _ in range(num_nodes)]
        self._to: list[int] = []
        self._cap: list[float] = []

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge ``u -> v``; returns the edge index."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        index = len(self._to)
        self._to.append(v)
        self._cap.append(float(capacity))
        self._head[u].append(index)
        # residual edge
        self._to.append(u)
        self._cap.append(0.0)
        self._head[v].append(index + 1)
        return index

    def edge_capacity(self, edge_index: int) -> float:
        """Remaining capacity of an edge (after any max-flow computation)."""
        return self._cap[edge_index]

    # ------------------------------------------------------------------ #
    # Dinic
    # ------------------------------------------------------------------ #

    def _bfs_levels(self, source: int, sink: int, eps: float) -> Optional[list[int]]:
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            for edge_index in self._head[u]:
                v = self._to[edge_index]
                if levels[v] < 0 and self._cap[edge_index] > eps:
                    levels[v] = levels[u] + 1
                    queue.append(v)
        if levels[sink] < 0:
            return None
        return levels

    def _dfs_blocking_flow(
        self, source: int, sink: int, levels: list[int], eps: float
    ) -> float:
        total = 0.0
        iter_index = [0] * self.num_nodes
        while True:
            # Find an augmenting path with an iterative DFS.
            path_edges: list[int] = []
            u = source
            found = False
            while True:
                if u == sink:
                    found = True
                    break
                advanced = False
                while iter_index[u] < len(self._head[u]):
                    edge_index = self._head[u][iter_index[u]]
                    v = self._to[edge_index]
                    if self._cap[edge_index] > eps and levels[v] == levels[u] + 1:
                        path_edges.append(edge_index)
                        u = v
                        advanced = True
                        break
                    iter_index[u] += 1
                if advanced:
                    continue
                # dead end: retreat
                if u == source:
                    break
                levels[u] = -1
                last_edge = path_edges.pop()
                u = self._to[last_edge ^ 1]
                iter_index[u] += 1
            if not found:
                break
            bottleneck = min(self._cap[e] for e in path_edges)
            for e in path_edges:
                self._cap[e] -= bottleneck
                self._cap[e ^ 1] += bottleneck
            total += bottleneck
        return total

    def max_flow(self, source: int, sink: int, eps: float = 1e-12) -> float:
        """Compute the maximum flow from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        flow = 0.0
        while True:
            levels = self._bfs_levels(source, sink, eps)
            if levels is None:
                return flow
            flow += self._dfs_blocking_flow(source, sink, list(levels), eps)

    def min_cut_source_side(self, source: int, eps: float = 1e-12) -> set[int]:
        """Vertices reachable from ``source`` in the residual network.

        Must be called after :meth:`max_flow`; the returned set is the source
        side of a minimum cut.
        """
        reachable = {source}
        stack = [source]
        while stack:
            u = stack.pop()
            for edge_index in self._head[u]:
                v = self._to[edge_index]
                if v not in reachable and self._cap[edge_index] > eps:
                    reachable.add(v)
                    stack.append(v)
        return reachable
