"""Immutable undirected graph stored in compressed sparse row (CSR) form.

The MPC and LOCAL simulators, the core algorithms of the paper, and the
baselines all consume the same :class:`Graph` type defined here.  Vertices are
integers ``0 .. n-1``.  Internally the graph is array-backed:

* ``_edge_u`` / ``_edge_v`` — the canonical ``(min, max)`` edge list as two
  parallel ``array('l')`` columns, sorted lexicographically.  Edge ``i`` of
  the graph is ``(_edge_u[i], _edge_v[i])``; orientations and the MPC loaders
  address edges by this index.  Built once at construction, never mutated.
* ``_indptr`` / ``_indices`` — flat ``array('l')`` CSR adjacency: the
  neighbors of ``v`` are ``_indices[_indptr[v] : _indptr[v+1]]``, sorted
  ascending.  Materialised lazily on first adjacency access and then frozen —
  derived graphs (partition parts, merged orientation graphs) often only need
  the edge columns.
* ``_edge_index`` — hash map from canonical edge to its index, giving O(1)
  edge membership (``in``) and O(1) edge-id lookup; also built lazily.

All public accessors are source-compatible with the original tuple-of-tuples
representation (``edges`` and ``neighbors`` still return tuples; both are
materialised lazily and memoised).  Hot paths — induced/edge subgraphs, the
peeling kernel, connected components — walk the flat arrays directly instead
of scanning Python object structures, which is what lets the layering and
orientation pipelines scale to 10^5-vertex inputs.

**Zero-copy numpy views.**  Because every column is a flat ``array('l')``
(int64 on the supported platforms), the optional numpy kernel backend
(:mod:`repro.kernels`) wraps them with ``np.frombuffer`` without copying.
The rules: views alias the column buffer and must be treated as read-only
(the columns are frozen by the immutability contract above); a view is valid
exactly as long as the graph is alive; and any column a kernel *produces*
crosses back as a real ``array('l')`` (one ``tobytes`` memcpy), so pickling,
``__reduce__`` and byte-level identity checks never see numpy types.

The graph is immutable, which keeps the simulators honest — an algorithm
cannot "cheat" by editing the input in place; it must produce explicit outputs
(orientations, colorings, layerings).  Iteration order everywhere is
deterministic, which matters for reproducibility of the randomized algorithms
(they consume randomness only through explicitly passed generators).
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence
from operator import itemgetter
from typing import Optional

from repro import kernels
from repro.errors import GraphError

Edge = tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (smaller, larger) representation of an edge.

    Raises :class:`GraphError` for self loops, which none of the algorithms in
    the paper support (a self loop has no meaningful orientation).
    """
    if u == v:
        raise GraphError(f"self loop ({u}, {v}) is not allowed")
    if u < v:
        return (u, v)
    return (v, u)


class Graph:
    """A finite, simple, undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertices are identified with ``range(num_vertices)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Each pair is normalised; duplicates and
        reversed duplicates are rejected so the edge multiset is simple.

    Notes
    -----
    The graph is immutable.  Algorithms that need to "remove" vertices or
    edges (e.g. the peeling procedures of the paper) either track removed sets
    externally or call :meth:`induced_subgraph` / :meth:`subgraph_without_vertices`
    to obtain fresh graphs.
    """

    __slots__ = (
        "_n",
        "_indptr",
        "_indices",
        "_edge_u",
        "_edge_v",
        "_edge_index",
        "_edges_cache",
        "_neighbor_cache",
        "_degrees_cache",
    )

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        n = int(num_vertices)
        canonical: list[Edge] = []
        seen: set[Edge] = set()
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(
                    f"edge ({u}, {v}) references a vertex outside 0..{n - 1}"
                )
            e = normalize_edge(u, v)
            if e in seen:
                raise GraphError(f"duplicate edge {e}")
            seen.add(e)
            canonical.append(e)
        canonical.sort()
        self._n = n
        self._assemble(canonical)

    @classmethod
    def _from_canonical_sorted(cls, num_vertices: int, canonical: Iterable[Edge]) -> "Graph":
        """Internal fast path for trusted input.

        ``canonical`` must already be canonical ``(min, max)`` edges, sorted
        lexicographically, without duplicates, and within ``0..n-1``.  Used by
        subgraph extraction, edge unions and the random edge partition, which
        all derive their edges from an existing graph's canonical edge list.
        """
        self = object.__new__(cls)
        self._n = int(num_vertices)
        self._assemble(canonical if isinstance(canonical, list) else list(canonical))
        return self

    @classmethod
    def _from_columns(cls, num_vertices: int, edge_u: array, edge_v: array) -> "Graph":
        """Internal fast path from already-built canonical sorted edge columns."""
        self = object.__new__(cls)
        self._n = int(num_vertices)
        self._init_columns(edge_u, edge_v)
        return self

    def _assemble(self, canonical: list[Edge]) -> None:
        """Store the canonical edge columns; the CSR arrays build lazily."""
        self._init_columns(
            array("l", map(itemgetter(0), canonical)),
            array("l", map(itemgetter(1), canonical)),
        )

    def _init_columns(self, edge_u: array, edge_v: array) -> None:
        self._edge_u = edge_u
        self._edge_v = edge_v
        # The adjacency arrays and the edge hash index are built on first use
        # and memoised — derived graphs (subgraphs, partition parts, merged
        # orientation graphs) frequently only need the edge columns.
        self._edge_index = None
        self._indptr = None
        self._indices = None
        self._edges_cache: Optional[tuple[Edge, ...]] = None
        self._neighbor_cache: Optional[list[Optional[tuple[int, ...]]]] = None
        self._degrees_cache: Optional[tuple[int, ...]] = None

    def _build_csr(self) -> None:
        """Materialise the CSR adjacency from the edge columns (once).

        Each vertex's slice is [smaller neighbors asc | larger neighbors asc],
        which is fully ascending because edges are stored sorted.  The
        assembly itself is a kernel (``kernels.build_csr``) so the streaming
        data plane — which re-materialises adjacency after every journal
        compaction — gets the vectorized path when numpy is active.
        """
        self._indptr, self._indices = kernels.build_csr(
            self._n, self._edge_u, self._edge_v
        )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return len(self._edge_u)

    @property
    def vertices(self) -> range:
        """The vertex set, as a ``range`` object."""
        return range(self._n)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        cached = self._edges_cache
        if cached is None:
            cached = self._edges_cache = tuple(zip(self._edge_u, self._edge_v))
        return cached

    @property
    def edge_endpoints(self) -> tuple[array, array]:
        """The edge list as two parallel ``array('l')`` columns ``(u[], v[])``.

        Edge ``i`` is ``(u[i], v[i])`` with ``u[i] < v[i]``; the order matches
        :attr:`edges`.  Callers must not mutate the arrays.
        """
        return self._edge_u, self._edge_v

    @property
    def edge_ids(self) -> dict[Edge, int]:
        """Hash map from canonical edge to its index in :attr:`edges`.

        Gives O(1) edge membership and edge-id lookup; built lazily and
        memoised.  Callers must not mutate the mapping.
        """
        cached = self._edge_index
        if cached is None:
            cached = self._edge_index = {e: i for i, e in enumerate(self.edges)}
        return cached

    @property
    def csr_indptr(self) -> array:
        """CSR offsets: neighbors of ``v`` live at ``csr_indices[csr_indptr[v]:csr_indptr[v+1]]``."""
        if self._indptr is None:
            self._build_csr()
        return self._indptr

    @property
    def csr_indices(self) -> array:
        """Flat CSR neighbor array (sorted within each vertex's slice)."""
        if self._indices is None:
            self._build_csr()
        return self._indices

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of neighbors of ``v`` (materialised lazily from the CSR slice)."""
        cache = self._neighbor_cache
        if cache is None:
            cache = self._neighbor_cache = [None] * self._n
        result = cache[v]
        if result is None:
            indptr = self.csr_indptr
            result = cache[v] = tuple(self.csr_indices[indptr[v] : indptr[v + 1]])
        return result

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        indptr = self.csr_indptr
        return indptr[v + 1] - indptr[v]

    @property
    def degrees(self) -> tuple[int, ...]:
        """Tuple of all vertex degrees, indexed by vertex id."""
        cached = self._degrees_cache
        if cached is None:
            indptr = self.csr_indptr
            cached = self._degrees_cache = tuple(
                indptr[i + 1] - indptr[i] for i in range(self._n)
            )
        return cached

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        return max(self.degrees, default=0)

    def average_degree(self) -> float:
        """Average degree ``2m / n`` (0.0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self.num_edges / self._n

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is present (O(1) hash lookup)."""
        return (u, v) in self

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        if u > v:
            u, v = v, u
        return (u, v) in self.edge_ids

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._n == other._n
            and self._edge_u == other._edge_u
            and self._edge_v == other._edge_v
        )

    def __hash__(self) -> int:
        return hash((self._n, self.edges))

    def __reduce__(self):
        """Pickle only the canonical edge columns.

        The CSR arrays, the edge hash index, and the memoised tuple caches
        are all derivable (and lazily rebuilt on first use), but pickling
        them costs far more than rebuilding — they dominate the IPC payload
        when the engine ships partition parts to worker processes.  Shipping
        the two flat ``array('l')`` columns keeps a 10^5-edge part at a few
        hundred KB of raw bytes.
        """
        return (Graph._from_columns, (self._n, self._edge_u, self._edge_v))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, vertex_subset: Iterable[int]) -> "InducedSubgraph":
        """Return the subgraph induced by ``vertex_subset``.

        The returned :class:`InducedSubgraph` relabels the kept vertices to
        ``0 .. len(subset)-1`` but remembers the mapping back to the original
        ids, which the partitioning lemmas (Lemma 2.2) and the iterative layer
        assignment (Lemma 3.14) need.  Extraction walks only the kept
        vertices' adjacency slices — O(Σ_{v kept} deg(v)) instead of O(m).
        """
        return InducedSubgraph.from_parent(self, vertex_subset)

    def subgraph_without_vertices(self, removed: Iterable[int]) -> "InducedSubgraph":
        """Induced subgraph on the complement of ``removed``."""
        removed_set = set(removed)
        kept = [v for v in range(self._n) if v not in removed_set]
        return self.induced_subgraph(kept)

    def edge_subgraph(self, edge_subset: Iterable[Edge]) -> "Graph":
        """Return a graph on the same vertex set containing only ``edge_subset``.

        Used by the random edge partitioning of Lemma 2.1: each part keeps all
        vertices but only its share of the edges.  Membership is validated
        through the O(1) edge hash set, so the extraction is linear in the
        subset size rather than O(|subset|·Δ).
        """
        edge_index = self.edge_ids
        normalized: list[Edge] = []
        chosen: set[Edge] = set()
        missing: list[Edge] = []
        for u, v in edge_subset:
            e = normalize_edge(u, v)
            if e not in edge_index:
                missing.append(e)
                continue
            if e in chosen:
                raise GraphError(f"duplicate edge {e}")
            chosen.add(e)
            normalized.append(e)
        if missing:
            raise GraphError(f"edges {missing[:3]}... are not present in the graph")
        normalized.sort()
        return Graph._from_canonical_sorted(self._n, normalized)

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of vertex ids (BFS over the CSR arrays)."""
        indptr = self.csr_indptr
        indices = self.csr_indices
        seen = bytearray(self._n)
        components: list[list[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            seen[start] = 1
            component = [start]
            frontier = [start]
            while frontier:
                next_frontier: list[int] = []
                for u in frontier:
                    for j in range(indptr[u], indptr[u + 1]):
                        w = indices[j]
                        if not seen[w]:
                            seen[w] = 1
                            component.append(w)
                            next_frontier.append(w)
                frontier = next_frontier
            components.append(sorted(component))
        return components

    def is_forest(self) -> bool:
        """Whether the graph is acyclic (a forest)."""
        # A graph is a forest iff m = n - (#components).
        return self.num_edges == self._n - len(self.connected_components())

    # ------------------------------------------------------------------ #
    # Peeling kernel
    # ------------------------------------------------------------------ #

    def peel_layers(self, threshold: int, max_rounds: int | None = None) -> tuple[array, int]:
        """Round-synchronous peeling kernel shared by the layering pipelines.

        In every round, all vertices whose *remaining* degree is at most
        ``threshold`` are removed simultaneously; the round index (1-based) is
        the vertex's layer.  This is the Barenboim–Elkin process underlying
        Lemma 3.13's auxiliary assignment ``ℓ_G``, the coreness guesses, and
        the Lemma 3.15 low-degree peel.

        Returns ``(layers, rounds_used)`` where ``layers`` is a flat
        ``array('l')`` with ``layers[v] == 0`` for vertices never peeled
        (possible only when the threshold is below ``2λ - 1`` or
        ``max_rounds`` cut the process short).

        The implementation is frontier-based (a bucket queue keyed by round):
        a vertex enters the next round's frontier the moment its remaining
        degree first drops to the threshold, so the total work is O(n + m)
        regardless of the number of rounds — the O(rounds · n) rescan of the
        naive formulation is gone.  The loop itself lives in
        :mod:`repro.kernels` and dispatches to the active backend: the
        ``numpy`` backend wraps the CSR columns in zero-copy
        ``np.frombuffer`` views and runs each round as one bincount-style
        frontier decrement plus a boolean-mask bucket extraction, with
        byte-identical ``(layers, rounds_used)`` output.
        """
        if threshold < 0:
            raise GraphError("threshold must be non-negative")
        return kernels.peel_layers(
            self._n,
            self.csr_indptr,
            self.csr_indices,
            self.degrees,
            threshold,
            max_rounds,
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: Sequence[Edge], num_vertices: Optional[int] = None) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` if not given."""
        edges = list(edges)
        if num_vertices is None:
            num_vertices = 1 + max((max(u, v) for u, v in edges), default=-1)
        return cls(num_vertices, edges)

    @classmethod
    def empty(cls, num_vertices: int) -> "Graph":
        """Graph with ``num_vertices`` vertices and no edges."""
        return cls(num_vertices, ())

    def union_edges(self, other: "Graph") -> "Graph":
        """Union of the edge sets of two graphs on the same vertex set.

        Both canonical edge lists are sorted, so the union is a linear merge.
        """
        if other.num_vertices != self._n:
            raise GraphError("union_edges requires graphs on the same vertex set")
        a = self.edges
        b = other.edges
        merged: list[Edge] = []
        i = j = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            ea, eb = a[i], b[j]
            if ea < eb:
                merged.append(ea)
                i += 1
            elif eb < ea:
                merged.append(eb)
                j += 1
            else:
                merged.append(ea)
                i += 1
                j += 1
        if i < la:
            merged.extend(a[i:])
        if j < lb:
            merged.extend(b[j:])
        return Graph._from_canonical_sorted(self._n, merged)


class InducedSubgraph(Graph):
    """An induced subgraph that remembers the mapping back to its parent.

    ``local`` ids are ``0 .. k-1``; :meth:`to_parent` and :meth:`to_local`
    translate between local and parent vertex ids.
    """

    __slots__ = ("_to_parent", "_to_local")

    def __init__(self, num_vertices: int, edges: Iterable[Edge], to_parent: Sequence[int]) -> None:
        super().__init__(num_vertices, edges)
        if len(to_parent) != num_vertices:
            raise GraphError("to_parent must list exactly one parent id per local vertex")
        self._to_parent: tuple[int, ...] = tuple(int(p) for p in to_parent)
        self._to_local: dict[int, int] = {p: i for i, p in enumerate(self._to_parent)}
        if len(self._to_local) != num_vertices:
            raise GraphError("to_parent contains duplicate parent ids")

    @classmethod
    def from_parent(cls, parent: Graph, vertex_subset: Iterable[int]) -> "InducedSubgraph":
        kept = sorted(set(int(v) for v in vertex_subset))
        if kept and (kept[0] < 0 or kept[-1] >= parent.num_vertices):
            offender = kept[0] if kept[0] < 0 else kept[-1]
            raise GraphError(f"vertex {offender} is not a vertex of the parent graph")
        local_of = [-1] * parent.num_vertices
        for i, p in enumerate(kept):
            local_of[p] = i
        indptr = parent.csr_indptr
        indices = parent.csr_indices
        # Walk only the kept vertices' adjacency slices; each kept edge is
        # seen once from its smaller endpoint, already in canonical order.
        edges: list[Edge] = []
        append = edges.append
        for i, p in enumerate(kept):
            for w in indices[indptr[p] : indptr[p + 1]]:
                if w > p:
                    lw = local_of[w]
                    if lw >= 0:
                        append((i, lw))
        sub = cls._from_canonical_sorted(len(kept), edges)
        sub._to_parent = tuple(kept)
        sub._to_local = {p: i for i, p in enumerate(kept)}
        return sub

    def to_parent(self, local_vertex: int) -> int:
        """Parent id of a local vertex."""
        return self._to_parent[local_vertex]

    def to_local(self, parent_vertex: int) -> int:
        """Local id of a parent vertex (KeyError if not in the subgraph)."""
        return self._to_local[parent_vertex]

    @property
    def parent_ids(self) -> tuple[int, ...]:
        """Tuple mapping local id -> parent id."""
        return self._to_parent

    def __reduce__(self):
        # Override Graph's columns-only reduction: the parent mapping is not
        # derivable from the edge columns and must travel along.
        return (
            _rebuild_induced_subgraph,
            (self._n, self._edge_u, self._edge_v, self._to_parent),
        )

    def __repr__(self) -> str:
        return f"InducedSubgraph(n={self.num_vertices}, m={self.num_edges})"


def _rebuild_induced_subgraph(
    num_vertices: int, edge_u: array, edge_v: array, to_parent: tuple[int, ...]
) -> InducedSubgraph:
    """Unpickle helper for :class:`InducedSubgraph` (module-level for pickle)."""
    sub = InducedSubgraph.__new__(InducedSubgraph)
    sub._n = int(num_vertices)
    sub._init_columns(edge_u, edge_v)
    sub._to_parent = tuple(to_parent)
    sub._to_local = {p: i for i, p in enumerate(sub._to_parent)}
    return sub
