"""Immutable undirected graph used throughout the reproduction.

The MPC and LOCAL simulators, the core algorithms of the paper, and the
baselines all consume the same :class:`Graph` type defined here.  The class is
intentionally small: vertices are integers ``0 .. n-1`` and the edge set is a
set of unordered pairs.  All derived structures (adjacency lists, degrees) are
computed once at construction time and never mutated afterwards, which keeps
the simulators honest — an algorithm cannot "cheat" by editing the input in
place; it must produce explicit outputs (orientations, colorings, layerings).

The class stores adjacency as sorted tuples so iteration order is
deterministic, which matters for reproducibility of the randomized algorithms
(they consume randomness only through explicitly passed generators).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.errors import GraphError

Edge = tuple[int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Return the canonical (smaller, larger) representation of an edge.

    Raises :class:`GraphError` for self loops, which none of the algorithms in
    the paper support (a self loop has no meaningful orientation).
    """
    if u == v:
        raise GraphError(f"self loop ({u}, {v}) is not allowed")
    if u < v:
        return (u, v)
    return (v, u)


class Graph:
    """A finite, simple, undirected graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertices are identified with ``range(num_vertices)``.
    edges:
        Iterable of ``(u, v)`` pairs.  Each pair is normalised; duplicates and
        reversed duplicates are rejected so the edge multiset is simple.

    Notes
    -----
    The graph is immutable.  Algorithms that need to "remove" vertices or
    edges (e.g. the peeling procedures of the paper) either track removed sets
    externally or call :meth:`induced_subgraph` / :meth:`subgraph_without_vertices`
    to obtain fresh graphs.
    """

    __slots__ = ("_n", "_edges", "_adjacency", "_degrees")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._n = int(num_vertices)

        edge_set: set[Edge] = set()
        adjacency: list[list[int]] = [[] for _ in range(self._n)]
        for u, v in edges:
            u = int(u)
            v = int(v)
            if not (0 <= u < self._n and 0 <= v < self._n):
                raise GraphError(
                    f"edge ({u}, {v}) references a vertex outside 0..{self._n - 1}"
                )
            e = normalize_edge(u, v)
            if e in edge_set:
                raise GraphError(f"duplicate edge {e}")
            edge_set.add(e)
            adjacency[e[0]].append(e[1])
            adjacency[e[1]].append(e[0])

        self._edges: tuple[Edge, ...] = tuple(sorted(edge_set))
        self._adjacency: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(neighbors)) for neighbors in adjacency
        )
        self._degrees: tuple[int, ...] = tuple(len(a) for a in self._adjacency)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return len(self._edges)

    @property
    def vertices(self) -> range:
        """The vertex set, as a ``range`` object."""
        return range(self._n)

    @property
    def edges(self) -> tuple[Edge, ...]:
        """All edges in canonical ``(min, max)`` form, sorted."""
        return self._edges

    def neighbors(self, v: int) -> tuple[int, ...]:
        """Sorted tuple of neighbors of ``v``."""
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        return self._degrees[v]

    @property
    def degrees(self) -> tuple[int, ...]:
        """Tuple of all vertex degrees, indexed by vertex id."""
        return self._degrees

    def max_degree(self) -> int:
        """Maximum degree Δ of the graph (0 for the empty graph)."""
        return max(self._degrees, default=0)

    def average_degree(self) -> float:
        """Average degree ``2m / n`` (0.0 for the empty graph)."""
        if self._n == 0:
            return 0.0
        return 2.0 * self.num_edges / self._n

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return (u, v) in self

    def __contains__(self, edge: Edge) -> bool:
        u, v = edge
        if u == v or not (0 <= u < self._n and 0 <= v < self._n):
            return False
        # adjacency tuples are sorted, but degrees are small enough that a
        # linear scan is fine and avoids building an auxiliary index.
        return v in self._adjacency[u]

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self.num_edges})"

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def induced_subgraph(self, vertex_subset: Iterable[int]) -> "InducedSubgraph":
        """Return the subgraph induced by ``vertex_subset``.

        The returned :class:`InducedSubgraph` relabels the kept vertices to
        ``0 .. len(subset)-1`` but remembers the mapping back to the original
        ids, which the partitioning lemmas (Lemma 2.2) and the iterative layer
        assignment (Lemma 3.14) need.
        """
        return InducedSubgraph.from_parent(self, vertex_subset)

    def subgraph_without_vertices(self, removed: Iterable[int]) -> "InducedSubgraph":
        """Induced subgraph on the complement of ``removed``."""
        removed_set = set(removed)
        kept = [v for v in range(self._n) if v not in removed_set]
        return self.induced_subgraph(kept)

    def edge_subgraph(self, edge_subset: Iterable[Edge]) -> "Graph":
        """Return a graph on the same vertex set containing only ``edge_subset``.

        Used by the random edge partitioning of Lemma 2.1: each part keeps all
        vertices but only its share of the edges.
        """
        normalized = [normalize_edge(u, v) for u, v in edge_subset]
        missing = [e for e in normalized if e not in self]
        if missing:
            raise GraphError(f"edges {missing[:3]}... are not present in the graph")
        return Graph(self._n, normalized)

    def connected_components(self) -> list[list[int]]:
        """Connected components as lists of vertex ids (BFS, iterative)."""
        seen = [False] * self._n
        components: list[list[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            seen[start] = True
            component = [start]
            frontier = [start]
            while frontier:
                next_frontier: list[int] = []
                for u in frontier:
                    for w in self._adjacency[u]:
                        if not seen[w]:
                            seen[w] = True
                            component.append(w)
                            next_frontier.append(w)
                frontier = next_frontier
            components.append(sorted(component))
        return components

    def is_forest(self) -> bool:
        """Whether the graph is acyclic (a forest)."""
        # A graph is a forest iff m = n - (#components).
        return self.num_edges == self._n - len(self.connected_components())

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(cls, edges: Sequence[Edge], num_vertices: Optional[int] = None) -> "Graph":
        """Build a graph from an edge list, inferring ``n`` if not given."""
        edges = list(edges)
        if num_vertices is None:
            num_vertices = 1 + max((max(u, v) for u, v in edges), default=-1)
        return cls(num_vertices, edges)

    @classmethod
    def empty(cls, num_vertices: int) -> "Graph":
        """Graph with ``num_vertices`` vertices and no edges."""
        return cls(num_vertices, ())

    def union_edges(self, other: "Graph") -> "Graph":
        """Union of the edge sets of two graphs on the same vertex set."""
        if other.num_vertices != self._n:
            raise GraphError("union_edges requires graphs on the same vertex set")
        combined = set(self._edges) | set(other.edges)
        return Graph(self._n, combined)


class InducedSubgraph(Graph):
    """An induced subgraph that remembers the mapping back to its parent.

    ``local`` ids are ``0 .. k-1``; :meth:`to_parent` and :meth:`to_local`
    translate between local and parent vertex ids.
    """

    __slots__ = ("_to_parent", "_to_local")

    def __init__(self, num_vertices: int, edges: Iterable[Edge], to_parent: Sequence[int]) -> None:
        super().__init__(num_vertices, edges)
        if len(to_parent) != num_vertices:
            raise GraphError("to_parent must list exactly one parent id per local vertex")
        self._to_parent: tuple[int, ...] = tuple(int(p) for p in to_parent)
        self._to_local: dict[int, int] = {p: i for i, p in enumerate(self._to_parent)}
        if len(self._to_local) != num_vertices:
            raise GraphError("to_parent contains duplicate parent ids")

    @classmethod
    def from_parent(cls, parent: Graph, vertex_subset: Iterable[int]) -> "InducedSubgraph":
        kept = sorted(set(int(v) for v in vertex_subset))
        for v in kept:
            if not (0 <= v < parent.num_vertices):
                raise GraphError(f"vertex {v} is not a vertex of the parent graph")
        local_of = {p: i for i, p in enumerate(kept)}
        kept_set = set(kept)
        edges = [
            (local_of[u], local_of[v])
            for (u, v) in parent.edges
            if u in kept_set and v in kept_set
        ]
        return cls(len(kept), edges, kept)

    def to_parent(self, local_vertex: int) -> int:
        """Parent id of a local vertex."""
        return self._to_parent[local_vertex]

    def to_local(self, parent_vertex: int) -> int:
        """Local id of a parent vertex (KeyError if not in the subgraph)."""
        return self._to_local[parent_vertex]

    @property
    def parent_ids(self) -> tuple[int, ...]:
        """Tuple mapping local id -> parent id."""
        return self._to_parent

    def __repr__(self) -> str:
        return f"InducedSubgraph(n={self.num_vertices}, m={self.num_edges})"
