"""H-partitions (complete layer assignments) and their validation.

An H-partition [BE08, GLM+23] splits the vertex set into layers
``H_1 ⊔ H_2 ⊔ ... ⊔ H_L`` such that every vertex in layer ``i`` has at most
``d`` neighbors in layers ``≥ i``.  The deterministic part of Theorem 1.1
computes exactly such a partition with ``d = O(λ log log n)`` and additionally
guarantees geometric decay of the layer sizes, ``|H_i| ≤ n · exp(-Θ(i))``
(in our Lemma 3.15 driver: ``|{v : ℓ(v) ≥ j}| ≤ 0.5^{j-1} n``).

This module holds the *value object* describing the result; the algorithms
computing H-partitions live in :mod:`repro.core`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.errors import InvalidLayeringError
from repro.graph.graph import Graph
from repro.graph.orientation import Orientation


@dataclass(frozen=True)
class HPartition:
    """A complete layer assignment ``ℓ : V -> {1, ..., L}``.

    Attributes
    ----------
    graph:
        The underlying graph.
    layer_of:
        Mapping from vertex id to its (1-based) layer number.
    """

    graph: Graph
    layer_of: Mapping[int, int]
    _layers: tuple[tuple[int, ...], ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        missing = [v for v in self.graph.vertices if v not in self.layer_of]
        if missing:
            raise InvalidLayeringError(
                f"{len(missing)} vertices have no layer (e.g. {missing[:5]})"
            )
        bad = [v for v in self.graph.vertices if self.layer_of[v] < 1]
        if bad:
            raise InvalidLayeringError(f"layers must be ≥ 1 (offenders: {bad[:5]})")
        num_layers = max((self.layer_of[v] for v in self.graph.vertices), default=0)
        layers: list[list[int]] = [[] for _ in range(num_layers)]
        for v in self.graph.vertices:
            layers[self.layer_of[v] - 1].append(v)
        object.__setattr__(self, "_layers", tuple(tuple(layer) for layer in layers))

    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        """Number of layers ``L`` (index of the deepest non-empty layer)."""
        return len(self._layers)

    def layer(self, index: int) -> tuple[int, ...]:
        """Vertices in layer ``index`` (1-based)."""
        return self._layers[index - 1]

    @property
    def layers(self) -> tuple[tuple[int, ...], ...]:
        """All layers, ``layers[i]`` being layer ``i+1``."""
        return self._layers

    def layer_sizes(self) -> list[int]:
        """``[|H_1|, |H_2|, ..., |H_L|]``."""
        return [len(layer) for layer in self._layers]

    def suffix_sizes(self) -> list[int]:
        """``[|{v : ℓ(v) ≥ j}|]`` for ``j = 1..L`` (the decay quantity of Lemma 3.15)."""
        sizes = self.layer_sizes()
        suffix: list[int] = []
        total = 0
        for size in reversed(sizes):
            total += size
            suffix.append(total)
        return list(reversed(suffix))

    def out_degree_of(self, v: int) -> int:
        """Number of neighbors of ``v`` in the same or a higher layer."""
        mine = self.layer_of[v]
        return sum(1 for w in self.graph.neighbors(v) if self.layer_of[w] >= mine)

    def max_out_degree(self) -> int:
        """``max_v |{u ∈ N(v) : ℓ(u) ≥ ℓ(v)}|`` — the H-partition's out-degree."""
        return max((self.out_degree_of(v) for v in self.graph.vertices), default=0)

    def to_orientation(self) -> Orientation:
        """Orient every edge toward the strictly higher layer (ties toward larger id)."""
        return Orientation.from_layering(self.graph, self.layer_of)

    # ------------------------------------------------------------------ #
    # Validation helpers used by tests and the experiment harness
    # ------------------------------------------------------------------ #

    def validate_out_degree(self, bound: int) -> None:
        """Raise unless every vertex has ≤ ``bound`` neighbors in layers ≥ its own."""
        worst = self.max_out_degree()
        if worst > bound:
            offenders = [
                v
                for v in self.graph.vertices
                if self.out_degree_of(v) > bound
            ]
            raise InvalidLayeringError(
                f"H-partition out-degree {worst} exceeds bound {bound} "
                f"({len(offenders)} offenders, e.g. {offenders[:5]})"
            )

    def validate_decay(self, ratio: float = 0.5, slack: float = 1.0) -> None:
        """Check the geometric decay property of Lemma 3.15.

        Requires ``|{v : ℓ(v) ≥ j}| ≤ slack · ratio^{j-1} · n`` for every
        layer ``j``.  ``slack`` allows a multiplicative constant when checking
        randomized runs on small graphs.
        """
        n = self.graph.num_vertices
        for j, suffix in enumerate(self.suffix_sizes(), start=1):
            allowed = slack * (ratio ** (j - 1)) * n
            if suffix > allowed + 1e-9:
                raise InvalidLayeringError(
                    f"layer decay violated at layer {j}: "
                    f"{suffix} vertices remain but only {allowed:.2f} allowed"
                )

    @classmethod
    def from_layers(cls, graph: Graph, layers: Sequence[Sequence[int]]) -> "HPartition":
        """Build from an explicit list of layers (layer 1 first)."""
        layer_of: dict[int, int] = {}
        for index, layer in enumerate(layers, start=1):
            for v in layer:
                if v in layer_of:
                    raise InvalidLayeringError(f"vertex {v} appears in more than one layer")
                layer_of[v] = index
        return cls(graph, layer_of)
