"""Graph substrate: graphs, generators, density estimation, result value objects."""

from repro.graph.arboricity import (
    ArboricityBounds,
    arboricity_bounds,
    arboricity_upper_bound,
    degeneracy,
    degeneracy_ordering,
    densest_subgraph,
    densest_subgraph_density,
    greedy_peeling_layers,
)
from repro.graph.coloring import Coloring
from repro.graph.graph import Edge, Graph, InducedSubgraph, normalize_edge
from repro.graph.hpartition import HPartition
from repro.graph.io import (
    format_coloring,
    format_layering,
    format_orientation,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)
from repro.graph.maxflow import FlowNetwork
from repro.graph.orientation import Orientation, validate_outdegree_bound

__all__ = [
    "ArboricityBounds",
    "Coloring",
    "Edge",
    "FlowNetwork",
    "Graph",
    "HPartition",
    "InducedSubgraph",
    "Orientation",
    "arboricity_bounds",
    "arboricity_upper_bound",
    "degeneracy",
    "degeneracy_ordering",
    "densest_subgraph",
    "densest_subgraph_density",
    "format_coloring",
    "format_layering",
    "format_orientation",
    "greedy_peeling_layers",
    "normalize_edge",
    "parse_edge_list",
    "read_edge_list",
    "validate_outdegree_bound",
    "write_edge_list",
]
