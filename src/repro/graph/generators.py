"""Random graph generators used by the workloads and tests.

The paper motivates density-dependent orientation with graphs whose maximum
degree Δ is much larger than the arboricity λ (stars, power-law graphs, web
crawls, social networks).  The experiment harness therefore needs generators
with *controllable arboricity*:

* :func:`random_forest` and :func:`random_tree` — λ = 1 exactly.
* :func:`union_of_random_forests` — λ ≤ t by construction (union of t forests,
  Nash-Williams), and ≥ roughly t in expectation for dense-enough forests.
  This is the primary workload of E1/E2/E5.
* :func:`gnm_random_graph` / :func:`gnp_random_graph` — Erdős–Rényi; density
  about m/n.
* :func:`chung_lu_power_law` — heavy-tailed degrees with small arboricity; the
  "star-like" regime where Δ ≫ λ that motivates the paper.
* :func:`star`, :func:`complete_graph`, :func:`grid_2d`, :func:`cycle` —
  deterministic extreme cases used by unit tests.
* :func:`planted_dense_subgraph` — a sparse background with a planted dense
  community, exercising the densest-subgraph machinery and Lemma 2.1/2.2.

Every generator takes an explicit ``rng`` (``random.Random``) or ``seed`` so
the benchmarks are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import GraphError
from repro.graph.graph import Edge, Graph, normalize_edge


def _resolve_rng(rng: random.Random | None, seed: int | None) -> random.Random:
    if rng is not None:
        return rng
    return random.Random(seed)


# --------------------------------------------------------------------------- #
# Deterministic families
# --------------------------------------------------------------------------- #


def star(num_leaves: int) -> Graph:
    """A star with one center (vertex 0) and ``num_leaves`` leaves.

    The canonical example where Δ = n - 1 but λ = 1: Δ-dependent coloring
    wastes Θ(n) colors while density-dependent coloring needs O(1).
    """
    if num_leaves < 0:
        raise GraphError("num_leaves must be non-negative")
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return Graph(num_leaves + 1, edges)


def path(num_vertices: int) -> Graph:
    """A simple path on ``num_vertices`` vertices."""
    edges = [(i, i + 1) for i in range(num_vertices - 1)]
    return Graph(num_vertices, edges)


def cycle(num_vertices: int) -> Graph:
    """A cycle on ``num_vertices ≥ 3`` vertices (λ = 2, degeneracy 2)."""
    if num_vertices < 3:
        raise GraphError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % num_vertices) for i in range(num_vertices)]
    return Graph(num_vertices, edges)


def complete_graph(num_vertices: int) -> Graph:
    """The complete graph K_n (λ = ⌈n/2⌉)."""
    edges = [(i, j) for i in range(num_vertices) for j in range(i + 1, num_vertices)]
    return Graph(num_vertices, edges)


def complete_bipartite(left: int, right: int) -> Graph:
    """The complete bipartite graph K_{left,right}."""
    edges = [(i, left + j) for i in range(left) for j in range(right)]
    return Graph(left + right, edges)


def grid_2d(rows: int, cols: int) -> Graph:
    """A rows × cols grid graph (λ = 2 for non-degenerate grids)."""
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
    return Graph(rows * cols, edges)


def complete_ary_tree(branching: int, num_vertices: int) -> Graph:
    """A complete ``branching``-ary tree truncated at ``num_vertices`` vertices.

    With ``branching ≥ (2+ε)·λ + 1`` this is the canonical *slow-peeling*
    instance: the Barenboim–Elkin process removes exactly one level of the
    tree per iteration, so the LOCAL baseline needs ``Θ(log_b n)`` rounds —
    the separation workload of experiment E3.
    """
    if branching < 2:
        raise GraphError("branching must be at least 2")
    edges = [((i - 1) // branching, i) for i in range(1, num_vertices)]
    return Graph(max(num_vertices, 0), edges)


def deep_hierarchy(
    num_vertices: int,
    branching: int = 6,
    extra_forests: int = 2,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """A complete b-ary tree overlaid with random forests (λ ≤ 1 + extra_forests).

    Keeps the level-by-level peeling behaviour of :func:`complete_ary_tree`
    while raising the arboricity above 1, so the workload is outside the
    forest special case of [GLM+23].
    """
    rng = _resolve_rng(rng, seed)
    base = complete_ary_tree(branching, num_vertices)
    edge_set: set[Edge] = set(base.edges)
    for _ in range(max(extra_forests, 0)):
        order = list(range(num_vertices))
        rng.shuffle(order)
        for i in range(1, num_vertices):
            parent = order[rng.randrange(i)]
            edge_set.add(normalize_edge(parent, order[i]))
    return Graph(num_vertices, edge_set)


# --------------------------------------------------------------------------- #
# Random trees and forests (λ = 1)
# --------------------------------------------------------------------------- #


def random_tree(num_vertices: int, rng: random.Random | None = None, seed: int | None = None) -> Graph:
    """A uniformly random labelled tree via a random Prüfer-like attachment.

    Each vertex ``i ≥ 1`` attaches to a uniformly random earlier vertex, which
    produces a random recursive tree (not the uniform distribution over all
    labelled trees, but with the right shape properties for our experiments:
    depth Θ(log n), λ = 1).
    """
    rng = _resolve_rng(rng, seed)
    if num_vertices <= 0:
        return Graph(max(num_vertices, 0), ())
    edges = [(rng.randrange(i), i) for i in range(1, num_vertices)]
    return Graph(num_vertices, edges)


def random_forest(
    num_vertices: int,
    num_trees: int = 1,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """A random forest on ``num_vertices`` vertices with ``num_trees`` components."""
    rng = _resolve_rng(rng, seed)
    if num_trees < 1 or num_trees > max(num_vertices, 1):
        raise GraphError("num_trees must be between 1 and num_vertices")
    # Assign vertices to trees, then build a random recursive tree inside each.
    assignment = list(range(num_vertices))
    rng.shuffle(assignment)
    edges: list[Edge] = []
    boundaries = [0]
    base = num_vertices // num_trees
    extra = num_vertices % num_trees
    for t in range(num_trees):
        size = base + (1 if t < extra else 0)
        boundaries.append(boundaries[-1] + size)
    for t in range(num_trees):
        members = assignment[boundaries[t] : boundaries[t + 1]]
        for i in range(1, len(members)):
            parent = members[rng.randrange(i)]
            edges.append(normalize_edge(parent, members[i]))
    return Graph(num_vertices, edges)


def union_of_random_forests(
    num_vertices: int,
    arboricity: int,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """A graph that is the union of ``arboricity`` random spanning forests.

    By Nash-Williams, λ(G) ≤ ``arboricity`` exactly; with n ≫ arboricity the
    density is close to ``arboricity`` as well, so this family gives tight
    control over λ.  Duplicate edges across forests are simply dropped (which
    can only lower λ).
    """
    rng = _resolve_rng(rng, seed)
    if arboricity < 1:
        raise GraphError("arboricity must be at least 1")
    edge_set: set[Edge] = set()
    for _ in range(arboricity):
        order = list(range(num_vertices))
        rng.shuffle(order)
        for i in range(1, num_vertices):
            parent = order[rng.randrange(i)]
            edge_set.add(normalize_edge(parent, order[i]))
    return Graph(num_vertices, edge_set)


# --------------------------------------------------------------------------- #
# Erdős–Rényi
# --------------------------------------------------------------------------- #


def gnp_random_graph(
    num_vertices: int,
    probability: float,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """G(n, p): every edge appears independently with probability ``p``.

    Uses the skip-sampling technique so the running time is proportional to
    the number of generated edges rather than n².
    """
    rng = _resolve_rng(rng, seed)
    if not 0.0 <= probability <= 1.0:
        raise GraphError("probability must lie in [0, 1]")
    if probability == 0.0 or num_vertices < 2:
        return Graph(max(num_vertices, 0), ())
    if probability == 1.0:
        return complete_graph(num_vertices)

    import math

    edges: list[Edge] = []
    log_q = math.log(1.0 - probability)
    v = 1
    w = -1
    while v < num_vertices:
        r = rng.random()
        w = w + 1 + int(math.floor(math.log(1.0 - r) / log_q))
        while w >= v and v < num_vertices:
            w -= v
            v += 1
        if v < num_vertices:
            edges.append((w, v))
    return Graph(num_vertices, edges)


def gnm_random_graph(
    num_vertices: int,
    num_edges: int,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """G(n, m): ``num_edges`` distinct edges chosen uniformly at random."""
    rng = _resolve_rng(rng, seed)
    max_edges = num_vertices * (num_vertices - 1) // 2
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges in a simple graph on {num_vertices} vertices")
    edge_set: set[Edge] = set()
    while len(edge_set) < num_edges:
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v:
            continue
        edge_set.add(normalize_edge(u, v))
    return Graph(num_vertices, edge_set)


# --------------------------------------------------------------------------- #
# Power law / Chung-Lu
# --------------------------------------------------------------------------- #


def chung_lu_power_law(
    num_vertices: int,
    exponent: float = 2.5,
    average_degree: float = 4.0,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """A Chung–Lu random graph with power-law expected degrees.

    Vertex ``i`` gets weight ``w_i ∝ (i + i0)^{-1/(exponent-1)}`` scaled so the
    average expected degree is ``average_degree``; edge ``{u, v}`` appears with
    probability ``min(1, w_u w_v / W)``.  This family has a few very high
    degree hubs (Δ = n^{Θ(1)}) while the arboricity stays polylogarithmic —
    the regime where density-dependent bounds beat Δ-dependent ones.
    """
    rng = _resolve_rng(rng, seed)
    if num_vertices == 0:
        return Graph(0, ())
    if exponent <= 1.0:
        raise GraphError("exponent must be > 1")
    gamma = 1.0 / (exponent - 1.0)
    raw = [(i + 1.0) ** (-gamma) for i in range(num_vertices)]
    scale = average_degree * num_vertices / sum(raw)
    weights = [w * scale for w in raw]
    total_weight = sum(weights)

    edges: set[Edge] = set()
    # For each vertex, sample its expected number of partners from the
    # weight distribution; this gives the right degree sequence shape while
    # staying near-linear time.
    cumulative: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cumulative.append(acc)

    def sample_partner() -> int:
        target = rng.random() * total_weight
        lo, hi = 0, num_vertices - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo

    expected_edges = int(total_weight / 2.0)
    for _ in range(expected_edges):
        u = sample_partner()
        v = sample_partner()
        if u == v:
            continue
        edges.add(normalize_edge(u, v))
    return Graph(num_vertices, edges)


# --------------------------------------------------------------------------- #
# Planted structure
# --------------------------------------------------------------------------- #


def planted_dense_subgraph(
    num_vertices: int,
    community_size: int,
    community_probability: float = 0.5,
    background_probability: float = 0.01,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """A sparse background graph with one dense planted community.

    Vertices ``0 .. community_size-1`` form the community.  The arboricity is
    dominated by the community (about ``community_size ·
    community_probability / 2``), so this family produces λ ≫ log n inputs
    exercising Lemma 2.1/2.2 and the large-λ branch of Theorems 1.1/1.2.
    """
    rng = _resolve_rng(rng, seed)
    if community_size > num_vertices:
        raise GraphError("community_size cannot exceed num_vertices")
    edges: set[Edge] = set()
    for u in range(community_size):
        for v in range(u + 1, community_size):
            if rng.random() < community_probability:
                edges.add((u, v))
    background = gnp_random_graph(num_vertices, background_probability, rng=rng)
    edges.update(background.edges)
    return Graph(num_vertices, edges)


def bounded_degree_random_graph(
    num_vertices: int,
    degree: int,
    rng: random.Random | None = None,
    seed: int | None = None,
) -> Graph:
    """A random graph with maximum degree ≤ ``degree`` (greedy random matching rounds).

    Built as the union of ``degree`` random perfect-matching attempts; useful
    for tests that need Δ close to λ.
    """
    rng = _resolve_rng(rng, seed)
    if degree < 0:
        raise GraphError("degree must be non-negative")
    edges: set[Edge] = set()
    current_degree = [0] * num_vertices
    for _ in range(degree):
        order = list(range(num_vertices))
        rng.shuffle(order)
        for i in range(0, num_vertices - 1, 2):
            u, v = order[i], order[i + 1]
            if current_degree[u] < degree and current_degree[v] < degree:
                e = normalize_edge(u, v)
                if e not in edges:
                    edges.add(e)
                    current_degree[u] += 1
                    current_degree[v] += 1
    return Graph(num_vertices, edges)


# --------------------------------------------------------------------------- #
# Registry used by the experiment workloads
# --------------------------------------------------------------------------- #


def family_names() -> Sequence[str]:
    """Names of generator families accepted by :func:`generate`."""
    return (
        "forest",
        "union_forests",
        "gnp",
        "gnm",
        "power_law",
        "star",
        "grid",
        "planted_dense",
        "ary_tree",
        "deep_hierarchy",
    )


def generate(family: str, num_vertices: int, seed: int = 0, **kwargs) -> Graph:
    """Generate a member of a named family; used by the experiment registry."""
    rng = random.Random(seed)
    if family == "forest":
        return random_forest(num_vertices, kwargs.get("num_trees", 1), rng=rng)
    if family == "union_forests":
        return union_of_random_forests(num_vertices, kwargs.get("arboricity", 4), rng=rng)
    if family == "gnp":
        return gnp_random_graph(num_vertices, kwargs.get("probability", 8.0 / max(num_vertices, 1)), rng=rng)
    if family == "gnm":
        return gnm_random_graph(num_vertices, kwargs.get("num_edges", 4 * num_vertices), rng=rng)
    if family == "power_law":
        return chung_lu_power_law(
            num_vertices,
            exponent=kwargs.get("exponent", 2.5),
            average_degree=kwargs.get("average_degree", 6.0),
            rng=rng,
        )
    if family == "star":
        return star(num_vertices - 1)
    if family == "grid":
        side = max(int(num_vertices**0.5), 1)
        return grid_2d(side, side)
    if family == "ary_tree":
        return complete_ary_tree(kwargs.get("branching", 6), num_vertices)
    if family == "deep_hierarchy":
        return deep_hierarchy(
            num_vertices,
            branching=kwargs.get("branching", 8),
            extra_forests=kwargs.get("extra_forests", 2),
            rng=rng,
        )
    if family == "planted_dense":
        return planted_dense_subgraph(
            num_vertices,
            community_size=kwargs.get("community_size", max(num_vertices // 10, 10)),
            community_probability=kwargs.get("community_probability", 0.5),
            background_probability=kwargs.get("background_probability", 2.0 / max(num_vertices, 1)),
            rng=rng,
        )
    raise GraphError(f"unknown graph family {family!r}; known: {family_names()}")
