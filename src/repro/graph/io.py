"""Reading and writing graphs and results as plain-text edge lists / TSV.

A downstream user of the library typically has an edge list on disk (one
``u v`` pair per line, ``#`` comments allowed) rather than a generator call;
these helpers move between that format and :class:`~repro.graph.graph.Graph`,
and dump orientations / colorings / layerings in a greppable one-line-per-item
format that the CLI (:mod:`repro.cli`) uses.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.errors import GraphError
from repro.graph.coloring import Coloring
from repro.graph.graph import Edge, Graph, normalize_edge
from repro.graph.hpartition import HPartition
from repro.graph.orientation import Orientation


def parse_edge_list(lines: Iterable[str]) -> Graph:
    """Parse an edge list (one ``u v`` pair per line) into a :class:`Graph`.

    Blank lines and lines starting with ``#`` are ignored.  Vertex ids must be
    non-negative integers; the vertex count is one more than the largest id
    seen (isolated trailing vertices can be declared with a ``# vertices N``
    header line).
    """
    edges: set[Edge] = set()
    declared_vertices = 0
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) == 2 and parts[0].lower() == "vertices":
                declared_vertices = int(parts[1])
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {line_number}: expected 'u v', got {line!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {line_number}: vertex ids must be integers") from exc
        if u < 0 or v < 0:
            raise GraphError(f"line {line_number}: vertex ids must be non-negative")
        if u == v:
            continue  # silently drop self loops, common in crawled edge lists
        edges.add(normalize_edge(u, v))
    num_vertices = max(
        declared_vertices, 1 + max((max(u, v) for u, v in edges), default=-1)
    )
    return Graph(max(num_vertices, 0), edges)


def read_edge_list(path: str | os.PathLike) -> Graph:
    """Read a graph from an edge-list file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_edge_list(handle)


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write a graph as an edge-list file (with a ``# vertices`` header)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# vertices {graph.num_vertices}\n")
        for u, v in graph.edges:
            handle.write(f"{u} {v}\n")


def format_orientation(orientation: Orientation) -> str:
    """One ``tail -> head`` line per edge, sorted, for the CLI output."""
    lines = []
    for (u, v) in orientation.graph.edges:
        head = orientation.head(u, v)
        tail = u if head == v else v
        lines.append(f"{tail} -> {head}")
    return "\n".join(lines)


def format_coloring(coloring: Coloring) -> str:
    """One ``vertex color`` line per vertex, sorted by vertex id."""
    return "\n".join(f"{v} {coloring.color(v)}" for v in coloring.graph.vertices)


def format_layering(partition: HPartition) -> str:
    """One ``vertex layer`` line per vertex, sorted by vertex id."""
    return "\n".join(f"{v} {partition.layer_of[v]}" for v in partition.graph.vertices)


def write_text(content: str, path: str | os.PathLike) -> None:
    """Write a text payload, ensuring a trailing newline."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
        if not content.endswith("\n"):
            handle.write("\n")
