"""Edge orientations and their validation.

An :class:`Orientation` assigns a direction to every edge of a graph.  The
paper's Theorem 1.1 computes orientations with maximum outdegree
``O(λ · log log n)``; the baselines compute ``(2+ε)λ`` orientations.  Both are
represented by this class, so the validators and benchmark reporting treat
them uniformly.

Internally the chosen heads are stored as a flat ``array('l')`` indexed by the
graph's canonical edge index (see :attr:`repro.graph.graph.Graph.edge_ids`);
the public ``direction`` attribute is a read-only :class:`Mapping` view over
that array, so existing callers that treat it as a dict keep working while
``merge_with`` and the constructors avoid materialising per-edge dicts.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro import kernels
from repro.errors import InvalidOrientationError
from repro.graph.graph import Edge, Graph, normalize_edge


class _EdgeHeadView(Mapping):
    """Read-only ``canonical edge -> head vertex`` view over a heads array."""

    __slots__ = ("_graph", "_heads")

    def __init__(self, graph: Graph, heads: array) -> None:
        self._graph = graph
        self._heads = heads

    def __getitem__(self, edge: Edge) -> int:
        index = self._graph.edge_ids.get(edge)
        if index is None:
            raise KeyError(edge)
        return self._heads[index]

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._graph.edges)

    def __len__(self) -> int:
        return len(self._heads)

    def __contains__(self, edge: object) -> bool:
        return edge in self._graph.edge_ids

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _EdgeHeadView):
            return (
                self._heads == other._heads
                and self._graph.edges == other._graph.edges
            )
        if isinstance(other, Mapping):
            if len(other) != len(self._heads):
                return False
            try:
                return all(
                    other[e] == h for e, h in zip(self._graph.edges, self._heads)
                )
            except KeyError:
                return False
        return NotImplemented

    __hash__ = None  # mutable-adjacent view; mirrors dict's unhashability

    def __repr__(self) -> str:
        return repr(dict(zip(self._graph.edges, self._heads)))


@dataclass(frozen=True)
class Orientation:
    """A complete orientation of the edges of ``graph``.

    ``direction`` maps each canonical edge ``(u, v)`` with ``u < v`` to the
    chosen head: the edge is oriented ``u -> head`` where ``head`` is either
    ``u`` or ``v`` — i.e. ``direction[(u, v)] == v`` means the edge points from
    ``u`` to ``v``.
    """

    graph: Graph
    direction: Mapping[Edge, int]
    _outdegree: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        graph = self.graph
        m = graph.num_edges
        edge_ids = graph.edge_ids
        heads = array("l", [0]) * m
        covered = 0
        extra = 0
        for e, head in self.direction.items():
            index = edge_ids.get(e)
            if index is None:
                extra += 1
                continue
            heads[index] = head
            covered += 1
        if extra or covered != m:
            raise InvalidOrientationError(
                f"orientation does not cover the edge set exactly "
                f"(missing {m - covered}, extra {extra})"
            )
        object.__setattr__(self, "direction", _EdgeHeadView(graph, heads))
        object.__setattr__(self, "_outdegree", _tally_outdegrees(graph, heads))

    # ------------------------------------------------------------------ #

    @property
    def _heads(self) -> array:
        return self.direction._heads

    def head(self, u: int, v: int) -> int:
        """The head (target) of the edge ``{u, v}``."""
        return self._heads[self.graph.edge_ids[normalize_edge(u, v)]]

    def tail(self, u: int, v: int) -> int:
        """The tail (source) of the edge ``{u, v}``."""
        e = normalize_edge(u, v)
        head = self._heads[self.graph.edge_ids[e]]
        return e[0] if head == e[1] else e[1]

    def is_oriented_from(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is oriented from ``u`` to ``v``."""
        return self.head(u, v) == v

    def out_neighbors(self, v: int) -> list[int]:
        """Vertices ``w`` such that the edge ``{v, w}`` is oriented ``v -> w``."""
        return [w for w in self.graph.neighbors(v) if self.is_oriented_from(v, w)]

    def in_neighbors(self, v: int) -> list[int]:
        """Vertices ``w`` such that the edge ``{w, v}`` is oriented ``w -> v``."""
        return [w for w in self.graph.neighbors(v) if self.is_oriented_from(w, v)]

    def iter_directed_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every edge as an ordered ``(tail, head)`` pair.

        One linear pass over the edge columns — the efficient public way to
        consume the whole orientation (the ``direction`` mapping view costs a
        hash lookup per edge).  Order matches :attr:`Graph.edges`.
        """
        edge_u, edge_v = self.graph.edge_endpoints
        for u, v, head in zip(edge_u, edge_v, self._heads):
            yield (u, head) if head == v else (v, head)

    def outdegree(self, v: int) -> int:
        """Outdegree of vertex ``v``."""
        return self._outdegree[v]

    @property
    def outdegrees(self) -> tuple[int, ...]:
        """Outdegree of every vertex, indexed by vertex id."""
        return self._outdegree

    def max_outdegree(self) -> int:
        """Maximum outdegree over all vertices (the paper's quality measure)."""
        return max(self._outdegree, default=0)

    def is_acyclic(self) -> bool:
        """Whether the oriented graph is a DAG.

        Orientations produced from a layering (orient toward the strictly
        higher layer, ties broken by id) are always acyclic; orientations from
        arbitrary tie-breaking may contain cycles inside a layer.  The
        property is used by the scheduling example and by tests.
        """
        graph = self.graph
        n = graph.num_vertices
        heads = self._heads
        edge_u, edge_v = graph.edge_endpoints
        out_adjacency: list[list[int]] = [[] for _ in range(n)]
        indegree = [0] * n
        for i in range(len(heads)):
            head = heads[i]
            tail = edge_u[i] if head == edge_v[i] else edge_v[i]
            out_adjacency[tail].append(head)
            indegree[head] += 1
        queue = [v for v in range(n) if indegree[v] == 0]
        seen = 0
        while queue:
            v = queue.pop()
            seen += 1
            for w in out_adjacency[v]:
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        return seen == n

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_heads(
        cls, graph: Graph, heads: array, outdegree: tuple[int, ...] | None = None
    ) -> "Orientation":
        """Internal fast path: ``heads[i]`` is the head of edge ``i``.

        Coverage is guaranteed by construction; endpoint validity is checked
        by the outdegree tally unless the caller supplies an already-verified
        ``outdegree`` tuple (e.g. the sum of two merged parts' tallies).
        """
        self = object.__new__(cls)
        object.__setattr__(self, "graph", graph)
        object.__setattr__(self, "direction", _EdgeHeadView(graph, heads))
        if outdegree is None:
            outdegree = _tally_outdegrees(graph, heads)
        object.__setattr__(self, "_outdegree", outdegree)
        return self

    @classmethod
    def from_head_map(cls, graph: Graph, head_of: Mapping[Edge, int]) -> "Orientation":
        """Build from a mapping of canonical edge -> head vertex."""
        return cls(graph, head_of)

    @classmethod
    def from_vertex_order(cls, graph: Graph, rank: Mapping[int, int] | Iterable[int]) -> "Orientation":
        """Orient every edge from the lower-ranked endpoint to the higher-ranked one.

        ``rank`` is either a mapping vertex -> rank or a sequence listing the
        rank of each vertex.  Ties are broken toward the larger vertex id,
        matching the paper's "break ties by identifier" convention.  The head
        flips run through :mod:`repro.kernels` — one vectorized ``np.where``
        over the edge columns on the numpy backend, the reference loop on
        ``pure`` — with identical heads either way.
        """
        ranks = rank if isinstance(rank, Mapping) else list(rank)
        edge_u, edge_v = graph.edge_endpoints
        heads = kernels.orient_by_rank(edge_u, edge_v, ranks)
        return cls._from_heads(graph, heads)

    @classmethod
    def from_layering(cls, graph: Graph, layer_of: Mapping[int, int]) -> "Orientation":
        """Orient each edge toward the endpoint in the strictly higher layer.

        Edges inside a layer are oriented toward the larger id.  This is
        exactly how Theorem 1.1 turns an H-partition into an orientation.
        """
        return cls.from_vertex_order(graph, [layer_of[v] for v in graph.vertices])

    def __reduce__(self):
        # Ship only the graph (itself reduced to its edge columns) and the
        # flat heads array; the outdegree tally is recomputed on unpickle —
        # one O(m) pass, far cheaper than pickling an n-tuple of ints.
        return (_rebuild_orientation, (self.graph, self._heads))

    def merge_with(self, other: "Orientation") -> "Orientation":
        """Union of two orientations of edge-disjoint graphs on the same vertex set.

        Used by Theorem 1.1 when λ ≫ log n: each random edge part is oriented
        separately and the orientations are combined.  The merge is a linear
        pass over the union's edge index — no per-edge dicts are built.
        """
        if other.graph.num_vertices != self.graph.num_vertices:
            raise InvalidOrientationError("cannot merge orientations over different vertex sets")
        # Both canonical edge lists are sorted, so edges and heads merge
        # without hash lookups: a two-pointer walk on the pure backend, a
        # searchsorted permutation scatter on numpy; overlapping edges are
        # detected before any result is assembled.
        a_u, a_v = self.graph.edge_endpoints
        b_u, b_v = other.graph.edge_endpoints
        edge_u, edge_v, heads, overlap = kernels.merge_oriented_columns(
            self.graph.num_vertices, a_u, a_v, self._heads, b_u, b_v, other._heads
        )
        if overlap:
            raise InvalidOrientationError(
                f"cannot merge orientations sharing {overlap} edges"
            )
        merged_graph = Graph._from_columns(self.graph.num_vertices, edge_u, edge_v)
        # Edge-disjoint union: the merged outdegrees are the per-vertex sums
        # of the (already endpoint-checked) part tallies.
        outdegree = kernels.sum_counts(self._outdegree, other._outdegree)
        return Orientation._from_heads(merged_graph, heads, outdegree=outdegree)


def _rebuild_orientation(graph: Graph, heads: array) -> "Orientation":
    """Unpickle helper for :class:`Orientation` (module-level for pickle)."""
    return Orientation._from_heads(graph, heads)


def _tally_outdegrees(graph: Graph, heads: array) -> tuple[int, ...]:
    """Outdegree per vertex + endpoint check (kernel-dispatched, one pass)."""
    edge_u, edge_v = graph.edge_endpoints
    return kernels.tally_outdegrees(graph.num_vertices, edge_u, edge_v, heads)


def validate_outdegree_bound(orientation: Orientation, bound: int) -> None:
    """Raise :class:`InvalidOrientationError` unless every outdegree ≤ ``bound``."""
    worst = orientation.max_outdegree()
    if worst > bound:
        offenders = [
            v for v in orientation.graph.vertices if orientation.outdegree(v) > bound
        ]
        raise InvalidOrientationError(
            f"max outdegree {worst} exceeds bound {bound} "
            f"({len(offenders)} offending vertices, e.g. {offenders[:5]})"
        )
