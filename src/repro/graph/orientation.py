"""Edge orientations and their validation.

An :class:`Orientation` assigns a direction to every edge of a graph.  The
paper's Theorem 1.1 computes orientations with maximum outdegree
``O(λ · log log n)``; the baselines compute ``(2+ε)λ`` orientations.  Both are
represented by this class, so the validators and benchmark reporting treat
them uniformly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import InvalidOrientationError
from repro.graph.graph import Edge, Graph, normalize_edge


@dataclass(frozen=True)
class Orientation:
    """A complete orientation of the edges of ``graph``.

    ``direction`` maps each canonical edge ``(u, v)`` with ``u < v`` to the
    chosen head: the edge is oriented ``u -> head`` where ``head`` is either
    ``u`` or ``v`` — i.e. ``direction[(u, v)] == v`` means the edge points from
    ``u`` to ``v``.
    """

    graph: Graph
    direction: Mapping[Edge, int]
    _outdegree: tuple[int, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        expected = set(self.graph.edges)
        provided = set(self.direction.keys())
        if provided != expected:
            missing = expected - provided
            extra = provided - expected
            raise InvalidOrientationError(
                f"orientation does not cover the edge set exactly "
                f"(missing {len(missing)}, extra {len(extra)})"
            )
        outdegree = [0] * self.graph.num_vertices
        for (u, v), head in self.direction.items():
            if head not in (u, v):
                raise InvalidOrientationError(
                    f"edge {(u, v)} oriented toward {head}, which is not an endpoint"
                )
            tail = u if head == v else v
            outdegree[tail] += 1
        object.__setattr__(self, "_outdegree", tuple(outdegree))

    # ------------------------------------------------------------------ #

    def head(self, u: int, v: int) -> int:
        """The head (target) of the edge ``{u, v}``."""
        return self.direction[normalize_edge(u, v)]

    def tail(self, u: int, v: int) -> int:
        """The tail (source) of the edge ``{u, v}``."""
        e = normalize_edge(u, v)
        head = self.direction[e]
        return e[0] if head == e[1] else e[1]

    def is_oriented_from(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is oriented from ``u`` to ``v``."""
        return self.head(u, v) == v

    def out_neighbors(self, v: int) -> list[int]:
        """Vertices ``w`` such that the edge ``{v, w}`` is oriented ``v -> w``."""
        return [w for w in self.graph.neighbors(v) if self.is_oriented_from(v, w)]

    def in_neighbors(self, v: int) -> list[int]:
        """Vertices ``w`` such that the edge ``{w, v}`` is oriented ``w -> v``."""
        return [w for w in self.graph.neighbors(v) if self.is_oriented_from(w, v)]

    def outdegree(self, v: int) -> int:
        """Outdegree of vertex ``v``."""
        return self._outdegree[v]

    @property
    def outdegrees(self) -> tuple[int, ...]:
        """Outdegree of every vertex, indexed by vertex id."""
        return self._outdegree

    def max_outdegree(self) -> int:
        """Maximum outdegree over all vertices (the paper's quality measure)."""
        return max(self._outdegree, default=0)

    def is_acyclic(self) -> bool:
        """Whether the oriented graph is a DAG.

        Orientations produced from a layering (orient toward the strictly
        higher layer, ties broken by id) are always acyclic; orientations from
        arbitrary tie-breaking may contain cycles inside a layer.  The
        property is used by the scheduling example and by tests.
        """
        n = self.graph.num_vertices
        indegree = [0] * n
        for (u, v), head in self.direction.items():
            indegree[head] += 1
        queue = [v for v in range(n) if indegree[v] == 0]
        seen = 0
        while queue:
            v = queue.pop()
            seen += 1
            for w in self.out_neighbors(v):
                indegree[w] -= 1
                if indegree[w] == 0:
                    queue.append(w)
        return seen == n

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_head_map(cls, graph: Graph, head_of: Mapping[Edge, int]) -> "Orientation":
        """Build from a mapping of canonical edge -> head vertex."""
        return cls(graph, dict(head_of))

    @classmethod
    def from_vertex_order(cls, graph: Graph, rank: Mapping[int, int] | Iterable[int]) -> "Orientation":
        """Orient every edge from the lower-ranked endpoint to the higher-ranked one.

        ``rank`` is either a mapping vertex -> rank or a sequence listing the
        rank of each vertex.  Ties are broken toward the larger vertex id,
        matching the paper's "break ties by identifier" convention.
        """
        if not isinstance(rank, Mapping):
            rank = {v: r for v, r in enumerate(rank)}
        direction: dict[Edge, int] = {}
        for (u, v) in graph.edges:
            ru, rv = rank[u], rank[v]
            if ru < rv or (ru == rv and u < v):
                direction[(u, v)] = v
            else:
                direction[(u, v)] = u
        return cls(graph, direction)

    @classmethod
    def from_layering(cls, graph: Graph, layer_of: Mapping[int, int]) -> "Orientation":
        """Orient each edge toward the endpoint in the strictly higher layer.

        Edges inside a layer are oriented toward the larger id.  This is
        exactly how Theorem 1.1 turns an H-partition into an orientation.
        """
        return cls.from_vertex_order(graph, {v: layer_of[v] for v in graph.vertices})

    def merge_with(self, other: "Orientation") -> "Orientation":
        """Union of two orientations of edge-disjoint graphs on the same vertex set.

        Used by Theorem 1.1 when λ ≫ log n: each random edge part is oriented
        separately and the orientations are combined.
        """
        if other.graph.num_vertices != self.graph.num_vertices:
            raise InvalidOrientationError("cannot merge orientations over different vertex sets")
        overlap = set(self.direction) & set(other.direction)
        if overlap:
            raise InvalidOrientationError(
                f"cannot merge orientations sharing {len(overlap)} edges"
            )
        merged_graph = self.graph.union_edges(other.graph)
        direction = dict(self.direction)
        direction.update(other.direction)
        return Orientation(merged_graph, direction)


def validate_outdegree_bound(orientation: Orientation, bound: int) -> None:
    """Raise :class:`InvalidOrientationError` unless every outdegree ≤ ``bound``."""
    worst = orientation.max_outdegree()
    if worst > bound:
        offenders = [
            v for v in orientation.graph.vertices if orientation.outdegree(v) > bound
        ]
        raise InvalidOrientationError(
            f"max outdegree {worst} exceeds bound {bound} "
            f"({len(offenders)} offending vertices, e.g. {offenders[:5]})"
        )
