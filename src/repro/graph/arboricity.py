"""Density, degeneracy and arboricity estimation.

The paper parameterises everything by the arboricity ``λ(G)`` (equivalently,
up to ``+1``, by the maximum subgraph density ``α(G) = max_S |E(S)| / |S|``).
The algorithms themselves only need an *upper bound* ``k ≥ c·λ`` (Theorem 1.1
assumes ``k ∈ [100λ, 200λ]`` obtained by running the algorithm for every
``(1+ε)^i`` guess in parallel); our evaluation additionally wants the exact
density so we can report how close the achieved outdegree is to the lower
bound.

This module provides three estimators:

* :func:`degeneracy` / :func:`degeneracy_ordering` — the classic linear-time
  peeling; the degeneracy ``d(G)`` satisfies ``λ ≤ d ≤ 2λ - 1``, so it doubles
  as a constant-factor arboricity approximation and as the reference "LOCAL
  peeling" order used in analysis.
* :func:`densest_subgraph_density` — exact maximum subgraph density via
  Goldberg's max-flow reduction (binary search over the guess, one min-cut per
  step) on our own Dinic implementation (:mod:`repro.graph.maxflow`).
* :func:`arboricity_bounds` — combines the two into a ``(lower, upper)``
  interval for ``λ`` using ``⌈α⌉ ≤ λ ≤ d``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.graph.graph import Graph
from repro.graph.maxflow import FlowNetwork


def degeneracy_ordering(graph: Graph) -> tuple[list[int], list[int], int]:
    """Compute a degeneracy ordering by repeatedly removing a minimum-degree vertex.

    Returns
    -------
    order:
        Vertices in removal order (first removed first).
    core_numbers:
        ``core_numbers[v]`` is the core number of ``v`` (the largest ``c`` such
        that ``v`` belongs to a subgraph of minimum degree ``c``).
    degeneracy:
        The degeneracy of the graph, ``max(core_numbers)`` (0 for edgeless graphs).

    The implementation is the standard bucket-queue algorithm and runs in
    ``O(n + m)`` time.
    """
    n = graph.num_vertices
    if n == 0:
        return [], [], 0

    degree = list(graph.degrees)
    max_deg = max(degree, default=0)
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)

    removed = [False] * n
    core_numbers = [0] * n
    order: list[int] = []
    current_core = 0
    pointer = 0  # smallest possibly non-empty bucket

    for _ in range(n):
        while pointer <= max_deg and not buckets[pointer]:
            pointer += 1
        # Buckets can contain stale entries (vertices whose degree dropped);
        # skip them.
        while True:
            v = buckets[pointer].pop()
            if not removed[v] and degree[v] == pointer:
                break
            while pointer <= max_deg and not buckets[pointer]:
                pointer += 1
        current_core = max(current_core, pointer)
        core_numbers[v] = current_core
        removed[v] = True
        order.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                buckets[degree[w]].append(w)
                if degree[w] < pointer:
                    pointer = degree[w]
    return order, core_numbers, current_core


def degeneracy(graph: Graph) -> int:
    """The degeneracy ``d(G)``; satisfies ``λ(G) ≤ d(G) ≤ 2λ(G) - 1``."""
    _, _, d = degeneracy_ordering(graph)
    return d


def greedy_peeling_layers(graph: Graph, threshold: int) -> list[list[int]]:
    """Iteratively remove all vertices of (remaining) degree ≤ ``threshold``.

    This is exactly the Barenboim–Elkin LOCAL peeling process referenced
    throughout the paper (the layering ``H_1 ⊔ H_2 ⊔ ...`` of the technical
    overview and the auxiliary assignment ``ℓ_G`` of Lemma 3.13).  Returns the
    list of layers, where layer ``i`` (0-based) contains the vertices removed
    in iteration ``i+1``.  Vertices that survive every iteration (possible
    only if ``threshold < 2·λ``, since a graph of arboricity λ always has a
    vertex of degree ≤ 2λ - 1) are appended as a final layer.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    n = graph.num_vertices
    layer_arr, rounds_used = graph.peel_layers(threshold)
    layers: list[list[int]] = [[] for _ in range(rounds_used)]
    stuck: list[int] = []
    for v in range(n):
        layer = layer_arr[v]
        if layer:
            layers[layer - 1].append(v)
        else:
            # Cannot make progress with this threshold; dump the rest.
            stuck.append(v)
    if stuck:
        layers.append(stuck)
    return layers


def densest_subgraph_density(graph: Graph, tolerance: float = 1e-7) -> float:
    """Exact maximum subgraph density ``α(G) = max_{S ≠ ∅} |E(S)| / |S|``.

    Uses Goldberg's reduction: a guess ``g`` is feasible iff the min cut of the
    associated network is less than ``m`` — equivalently, iff some non-empty
    ``S`` has ``|E(S)| - g·|S| > 0``.  Binary searching ``g`` over the interval
    ``[0, m]`` with ``O(log(n²))`` iterations yields the exact value because
    the density is a ratio of integers with denominator at most ``n``
    (distinct densities differ by at least ``1/n²``).
    """
    n = graph.num_vertices
    m = graph.num_edges
    if n == 0 or m == 0:
        return 0.0

    low = m / n  # the whole graph is a candidate
    high = float(m)
    # Stop when the interval is smaller than the minimum gap between distinct
    # densities, 1/(n*(n-1)) — then one more feasibility check pins the answer.
    gap = 1.0 / (n * n)

    def feasible(guess: float) -> Optional[set[int]]:
        """Return a subgraph with density > guess, or None."""
        network = _goldberg_network(graph, guess)
        source = n + m
        sink = n + m + 1
        flow = network.max_flow(source, sink)
        if flow >= m - 1e-9:
            return None
        cut = network.min_cut_source_side(source)
        subgraph = {v for v in range(n) if v in cut}
        if not subgraph:
            return None
        return subgraph

    best_density = low
    while high - low > max(gap, tolerance):
        mid = (low + high) / 2.0
        witness = feasible(mid)
        if witness is None:
            high = mid
        else:
            edges_inside = _edges_inside(graph, witness)
            best_density = max(best_density, edges_inside / len(witness))
            low = mid
    return best_density


def densest_subgraph(graph: Graph, tolerance: float = 1e-7) -> tuple[set[int], float]:
    """Return ``(S, density)`` for a densest subgraph ``S`` (exact up to tolerance)."""
    n = graph.num_vertices
    m = graph.num_edges
    if n == 0 or m == 0:
        return set(), 0.0
    density = densest_subgraph_density(graph, tolerance)
    # One final cut just below the optimum recovers a witness set.
    network = _goldberg_network(graph, density - max(tolerance, 1.0 / (2 * n * n)))
    source = n + m
    sink = n + m + 1
    network.max_flow(source, sink)
    cut = network.min_cut_source_side(source)
    witness = {v for v in range(n) if v in cut}
    if not witness:
        witness = set(range(n))
    return witness, _edges_inside(graph, witness) / len(witness)


def _goldberg_network(graph: Graph, guess: float) -> FlowNetwork:
    """Build Goldberg's flow network for density guess ``g``.

    Node layout: ``0..n-1`` are vertex nodes, ``n..n+m-1`` are edge nodes,
    ``n+m`` is the source and ``n+m+1`` the sink.  Source → edge node with
    capacity 1, edge node → both endpoints with capacity ∞, vertex → sink with
    capacity ``g``.  The min cut is ``< m`` iff some subgraph has density > g.
    """
    n = graph.num_vertices
    m = graph.num_edges
    network = FlowNetwork(n + m + 2)
    source = n + m
    sink = n + m + 1
    infinity = float(m + 1)
    for index, (u, v) in enumerate(graph.edges):
        edge_node = n + index
        network.add_edge(source, edge_node, 1.0)
        network.add_edge(edge_node, u, infinity)
        network.add_edge(edge_node, v, infinity)
    for v in range(n):
        network.add_edge(v, sink, max(guess, 0.0))
    return network


def _edges_inside(graph: Graph, subset: set[int]) -> int:
    return sum(1 for (u, v) in graph.edges if u in subset and v in subset)


@dataclass(frozen=True)
class ArboricityBounds:
    """An interval ``[lower, upper]`` certified to contain ``λ(G)``."""

    lower: int
    upper: int
    density: float
    degeneracy: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(
                f"inconsistent arboricity bounds: lower={self.lower} > upper={self.upper}"
            )


def arboricity_bounds(graph: Graph, exact_density: bool = True) -> ArboricityBounds:
    """Certified lower/upper bounds for the arboricity ``λ(G)``.

    * lower bound: ``⌈α(G)⌉`` where ``α`` is the (exact or peeling-estimated)
      maximum subgraph density, because any forest decomposition needs at
      least ``|E(S)|/(|S|-1) ≥ |E(S)|/|S|`` forests for every ``S``.
    * upper bound: the degeneracy ``d(G)``, because the forests obtained by
      orienting along a degeneracy order have outdegree ≤ d and an outdegree-d
      orientation yields a partition into at most d pseudo-forests, hence at
      most ``d`` forests after splitting — in fact ``λ ≤ d`` directly from
      Nash-Williams.
    """
    if graph.num_edges == 0:
        return ArboricityBounds(lower=0, upper=0, density=0.0, degeneracy=0)
    d = degeneracy(graph)
    if exact_density:
        density = densest_subgraph_density(graph)
    else:
        density = graph.num_edges / max(graph.num_vertices, 1)
    lower = max(1, math.ceil(density - 1e-9))
    upper = max(lower, d)
    return ArboricityBounds(lower=lower, upper=upper, density=density, degeneracy=d)


def arboricity_upper_bound(graph: Graph) -> int:
    """A cheap upper bound for λ: the degeneracy (no max-flow involved)."""
    if graph.num_edges == 0:
        return 0
    return max(1, degeneracy(graph))
