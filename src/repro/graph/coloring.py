"""Vertex colorings and their validation.

Theorem 1.2 produces a proper coloring with ``O(λ log log n)`` colors; the
baselines produce Δ+1 or degeneracy+1 colorings.  All are represented by the
:class:`Coloring` value object defined here so that the validators and the
benchmark reporting treat them uniformly.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping

from repro.errors import InvalidColoringError
from repro.graph.graph import Graph


class Coloring:
    """A complete assignment of colors (non-negative integers) to vertices."""

    __slots__ = ("_graph", "_color_of")

    def __init__(self, graph: Graph, color_of: Mapping[int, int]) -> None:
        missing = [v for v in graph.vertices if v not in color_of]
        if missing:
            raise InvalidColoringError(
                f"{len(missing)} vertices have no color (e.g. {missing[:5]})"
            )
        bad = [v for v in graph.vertices if color_of[v] < 0]
        if bad:
            raise InvalidColoringError(f"colors must be non-negative (offenders: {bad[:5]})")
        self._graph = graph
        self._color_of = {v: int(color_of[v]) for v in graph.vertices}

    @classmethod
    def from_column(cls, graph: Graph, column) -> "Coloring":
        """Fast path from a flat per-vertex color column (vertex id = index).

        ``column`` is any int sequence of length ``num_vertices`` — typically
        the ``array('l')`` assembled by
        :func:`repro.kernels.assemble_color_columns` — where a negative entry
        marks a vertex with no color (the kernel's ``-1`` sentinel).  The
        validation outcome (including error messages) and the resulting
        vertex -> color mapping — built in vertex order, exactly like
        ``__init__`` — are byte-identical to the dict constructor.
        """
        from repro import kernels  # deferred: kernels must stay graph-free

        if len(column) != graph.num_vertices:
            raise InvalidColoringError(
                f"color column has {len(column)} entries for "
                f"{graph.num_vertices} vertices"
            )
        # One vectorized pass in the happy case; on failure fall back to the
        # reference scans so the offender lists (and messages) match exactly.
        if kernels.min_value(column) < 0:
            missing = [v for v in graph.vertices if column[v] < 0]
            raise InvalidColoringError(
                f"{len(missing)} vertices have no color (e.g. {missing[:5]})"
            )
        self = object.__new__(cls)
        self._graph = graph
        self._color_of = {v: int(column[v]) for v in graph.vertices}
        return self

    @property
    def graph(self) -> Graph:
        """The colored graph."""
        return self._graph

    def color(self, v: int) -> int:
        """Color of vertex ``v``."""
        return self._color_of[v]

    def as_dict(self) -> dict[int, int]:
        """A copy of the vertex -> color mapping."""
        return dict(self._color_of)

    def num_colors(self) -> int:
        """Number of *distinct* colors used."""
        return len(set(self._color_of.values()))

    def max_color(self) -> int:
        """Largest color index used (palette size proxy when colors are 0-based)."""
        return max(self._color_of.values(), default=0)

    def color_class_sizes(self) -> dict[int, int]:
        """Mapping color -> number of vertices with that color."""
        return dict(Counter(self._color_of.values()))

    def conflicting_edges(self) -> list[tuple[int, int]]:
        """Edges whose endpoints share a color (empty iff the coloring is proper)."""
        return [
            (u, v)
            for (u, v) in self._graph.edges
            if self._color_of[u] == self._color_of[v]
        ]

    def is_proper(self) -> bool:
        """Whether no edge is monochromatic."""
        return not self.conflicting_edges()

    def validate_proper(self) -> None:
        """Raise :class:`InvalidColoringError` unless the coloring is proper."""
        conflicts = self.conflicting_edges()
        if conflicts:
            raise InvalidColoringError(
                f"{len(conflicts)} monochromatic edges (e.g. {conflicts[:5]})"
            )

    def validate_palette(self, palette_size: int) -> None:
        """Raise unless at most ``palette_size`` distinct colors are used."""
        used = self.num_colors()
        if used > palette_size:
            raise InvalidColoringError(
                f"{used} colors used but palette only allows {palette_size}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coloring):
            return NotImplemented
        return self._graph == other._graph and self._color_of == other._color_of

    def __repr__(self) -> str:
        return f"Coloring(n={self._graph.num_vertices}, colors={self.num_colors()})"
