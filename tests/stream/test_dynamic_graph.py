"""Tests for the DynamicGraph overlay, including the snapshot property test."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph
from repro.stream.dynamic_graph import DynamicGraph


class TestBasics:
    def test_empty(self):
        dg = DynamicGraph.empty(5)
        assert dg.num_vertices == 5
        assert dg.num_edges == 0
        assert dg.journal_size == 0
        assert not dg.has_edge(0, 1)

    def test_add_and_remove(self):
        dg = DynamicGraph.empty(4)
        dg.add_edge(2, 0)
        assert dg.has_edge(0, 2)
        assert dg.has_edge(2, 0)
        assert dg.num_edges == 1
        assert dg.degree(0) == 1
        assert dg.degree(2) == 1
        assert dg.neighbors(0) == (2,)
        dg.remove_edge(0, 2)
        assert not dg.has_edge(0, 2)
        assert dg.num_edges == 0
        assert dg.degree(0) == 0

    def test_duplicate_add_rejected(self):
        dg = DynamicGraph(Graph(3, [(0, 1)]))
        with pytest.raises(GraphError):
            dg.add_edge(0, 1)
        dg.add_edge(1, 2)
        with pytest.raises(GraphError):
            dg.add_edge(2, 1)

    def test_remove_missing_rejected(self):
        dg = DynamicGraph(Graph(3, [(0, 1)]))
        with pytest.raises(GraphError):
            dg.remove_edge(1, 2)
        dg.remove_edge(0, 1)
        with pytest.raises(GraphError):
            dg.remove_edge(0, 1)

    def test_self_loop_and_range_rejected(self):
        dg = DynamicGraph.empty(3)
        with pytest.raises(GraphError):
            dg.add_edge(1, 1)
        with pytest.raises(GraphError):
            dg.add_edge(0, 3)
        with pytest.raises(GraphError):
            dg.remove_edge(-1, 0)

    def test_tombstone_and_readd(self):
        base = Graph(3, [(0, 1), (1, 2)])
        dg = DynamicGraph(base)
        dg.remove_edge(0, 1)
        assert not dg.has_edge(0, 1)
        assert dg.journal_size == 1
        dg.add_edge(0, 1)  # resurrect the tombstoned base edge
        assert dg.has_edge(0, 1)
        assert dg.journal_size == 0
        assert dg.snapshot() is base  # no overlay -> base returned as-is

    def test_neighbors_merge_base_and_overlay(self):
        base = Graph(5, [(0, 1), (0, 2), (0, 3)])
        dg = DynamicGraph(base)
        dg.remove_edge(0, 2)
        dg.add_edge(0, 4)
        assert dg.neighbors(0) == (1, 3, 4)
        assert dg.degree(0) == 3

    def test_edges_iterates_sorted_canonical(self):
        base = Graph(6, [(1, 2), (3, 4)])
        dg = DynamicGraph(base)
        dg.add_edge(0, 5)
        dg.add_edge(2, 3)
        dg.remove_edge(3, 4)
        assert list(dg.edges()) == [(0, 5), (1, 2), (2, 3)]


class TestCompaction:
    def test_compaction_triggers_and_resets_journal(self):
        dg = DynamicGraph.empty(100, min_compaction_journal=16)
        rng = random.Random(1)
        for _ in range(200):
            u, v = rng.randrange(100), rng.randrange(100)
            if u != v and not dg.has_edge(u, v):
                dg.add_edge(u, v)
        assert dg.num_compactions > 0
        assert dg.journal_size <= max(16, dg.num_edges // 4) + 1

    def test_compact_preserves_edge_set(self):
        base = union_of_random_forests(64, arboricity=2, seed=3)
        dg = DynamicGraph(base)
        expected = set(base.edges)
        for e in list(expected)[:10]:
            dg.remove_edge(*e)
            expected.discard(e)
        dg.add_edge(0, 63)
        expected.add((0, 63))
        compacted = dg.compact()
        assert set(compacted.edges) == expected
        assert dg.journal_size == 0
        assert dg.base is compacted

    def test_read_path_kernels_work_on_snapshot(self):
        """The compacted snapshot is a full CSR Graph: peeling, induced
        subgraphs and degeneracy all run unchanged."""
        dg = DynamicGraph(union_of_random_forests(128, arboricity=3, seed=5))
        rng = random.Random(7)
        live = set(dg.base.edges)
        for _ in range(300):
            if live and rng.random() < 0.5:
                e = live.pop()
                dg.remove_edge(*e)
            else:
                u, v = rng.randrange(128), rng.randrange(128)
                if u != v and not dg.has_edge(u, v):
                    dg.add_edge(u, v)
                    live.add((min(u, v), max(u, v)))
        snapshot = dg.snapshot()
        layers, rounds = snapshot.peel_layers(threshold=6)
        assert rounds >= 1
        sub = snapshot.induced_subgraph(range(64))
        assert sub.num_vertices == 64
        assert snapshot.num_edges == dg.num_edges


class TestCompactionEdgeCases:
    def test_tombstone_only_journal_compacts_to_survivors(self):
        base = union_of_random_forests(48, arboricity=2, seed=11)
        dg = DynamicGraph(base)
        doomed = list(base.edges)[::3]
        for e in doomed:
            dg.remove_edge(*e)
        survivors = [e for e in base.edges if e not in set(doomed)]
        assert dg.snapshot() == Graph(48, survivors)
        compacted = dg.compact()
        assert compacted == Graph(48, survivors)
        assert dg.journal_size == 0 and dg.journal_length == 0

    def test_tombstone_everything_compacts_to_empty(self):
        base = union_of_random_forests(32, arboricity=1, seed=2)
        dg = DynamicGraph(base)
        for e in list(base.edges):
            dg.remove_edge(*e)
        assert dg.num_edges == 0
        compacted = dg.compact()
        assert compacted.num_edges == 0 and compacted.num_vertices == 32
        assert dg.snapshot() is compacted

    def test_compact_on_empty_graph_is_noop(self):
        dg = DynamicGraph.empty(16)
        base = dg.base
        assert dg.compact() is base
        assert dg.num_compactions == 0
        assert dg.snapshot() is base

    def test_cancelled_overlay_compacts_as_noop(self):
        # Insert + delete of the same edge nets out: the overlay (and with
        # it the op log) is empty again, so compaction must not touch the
        # base or advance any counter.
        dg = DynamicGraph.empty(8)
        dg.add_edge(1, 2)
        dg.remove_edge(1, 2)
        base = dg.base
        assert dg.journal_length == 0
        assert dg.compact() is base
        assert dg.num_compactions == 0

    def test_back_to_back_compactions_do_not_advance_generation(self):
        base = union_of_random_forests(40, arboricity=2, seed=9)
        dg = DynamicGraph(base)
        dg.add_edge(0, 39)
        first = dg.compact()
        version = dg._version
        builds = dg.snapshot_builds
        compactions = dg.num_compactions
        # Zero intervening ops: the second compact is a pure no-op.
        second = dg.compact()
        assert second is first
        assert dg._version == version
        assert dg.snapshot_builds == builds
        assert dg.num_compactions == compactions
        assert dg.snapshot() is first

    def test_compact_promotes_cached_snapshot_without_second_replay(self):
        dg = DynamicGraph(union_of_random_forests(40, arboricity=2, seed=4))
        dg.add_edge(0, 39)
        cached = dg.snapshot()
        replays = dg.journal_replay_ops
        assert dg.compact() is cached  # promoted as-is, no rebuild
        assert dg.journal_replay_ops == replays


class TestTracedCompaction:
    def test_spans_carry_journal_length_and_delta_size(self):
        """ISSUE 9 satellite: ``overlay-read`` / ``compaction`` spans report
        the op-log length (``journal``) and net overlay size (``delta``)."""
        from repro.obs import Tracer

        tracer = Tracer()
        dg = DynamicGraph.empty(32, min_compaction_journal=2**60)
        dg.instrument(tracer)
        dg.add_edge(0, 1)
        dg.add_edge(1, 2)
        dg.add_edge(2, 3)
        dg.remove_edge(1, 2)  # net delta 2, log length 4
        dg.snapshot()
        dg.compact()
        by_name = {record.name: record for record in tracer.records}
        read = by_name["overlay-read"]
        assert read.args["journal"] == 4
        assert read.args["delta"] == 2
        compaction = by_name["compaction"]
        assert compaction.args["journal"] == 4
        assert compaction.args["delta"] == 2
        counters = tracer.metrics.snapshot()["counters"]
        assert counters["stream.graph_compactions"] == 1
        assert counters["stream.snapshot_builds"] == 1
        assert counters["stream.journal_replay_ops"] == 4


class TestSnapshotProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_snapshot_equals_surviving_edge_set_after_1k_interleaved_ops(self, seed):
        """Acceptance property: after ≥1k random interleaved inserts/deletes,
        the compacted snapshot equals the CSR graph built from the surviving
        edge set."""
        n = 96
        rng = random.Random(seed)
        base = union_of_random_forests(n, arboricity=2, seed=seed)
        dg = DynamicGraph(base, min_compaction_journal=32)
        mirror = set(base.edges)
        pool = sorted(mirror)
        for step in range(1200):
            if mirror and rng.random() < 0.48:
                e = pool[rng.randrange(len(pool))]
                if e not in mirror:
                    continue
                mirror.discard(e)
                dg.remove_edge(*e)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                e = (min(u, v), max(u, v))
                if e in mirror:
                    continue
                mirror.add(e)
                pool.append(e)
                dg.add_edge(*e)
            if step % 400 == 199:  # also check mid-stream, not only at the end
                assert dg.snapshot() == Graph(n, sorted(mirror))
        assert dg.num_edges == len(mirror)
        assert dg.compact() == Graph(n, sorted(mirror))
        assert dg.num_compactions > 0
