"""Batch-parallel flip repair: conflict groups, determinism, proactive flips."""

from __future__ import annotations

import random

import pytest

from repro.engine import PROCESS, SERIAL, THREAD, ParallelExecutor
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.orientation import IncrementalOrientation, plan_conflict_groups
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch
from repro.stream.workloads import (
    densifying_core_trace,
    sliding_window_trace,
    uniform_churn_trace,
)


class TestConflictGroupPlanning:
    def test_disjoint_updates_get_singleton_groups(self):
        batch = UpdateBatch.from_ops([("+", 0, 1), ("+", 2, 3), ("+", 4, 5)])
        assert plan_conflict_groups(batch.updates) == [[0], [1], [2]]

    def test_shared_endpoint_merges_groups(self):
        batch = UpdateBatch.from_ops([("+", 0, 1), ("+", 2, 3), ("+", 1, 2)])
        assert plan_conflict_groups(batch.updates) == [[0, 1, 2]]

    def test_groups_are_vertex_disjoint_and_cover_the_batch(self):
        rng = random.Random(0)
        ops = []
        live = set()
        for _ in range(300):
            u, v = rng.randrange(64), rng.randrange(64)
            if u == v:
                continue
            e = (min(u, v), max(u, v))
            if e in live:
                live.discard(e)
                ops.append(("-", *e))
            else:
                live.add(e)
                ops.append(("+", *e))
        batch = UpdateBatch.from_ops(ops)
        groups = plan_conflict_groups(batch.updates)
        seen_updates = [i for group in groups for i in group]
        assert sorted(seen_updates) == list(range(len(batch)))
        touched: list[set[int]] = []
        for group in groups:
            vertices = set()
            for index in group:
                vertices.add(batch.updates[index].u)
                vertices.add(batch.updates[index].v)
            touched.append(vertices)
        for i, a in enumerate(touched):
            for b in touched[i + 1:]:
                assert not (a & b)

    def test_group_order_is_deterministic(self):
        batch = UpdateBatch.from_ops([("+", 5, 6), ("+", 0, 1), ("+", 6, 7)])
        assert plan_conflict_groups(batch.updates) == [[0, 2], [1]]


class TestApplyBatch:
    def test_batch_equals_flat_state(self):
        """Grouped application must land on a legal, cap-respecting state
        covering exactly the live edges."""
        base = union_of_random_forests(96, arboricity=2, seed=5)
        dynamic = DynamicGraph(base)
        orientation = IncrementalOrientation(dynamic)
        batch = UpdateBatch.from_ops(
            [("-", *e) for e in list(base.edges)[:20]]
            + [("+", 90, 91), ("+", 91, 92), ("+", 90, 92)]
        )
        for update in batch.updates:
            if update.is_insert:
                dynamic.add_edge(update.u, update.v)
            else:
                dynamic.remove_edge(update.u, update.v)
        report = orientation.apply_batch(batch.updates)
        assert report.num_updates == len(batch)
        assert report.num_groups >= 2
        assert orientation.oriented_edge_count() == dynamic.num_edges
        assert orientation.max_outdegree() <= orientation.outdegree_cap

    def test_empty_batch_is_a_noop(self):
        orientation = IncrementalOrientation(DynamicGraph.empty(4))
        report = orientation.apply_batch(())
        assert report.num_updates == 0
        assert report.num_groups == 0

    def test_drifted_state_raises_instead_of_silently_skipping(self):
        """Without a mid-batch rebuild, a delete of an unoriented edge (or an
        insert of an oriented one) means the orientation drifted from the
        live edge set — the batch path must raise like delete() does."""
        from repro.errors import GraphError

        dynamic = DynamicGraph.empty(6)
        orientation = IncrementalOrientation(dynamic)
        dynamic.add_edge(0, 1)
        orientation.insert(0, 1)
        orientation._out[0].discard(1)  # induce drift: live edge unoriented
        dynamic.remove_edge(0, 1)
        with pytest.raises(GraphError, match="not oriented"):
            orientation.apply_batch(UpdateBatch.from_ops([("-", 0, 1)]).updates)

        dynamic2 = DynamicGraph.empty(6)
        orientation2 = IncrementalOrientation(dynamic2)
        orientation2._out[0].add(1)  # induce drift: phantom orientation
        dynamic2.add_edge(0, 1)
        with pytest.raises(GraphError, match="drifted"):
            orientation2.apply_batch(UpdateBatch.from_ops([("+", 0, 1)]).updates)


class TestServiceDeterminism:
    """ISSUE 3 satellite: same seed ⇒ byte-identical structures for any
    worker count, on every trace family (including rebuild-heavy ones)."""

    @staticmethod
    def _fingerprint(service: StreamingService):
        return (
            tuple(tuple(sorted(out)) for out in service.orientation._out),
            tuple(service.coloring._colors),
            service.orientation.flips,
            service.orientation.opportunistic_flips,
            service.orientation.rebuilds,
            service.cluster.stats.num_rounds,
        )

    @pytest.mark.parametrize(
        "make_trace",
        [
            lambda: uniform_churn_trace(192, num_batches=5, batch_size=120, seed=2),
            lambda: sliding_window_trace(128, window=256, num_batches=5,
                                         batch_size=80, seed=3),
            lambda: densifying_core_trace(96, core_size=32, num_batches=6,
                                          batch_size=100, seed=4),
        ],
        ids=["churn", "window", "densify"],
    )
    def test_workers_1_2_4_identical(self, make_trace, kernel_backend):
        # ``kernel_backend`` (ISSUE 8) re-runs the sweep per kernel backend;
        # the fingerprints must agree across workers *and* kernels.
        fingerprints = []
        for workers in (1, 2, 4):
            trace = make_trace()
            service = StreamingService(trace.initial, seed=7, workers=workers)
            service.apply_all(trace.batches)
            service.verify()
            fingerprints.append(self._fingerprint(service))
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]

    def test_explicit_thread_executor_matches_serial(self):
        results = []
        for executor in (
            ParallelExecutor(workers=1, backend=SERIAL),
            ParallelExecutor(workers=4, backend=THREAD),
        ):
            trace = densifying_core_trace(80, core_size=24, num_batches=5,
                                          batch_size=90, seed=6)
            service = StreamingService(trace.initial, seed=1, executor=executor)
            service.apply_all(trace.batches)
            service.verify()
            results.append(self._fingerprint(service))
        assert results[0] == results[1]

    @pytest.mark.parametrize(
        "make_trace",
        [
            lambda: uniform_churn_trace(192, num_batches=4, batch_size=150, seed=2),
            lambda: densifying_core_trace(96, core_size=32, num_batches=5,
                                          batch_size=100, seed=4),
        ],
        ids=["churn", "densify"],
    )
    def test_process_backend_matches_serial(self, make_trace):
        """ISSUE 4: cap-safe groups run under the process backend via
        out-table sharding with the exact same determinism contract."""

        class RecordingExecutor(ParallelExecutor):
            """Counts maps of the shared-memory sharded task so the test
            proves the process branch ran (``parallel_groups`` alone would
            stay positive even if the branch degraded to the serial loop)."""

            def __init__(self):
                super().__init__(workers=4, backend=PROCESS)
                self.sharded_maps = 0

            def map(self, fn, tasks, total_work=None, backend=None):
                tasks = [tuple(args) for args in tasks]
                if fn.__name__ == "_apply_group_shm":
                    self.sharded_maps += 1
                return super().map(fn, tasks, total_work=total_work, backend=backend)

        trace = make_trace()
        with StreamingService(trace.initial, seed=7) as serial_service:
            serial_service.apply_all(trace.batches)
            serial_service.verify()
            expected = self._fingerprint(serial_service)

        trace = make_trace()
        recording = RecordingExecutor()
        with StreamingService(trace.initial, seed=7, executor=recording) as service:
            service.apply_all(trace.batches)
            service.verify()
            assert self._fingerprint(service) == expected
            assert recording.sharded_maps > 0  # the sharded path actually ran

    def test_sharded_group_apply_rejects_drift(self):
        """The sharded twin raises on the same drift the in-process path
        does, instead of returning a corrupt shard."""
        from repro.errors import GraphError
        from repro.stream.orientation import _apply_group_sharded

        updates = UpdateBatch.from_ops([("+", 0, 1)]).updates
        with pytest.raises(GraphError, match="drifted"):
            _apply_group_sharded({0: (1,), 1: ()}, list(updates), cap=4)
        deletes = UpdateBatch.from_ops([("-", 0, 1)]).updates
        with pytest.raises(GraphError, match="not oriented"):
            _apply_group_sharded({0: (), 1: ()}, list(deletes), cap=4)
        with pytest.raises(GraphError, match="precheck is broken"):
            _apply_group_sharded({0: (2, 3), 1: (4, 5)}, list(updates), cap=2)

    def test_parallel_groups_are_reported(self):
        trace = uniform_churn_trace(256, num_batches=3, batch_size=150, seed=8)
        service = StreamingService(trace.initial, seed=8, workers=2)
        summary = service.apply_all(trace.batches)
        assert all(r.conflict_groups >= r.parallel_groups for r in summary.reports)
        assert sum(r.parallel_groups for r in summary.reports) > 0


class TestProactiveFlips:
    def test_proactive_flip_drains_an_at_cap_vertex(self):
        """Direct scenario: w sits at the cap with an out-edge into t; a
        deletion frees a slot at t; the maintainer must flip w->t to t->w."""
        n = 6
        dynamic = DynamicGraph.empty(n)
        orientation = IncrementalOrientation(dynamic, lambda_bound=2, flip_slack=2)
        cap = orientation.outdegree_cap
        out = orientation._out
        # Hand-build the state (legal: edge-set matches, caps respected).
        # w = 0 at cap: 0 -> 1, 0 -> 2, 0 -> 3, 0 -> 4 (cap = 4)
        for w in range(1, cap + 1):
            dynamic.add_edge(0, w)
            out[0].add(w)
        # t = 1 owns one extra edge 1 -> 5.
        dynamic.add_edge(1, 5)
        out[1].add(5)
        assert orientation.outdegree(0) == cap
        # Deleting {1, 5} frees a slot at 1; 0 is an at-cap in-neighbor of 1.
        dynamic.remove_edge(1, 5)
        orientation.delete(1, 5)
        assert orientation.opportunistic_flips == 1
        assert orientation.outdegree(0) == cap - 1
        assert orientation.head(0, 1) == 0  # flipped toward the freed slot
        assert orientation.max_outdegree() <= cap

    def test_disabled_proactive_flips_change_nothing_on_delete(self):
        n = 6
        dynamic = DynamicGraph.empty(n)
        orientation = IncrementalOrientation(
            dynamic, lambda_bound=2, flip_slack=2, proactive_flips=False
        )
        cap = orientation.outdegree_cap
        out = orientation._out
        for w in range(1, cap + 1):
            dynamic.add_edge(0, w)
            out[0].add(w)
        dynamic.add_edge(1, 5)
        out[1].add(5)
        dynamic.remove_edge(1, 5)
        orientation.delete(1, 5)
        assert orientation.opportunistic_flips == 0
        assert orientation.outdegree(0) == cap

    @pytest.mark.parametrize("seed", [1, 4])
    def test_churn_property_invariants_hold_with_proactive_flips(self, seed):
        """ISSUE 3 satellite: under random churn with deletions, proactive
        flips fire, the cap invariant holds at every checkpoint, and the
        oriented set tracks the live set exactly."""
        n = 64
        rng = random.Random(seed)
        base = union_of_random_forests(n, arboricity=3, seed=seed)
        dynamic = DynamicGraph(base)
        orientation = IncrementalOrientation(dynamic, lambda_bound=2, flip_slack=2,
                                             quality_interval=10**9)
        mirror = set(base.edges)
        for step in range(900):
            if mirror and rng.random() < 0.55:
                e = sorted(mirror)[rng.randrange(len(mirror))]
                mirror.discard(e)
                dynamic.remove_edge(*e)
                orientation.delete(*e)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                e = (min(u, v), max(u, v))
                if e in mirror:
                    continue
                mirror.add(e)
                dynamic.add_edge(*e)
                orientation.insert(*e)
            if step % 90 == 89:
                assert orientation.max_outdegree() <= orientation.outdegree_cap
                assert orientation.oriented_edge_count() == len(mirror)
        assert orientation.opportunistic_flips > 0
        assert orientation.opportunistic_flips <= orientation.flips
