"""Golden-ledger regression pins for the scheduler (ISSUE 5 satellite).

One small deterministic scenario per policy, with the exact shared-ledger
:class:`~repro.mpc.metrics.RoundStats` snapshot — round count, labelled
primitives, memory peaks — and the tick-by-tick schedule pinned.  Any silent
change to the charging model (delivery rounds, repair labels, fold
arithmetic, admission order) fails these loudly; regenerate the constants
only for an *intentional* model change, and say so in the commit.

The fleet: 3 tenants (1 bursty, 2 steady) on 32 vertices, 2 batches of 12
per tenant, seed 6.  Construction charges 2 ``peel:low-degree`` rounds per
tenant; each served batch charges one ``stream:batch`` delivery round and
one ``stream:recolor`` repair round (the traces are flip-free at this size).
"""

from __future__ import annotations

import pytest

from repro.stream.engine import StreamEngine
from repro.stream.scheduler import make_planner
from repro.stream.workloads import skewed_tenant_traces

GOLDEN = {
    "serve-all": {
        "options": {},
        "round_budget": None,
        "rounds": 10,
        "labels": {"peel:low-degree": 6, "stream:batch": 2, "stream:recolor": 2},
        "peak_machine": 4,
        "peak_global": 648,
        "ticks": [
            (2, ("bursty-t0", "steady-t1", "steady-t2"), ()),
            (2, ("bursty-t0", "steady-t1", "steady-t2"), ()),
        ],
    },
    "top-k-backlog": {
        "options": {"k": 2},
        "round_budget": 10,
        "rounds": 14,
        "labels": {"peel:low-degree": 6, "stream:batch": 4, "stream:recolor": 4},
        "peak_machine": 4,
        "peak_global": 648,
        "ticks": [
            # Budget 10 affords the bursty head batch (estimate 6) but not a
            # steady one (5) on top; later ticks pair the cheap batches.
            (2, ("bursty-t0",), ("steady-t1", "steady-t2")),
            (2, ("steady-t1", "steady-t2"), ("bursty-t0",)),
            (2, ("bursty-t0", "steady-t1"), ("steady-t2",)),
            (2, ("steady-t2",), ()),
        ],
    },
    "deficit-round-robin": {
        "options": {"quantum": 3},
        "round_budget": 10,
        "rounds": 14,
        "labels": {"peel:low-degree": 6, "stream:batch": 4, "stream:recolor": 4},
        "peak_machine": 4,
        "peak_global": 648,
        "ticks": [
            # Warm-up: one quantum of credit covers no estimate yet — the
            # tick serves nobody and folds an empty superstep (0 rounds).
            (0, (), ("bursty-t0", "steady-t1", "steady-t2")),
            (2, ("bursty-t0",), ("steady-t1", "steady-t2")),
            (2, ("steady-t1", "steady-t2"), ("bursty-t0",)),
            (2, ("bursty-t0", "steady-t1"), ("steady-t2",)),
            (2, ("steady-t2",), ()),
        ],
    },
}


def _fleet():
    return skewed_tenant_traces(
        num_tenants=3,
        num_vertices=32,
        num_bursty=1,
        num_batches=2,
        batch_size=12,
        burst_factor=2,
        burst_period=2,
        seed=2,
    )


@pytest.mark.parametrize("policy", sorted(GOLDEN))
def test_golden_ledger_snapshot(policy):
    golden = GOLDEN[policy]
    with StreamEngine(
        seed=6,
        planner=make_planner(policy, **golden["options"]),
        round_budget=golden["round_budget"],
    ) as engine:
        for trace in _fleet():
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        engine.run_until_drained(max_ticks=100)
        engine.verify()
        stats = engine.cluster.stats
        assert stats.num_rounds == golden["rounds"]
        assert dict(stats.rounds_by_label) == golden["labels"]
        assert stats.peak_machine_memory_words == golden["peak_machine"]
        assert stats.peak_global_memory_words == golden["peak_global"]
        assert [
            (tick.rounds, tick.planned, tick.deferred) for tick in engine.ticks
        ] == golden["ticks"]
