"""Tests for IncrementalOrientation: invariants, flips, fallback, O(λ) bound."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import GraphError
from repro.graph.arboricity import arboricity_bounds
from repro.graph.generators import complete_graph, union_of_random_forests
from repro.graph.graph import Graph
from repro.stream.dynamic_graph import DynamicGraph
from repro.stream.orientation import IncrementalOrientation


def make_pair(base: Graph, **kwargs):
    dynamic = DynamicGraph(base)
    return dynamic, IncrementalOrientation(dynamic, **kwargs)


class TestBasics:
    def test_initial_orientation_covers_base(self):
        base = union_of_random_forests(64, arboricity=2, seed=1)
        _dynamic, orientation = make_pair(base)
        assert orientation.oriented_edge_count() == base.num_edges
        for u, v in base.edges:
            assert orientation.head(u, v) in (u, v)
        assert orientation.max_outdegree() <= orientation.outdegree_cap

    def test_insert_orients_and_delete_unorients(self):
        dynamic, orientation = make_pair(Graph.empty(4))
        dynamic.add_edge(0, 1)
        orientation.insert(0, 1)
        assert orientation.head(0, 1) in (0, 1)
        assert orientation.oriented_edge_count() == 1
        dynamic.remove_edge(0, 1)
        orientation.delete(0, 1)
        assert orientation.oriented_edge_count() == 0
        with pytest.raises(GraphError):
            orientation.head(0, 1)

    def test_delete_unoriented_edge_raises(self):
        _dynamic, orientation = make_pair(Graph.empty(3))
        with pytest.raises(GraphError):
            orientation.delete(0, 1)

    def test_flip_slack_must_allow_paths(self):
        with pytest.raises(GraphError):
            IncrementalOrientation(DynamicGraph.empty(2), flip_slack=1)

    def test_to_orientation_round_trip(self):
        base = union_of_random_forests(48, arboricity=2, seed=2)
        dynamic, orientation = make_pair(base)
        frozen = orientation.to_orientation()
        assert frozen.graph.num_edges == dynamic.num_edges
        assert frozen.max_outdegree() == orientation.max_outdegree()


class TestFlipsAndFallback:
    def test_insertions_into_low_capacity_vertex_trigger_flips(self):
        """A star forced through a tiny cap must flip paths away from the hub."""
        n = 40
        dynamic = DynamicGraph.empty(n)
        orientation = IncrementalOrientation(dynamic, lambda_bound=1, flip_slack=2)
        # ring so flip paths exist out of every vertex
        for i in range(n):
            dynamic.add_edge(i, (i + 1) % n)
            orientation.insert(i, (i + 1) % n)
        assert orientation.max_outdegree() <= orientation.outdegree_cap

    def test_densification_triggers_theorem_rebuild(self):
        """Growing a clique past the cap saturates the flip search and falls
        back to the full Theorem 1.1 pipeline with a refreshed estimate."""
        n = 24
        dynamic = DynamicGraph.empty(n)
        orientation = IncrementalOrientation(dynamic, lambda_bound=1, flip_slack=2)
        for u in range(n):
            for v in range(u + 1, n):
                dynamic.add_edge(u, v)
                orientation.insert(u, v)
        assert orientation.rebuilds >= 1
        assert orientation.lambda_bound > 1
        assert orientation.max_outdegree() <= orientation.outdegree_cap
        assert orientation.oriented_edge_count() == dynamic.num_edges

    def test_ensure_quality_rebuilds_down_after_mass_deletion(self):
        """Deleting the dense part leaves the cap stale-high; the amortised
        quality check must rebuild with a fresh (smaller) estimate."""
        clique = complete_graph(16)
        padding = 400  # sparse remainder so the fresh estimate is small
        edges = list(clique.edges) + [(i, i + 1) for i in range(16, padding)]
        base = Graph(padding + 1, edges)
        dynamic = DynamicGraph(base)
        orientation = IncrementalOrientation(dynamic)
        cap_before = orientation.outdegree_cap
        for u, v in clique.edges:
            dynamic.remove_edge(u, v)
            orientation.delete(u, v)
        rebuilt = orientation.ensure_quality(force=True)
        assert rebuilt
        assert orientation.outdegree_cap < cap_before
        assert orientation.max_outdegree() <= orientation.outdegree_cap

    def test_rebuild_charges_cluster_rounds(self):
        from repro.mpc.cluster import MPCCluster
        from repro.mpc.config import MPCConfig

        n = 20
        cluster = MPCCluster(MPCConfig(num_vertices=n, num_edges=n * n))
        dynamic = DynamicGraph.empty(n)
        orientation = IncrementalOrientation(
            dynamic, lambda_bound=1, flip_slack=2, cluster=cluster
        )
        for u in range(n):
            for v in range(u + 1, n):
                dynamic.add_edge(u, v)
                orientation.insert(u, v)
        assert orientation.rebuilds >= 1
        assert cluster.stats.rounds_by_label["stream:rebuild:saturated"] >= 1
        assert cluster.stats.num_rounds > 0


class TestBoundProperty:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_outdegree_stays_o_lambda_after_1k_interleaved_ops(self, seed):
        """Acceptance property: after ≥1k random interleaved inserts/deletes
        the maintained max outdegree respects the cap invariant at every
        checkpoint, and the cap stays O(λ) of the *current* graph."""
        n = 128
        rng = random.Random(seed)
        base = union_of_random_forests(n, arboricity=2, seed=seed)
        dynamic = DynamicGraph(base)
        orientation = IncrementalOrientation(dynamic, quality_interval=64)
        mirror = set(base.edges)
        pool = sorted(mirror)
        loglog = max(math.log2(max(math.log2(n), 2.0)), 1.0)
        for step in range(1100):
            if mirror and rng.random() < 0.5:
                e = pool[rng.randrange(len(pool))]
                if e not in mirror:
                    continue
                mirror.discard(e)
                dynamic.remove_edge(*e)
                orientation.delete(*e)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v:
                    continue
                e = (min(u, v), max(u, v))
                if e in mirror:
                    continue
                mirror.add(e)
                pool.append(e)
                dynamic.add_edge(*e)
                orientation.insert(*e)
            if step % 100 == 99:
                # Invariant: never above the maintained cap.
                assert orientation.max_outdegree() <= orientation.outdegree_cap
                assert orientation.oriented_edge_count() == len(mirror)
        # O(λ) of the current graph: after the amortised quality check, the
        # cap is at most 2·flip_slack·degeneracy ≤ 4·flip_slack·λ, except a
        # Theorem 1.1 fallback may have realised its O(λ log log n) bound.
        orientation.ensure_quality(force=True)
        bounds = arboricity_bounds(dynamic.snapshot(), exact_density=False)
        envelope = 16 * max(1, bounds.upper) * loglog
        assert orientation.max_outdegree() <= envelope
        assert orientation.outdegree_cap <= envelope
