"""Property suite for the cross-tenant scheduler (ISSUE 5).

Randomised multi-tenant traces — varying tenant counts, policies, budgets,
and seeds — must satisfy four contracts regardless of configuration:

(a) **conservation** — every submitted update is eventually applied, none
    duplicated (per-tenant applied counts equal submitted counts and the
    maintained invariants hold at drain);
(b) **no starvation** under deficit-round-robin — every continuously
    backlogged tenant is served within a bounded number of ticks;
(c) **budget cap** — per-tick folded rounds never exceed ``round_budget``
    beyond the documented head-of-line allowance (and never at all on the
    rebuild-free fleets used here, where the cost estimates are upper
    bounds);
(d) **schedule transparency** — a tenant served under any policy is
    byte-identical to the same tenant run standalone.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import derive_seed
from repro.errors import GraphError
from repro.stream.engine import StreamEngine
from repro.stream.scheduler import (
    DeficitRoundRobinPlanner,
    TenantLoad,
    admit_within_budget,
    estimate_batch_rounds,
    make_planner,
)
from repro.stream.service import StreamingService
from repro.stream.workloads import skewed_tenant_traces

MAX_TICKS = 500


def _fleet(num_tenants, seed, num_batches=3, batch_size=20):
    return skewed_tenant_traces(
        num_tenants=num_tenants,
        num_vertices=48,
        num_bursty=max(1, num_tenants // 3),
        num_batches=num_batches,
        batch_size=batch_size,
        burst_factor=3,
        burst_period=2,
        seed=seed,
    )


def _run(traces, policy, round_budget, seed=7, **options):
    engine = StreamEngine(
        seed=seed, planner=make_planner(policy, **options), round_budget=round_budget
    )
    for trace in traces:
        engine.add_tenant(trace.name, trace.initial)
        engine.submit_all(trace.name, trace.batches)
    engine.run_until_drained(max_ticks=MAX_TICKS)
    engine.verify()
    return engine


def _max_estimate(engine, traces):
    """The largest head-batch estimate any tick of this run could see."""
    return max(
        estimate_batch_rounds(
            max(len(batch) for batch in trace.batches),
            engine.tenant_service(trace.name).cluster.words_per_machine,
            engine.tenant_service(trace.name).dynamic.min_compaction_journal,
        )
        for trace in traces
    )


def _random_configs(count, seed):
    rng = random.Random(seed)
    configs = []
    for _ in range(count):
        policy = rng.choice(["serve-all", "top-k-backlog", "deficit-round-robin"])
        options = {}
        if policy == "top-k-backlog":
            options["k"] = rng.choice([1, 2, 3])
        if policy == "deficit-round-robin":
            options["quantum"] = rng.choice([2, 4, 8])
        configs.append(
            dict(
                num_tenants=rng.choice([2, 3, 4]),
                policy=policy,
                options=options,
                round_budget=rng.choice([None, 12, 24]),
                seed=rng.randrange(2**20),
            )
        )
    return configs


class TestConservation:
    """(a) Every submitted update is applied exactly once, whatever the plan."""

    @pytest.mark.parametrize("config", _random_configs(8, seed=100), ids=repr)
    def test_all_updates_applied_exactly_once(self, config):
        traces = _fleet(config["num_tenants"], config["seed"])
        engine = _run(
            traces, config["policy"], config["round_budget"], **config["options"]
        )
        try:
            for trace in traces:
                summary = engine.tenant_summary(trace.name)
                assert summary.num_batches == len(trace.batches)
                assert summary.total_updates == trace.num_updates
            # Served counts across ticks match too: nothing double-served.
            assert engine.summary.total_served == sum(
                len(trace.batches) for trace in traces
            )
            assert engine.pending() == 0
        finally:
            engine.close()


class TestNoStarvation:
    """(b) Deficit-round-robin serves every backlogged tenant within a bound."""

    @pytest.mark.parametrize("seed", [3, 17, 51])
    @pytest.mark.parametrize("quantum,budget", [(4, 12), (2, 24), (8, None)])
    def test_backlogged_tenants_are_served_within_the_bound(
        self, seed, quantum, budget
    ):
        traces = _fleet(4, seed, num_batches=4)
        engine = _run(
            traces, "deficit-round-robin", budget, quantum=quantum
        )
        try:
            bound = 2 * (len(traces) + -(-_max_estimate(engine, traces) // quantum)) + 2
            waits = {trace.name: 0 for trace in traces}
            for tick in engine.ticks:
                for name in tick.deferred:
                    waits[name] += 1
                    assert waits[name] <= bound, (
                        f"tenant {name} backlogged {waits[name]} consecutive "
                        f"ticks (bound {bound}) at tick {tick.tick_index}"
                    )
                for name in tick.reports:
                    waits[name] = 0
        finally:
            engine.close()

    @pytest.mark.parametrize("seed", [3, 17])
    def test_weighted_tenants_meet_the_scaled_bound(self, seed):
        """ISSUE 6 satellite: under weighted deficit-round-robin every tenant
        keeps the no-starvation bound scaled by its own weight —
        ``⌈E/(quantum·w)⌉ + N`` ticks of eligibility wait plus the documented
        budget slack — and drains completely."""
        quantum = 2
        traces = _fleet(4, seed, num_batches=4)
        weights = dict(zip((trace.name for trace in traces), (3, 1, 2, 1)))
        engine = StreamEngine(
            seed=7,
            planner=make_planner("deficit-round-robin", quantum=quantum),
            round_budget=12,
        )
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial, weight=weights[trace.name])
            engine.submit_all(trace.name, trace.batches)
        try:
            engine.run_until_drained(max_ticks=MAX_TICKS)
            engine.verify()
            estimate = _max_estimate(engine, traces)
            waits = {trace.name: 0 for trace in traces}
            for tick in engine.ticks:
                for name in tick.deferred:
                    waits[name] += 1
                    eligibility = -(-estimate // (quantum * weights[name]))
                    bound = 2 * (len(traces) + eligibility) + 2
                    assert waits[name] <= bound, (
                        f"weight-{weights[name]} tenant {name} backlogged "
                        f"{waits[name]} consecutive ticks (bound {bound}) "
                        f"at tick {tick.tick_index}"
                    )
                for name in tick.reports:
                    waits[name] = 0
            # Conservation and transparency survive weighting: everything
            # drains and weights change *when*, never *what*.
            for index, trace in enumerate(traces):
                summary = engine.tenant_summary(trace.name)
                assert summary.num_batches == len(trace.batches)
                standalone = StreamingService(
                    trace.initial, seed=derive_seed(7, index)
                )
                standalone.apply_all(trace.batches)
                hosted = engine.tenant_service(trace.name)
                assert TestScheduleTransparency._fingerprint(hosted) == (
                    TestScheduleTransparency._fingerprint(standalone)
                )
                standalone.close()
        finally:
            engine.close()

    def test_drained_tenants_forfeit_their_credit(self):
        planner = DeficitRoundRobinPlanner(quantum=4)
        load = TenantLoad(
            name="a",
            index=0,
            backlog_batches=1,
            backlog_updates=10,
            head_updates=10,
            estimated_rounds=4,
        )
        assert planner.plan([load]) == ["a"]
        assert planner.deficit("a") == 0
        planner.plan([load])
        assert planner.deficit("a") == 0
        planner.plan([])  # "a" drained: credit must not survive idleness
        assert planner.deficit("a") == 0


class TestBudgetCap:
    """(c) Folded tick rounds stay within the budget (+ head-of-line case)."""

    @pytest.mark.parametrize("config", _random_configs(8, seed=200), ids=repr)
    def test_folded_rounds_respect_the_budget(self, config):
        budget = config["round_budget"] or 12
        traces = _fleet(config["num_tenants"], config["seed"])
        engine = _run(traces, config["policy"], budget, **config["options"])
        try:
            assert engine.ticks
            for tick in engine.ticks:
                # The plan never promises more than the budget, except for a
                # lone head-of-line batch (the documented progress allowance).
                if len(tick.planned) > 1:
                    assert tick.planned_rounds <= budget
                if tick.planned_rounds <= budget:
                    # Rebuild-free fleet: estimates upper-bound actuals, so
                    # the folded (max-over-tenants) charge obeys the cap.
                    assert all(r.rebuilds == 0 for r in tick.reports.values())
                    assert tick.rounds <= budget, (
                        f"tick {tick.tick_index} folded {tick.rounds} rounds "
                        f"over budget {budget} (planned {tick.planned})"
                    )
        finally:
            engine.close()

    def test_per_tenant_actual_rounds_never_exceed_their_estimate(self):
        """The estimator contract the budget guarantee rests on."""
        traces = _fleet(3, seed=9, num_batches=4)
        engine = _run(traces, "serve-all", None)
        try:
            for trace in traces:
                service = engine.tenant_service(trace.name)
                for batch, report in zip(
                    trace.batches, engine.tenant_summary(trace.name).reports
                ):
                    estimate = estimate_batch_rounds(
                        len(batch),
                        service.cluster.words_per_machine,
                        service.dynamic.min_compaction_journal,
                    )
                    assert report.rebuilds == 0
                    assert report.rounds <= estimate, (
                        f"{trace.name}: batch of {len(batch)} charged "
                        f"{report.rounds} rounds, estimate {estimate}"
                    )
        finally:
            engine.close()

    def test_budget_exhausted_tick_serves_nobody_and_charges_zero_rounds(self):
        """ISSUE 5 satellite: an empty fold charges 0 rounds, not 1 (and does
        not crash) — deficit-round-robin with a slow quantum produces real
        zero-service warm-up ticks."""
        traces = _fleet(2, seed=5, num_batches=2)
        engine = StreamEngine(
            seed=7, planner=make_planner("deficit-round-robin", quantum=1)
        )
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
            engine.submit_all(trace.name, trace.batches)
        try:
            rounds_before = engine.cluster.stats.num_rounds
            report = engine.tick()  # quantum 1 < any estimate: nobody eligible
            assert report is not None
            assert report.num_tenants_served == 0
            assert report.rounds == 0
            assert set(report.deferred) == {trace.name for trace in traces}
            assert engine.cluster.stats.num_rounds == rounds_before
            assert engine.ticks and engine.ticks[-1] is report
            assert engine.pending() == sum(len(t.batches) for t in traces)
            engine.run_until_drained(max_ticks=MAX_TICKS)  # credit accrues
            engine.verify()
        finally:
            engine.close()


class TestScheduleTransparency:
    """(d) Served tenants are byte-identical to their standalone runs."""

    @staticmethod
    def _fingerprint(service):
        return (
            tuple(tuple(sorted(out)) for out in service.orientation._out),
            tuple(service.coloring._colors),
            service.orientation.flips,
            service.orientation.rebuilds,
            service.cluster.stats.num_rounds,
            [tuple(sorted(r.as_dict().items())) for r in service.summary.reports],
        )

    @pytest.mark.parametrize(
        "policy,options,budget",
        [
            ("top-k-backlog", {"k": 2}, 12),
            ("deficit-round-robin", {"quantum": 4}, 12),
            ("serve-all", {}, 10),
        ],
        ids=lambda value: str(value),
    )
    def test_hosted_tenants_match_standalone_services(self, policy, options, budget):
        traces = _fleet(3, seed=21, num_batches=3)
        engine = _run(traces, policy, budget, seed=13, **options)
        try:
            for index, trace in enumerate(traces):
                standalone = StreamingService(
                    trace.initial, seed=derive_seed(13, index)
                )
                standalone.apply_all(trace.batches)
                standalone.verify()
                hosted = engine.tenant_service(trace.name)
                assert self._fingerprint(hosted) == self._fingerprint(standalone), (
                    f"tenant {trace.name} diverged under {policy}"
                )
                standalone.close()
        finally:
            engine.close()


class TestPlannerUnits:
    """Planner-level behaviours that don't need an engine run."""

    @staticmethod
    def _loads(*estimates):
        return [
            TenantLoad(
                name=f"t{i}",
                index=i,
                backlog_batches=1,
                backlog_updates=10 * (i + 1),
                head_updates=10,
                estimated_rounds=estimate,
            )
            for i, estimate in enumerate(estimates)
        ]

    def test_admission_is_work_conserving(self):
        loads = self._loads(4, 10, 4)
        assert admit_within_budget(loads, 9) == ["t0", "t2"]

    def test_head_of_line_is_always_admitted(self):
        loads = self._loads(40)
        assert admit_within_budget(loads, 5) == ["t0"]

    def test_no_budget_admits_everyone(self):
        loads = self._loads(4, 10, 4)
        assert admit_within_budget(loads, None) == ["t0", "t1", "t2"]

    def test_top_k_prefers_backlog_then_registration_order(self):
        planner = make_planner("top-k-backlog", k=2)
        loads = self._loads(4, 4, 4)  # backlogs 10, 20, 30
        assert planner.plan(loads) == ["t2", "t1"]
        ties = [
            TenantLoad(
                name=f"t{i}",
                index=i,
                backlog_batches=1,
                backlog_updates=10,
                head_updates=10,
                estimated_rounds=4,
            )
            for i in range(3)
        ]
        assert planner.plan(ties) == ["t0", "t1"]

    def test_weight_scales_credit_accrual(self):
        """A weight-3 tenant reaches eligibility in one tick where its
        weight-1 sibling with the same estimate needs three."""
        planner = DeficitRoundRobinPlanner(quantum=2)
        loads = [
            TenantLoad(
                name="heavy",
                index=0,
                backlog_batches=5,
                backlog_updates=50,
                head_updates=10,
                estimated_rounds=6,
                weight=3,
            ),
            TenantLoad(
                name="light",
                index=1,
                backlog_batches=5,
                backlog_updates=50,
                head_updates=10,
                estimated_rounds=6,
                weight=1,
            ),
        ]
        assert planner.plan(loads) == ["heavy"]  # 6 credits vs 2
        assert planner.plan(loads) == ["heavy"]  # 6 vs 4
        assert planner.plan(loads) == ["light", "heavy"]  # light reaches 6
        assert planner.deficit("heavy") == 0
        assert planner.deficit("light") == 0

    def test_planner_rejects_weights_below_one(self):
        planner = DeficitRoundRobinPlanner(quantum=2)
        load = TenantLoad(
            name="bad",
            index=0,
            backlog_batches=1,
            backlog_updates=10,
            head_updates=10,
            estimated_rounds=4,
            weight=0,
        )
        with pytest.raises(GraphError, match="weights must be integers >= 1"):
            planner.plan([load])

    def test_estimate_is_monotone_and_zero_for_empty(self):
        assert estimate_batch_rounds(0, 32) == 0
        previous = 0
        for length in (1, 10, 64, 65, 200):
            estimate = estimate_batch_rounds(length, 32)
            assert estimate >= previous
            previous = estimate

    def test_make_planner_rejects_unknown_policies_and_options(self):
        with pytest.raises(GraphError, match="unknown scheduling policy"):
            make_planner("fifo")
        with pytest.raises(GraphError, match="bad options"):
            make_planner("serve-all", k=3)
        with pytest.raises(GraphError, match="k >= 1"):
            make_planner("top-k-backlog", k=0)
        with pytest.raises(GraphError, match="quantum >= 1"):
            make_planner("deficit-round-robin", quantum=0)
