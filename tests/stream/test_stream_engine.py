"""StreamEngine: multi-tenant isolation, round folds, and determinism.

ISSUE 4 acceptance: an engine with N=4 tenants must report per-tenant
summaries identical to running each tenant on its own
:class:`~repro.stream.service.StreamingService` with the same seeds, while
the aggregate ledger charges parallel ticks as max-over-tenants.
"""

from __future__ import annotations

import pytest

from repro.engine import derive_seed
from repro.errors import GraphError, QuotaExceededError
from repro.graph.generators import union_of_random_forests
from repro.graph.graph import Graph
from repro.stream.engine import StreamEngine
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch
from repro.stream.workloads import multi_tenant_traces, uniform_churn_trace


def _fleet(num_tenants=4, num_vertices=128, num_batches=4, batch_size=60, seed=3):
    return multi_tenant_traces(
        num_tenants=num_tenants,
        num_vertices=num_vertices,
        num_batches=num_batches,
        batch_size=batch_size,
        seed=seed,
    )


def _run_engine(traces, seed=9, workers=1):
    engine = StreamEngine(seed=seed, workers=workers)
    for trace in traces:
        engine.add_tenant(trace.name, trace.initial)
        engine.submit_all(trace.name, trace.batches)
    engine.run_until_drained()
    engine.verify()
    return engine


def _report_rows(summary):
    return [tuple(sorted(report.as_dict().items())) for report in summary.reports]


def _tenant_fingerprint(service):
    return (
        tuple(tuple(sorted(out)) for out in service.orientation._out),
        tuple(service.coloring._colors),
        service.orientation.flips,
        service.orientation.rebuilds,
        service.cluster.stats.num_rounds,
    )


class TestTenantIsolation:
    def test_per_tenant_summaries_match_standalone_services(self):
        """The acceptance criterion: hosting on the engine changes nothing a
        tenant can observe — same reports, same heads/colors, same rounds —
        on a rebuild-heavy mixed fleet."""
        traces = _fleet()
        with _run_engine(traces, seed=9, workers=2) as engine:
            assert sum(
                engine.tenant_summary(name).total_rebuilds
                for name in engine.tenant_names()
            ) > 0  # the densifying tenant must exercise the rebuild path
            for index, trace in enumerate(traces):
                standalone = StreamingService(
                    trace.initial, seed=derive_seed(9, index)
                )
                standalone.apply_all(trace.batches)
                standalone.verify()
                hosted = engine.tenant_service(trace.name)
                assert _report_rows(engine.tenant_summary(trace.name)) == _report_rows(
                    standalone.summary
                )
                assert _tenant_fingerprint(hosted) == _tenant_fingerprint(standalone)
                standalone.close()

    def test_unknown_and_duplicate_tenants_are_rejected(self):
        with StreamEngine() as engine:
            initial = union_of_random_forests(32, arboricity=2, seed=1)
            engine.add_tenant("a", initial)
            with pytest.raises(GraphError, match="already registered"):
                engine.add_tenant("a", initial)
            with pytest.raises(GraphError, match="unknown tenant"):
                engine.submit("b", None)

    def test_add_tenant_rejects_bad_weights(self):
        with StreamEngine() as engine:
            initial = union_of_random_forests(32, arboricity=2, seed=1)
            with pytest.raises(GraphError, match="weight must be an integer"):
                engine.add_tenant("w", initial, weight=0)
            with pytest.raises(GraphError, match="weight must be an integer"):
                engine.add_tenant("w", initial, weight=1.5)
            engine.add_tenant("w", initial, weight=2)
            assert engine.tenant_names() == ("w",)

    def test_tenant_seeds_derive_from_registration_position(self):
        traces = _fleet(num_tenants=2)
        with _run_engine(traces, seed=31) as engine:
            names = engine.tenant_names()
            assert names == tuple(trace.name for trace in traces)
            for index, name in enumerate(names):
                expected = derive_seed(31, index)
                assert engine.tenant_service(name).orientation._seed == expected


class TestTickAccounting:
    def test_tick_rounds_fold_as_max_over_tenants(self):
        """Aggregate rounds for a tick = max over the served tenants' deltas;
        the sequential sum is what the old one-after-another charge was."""
        with _run_engine(_fleet(), seed=9) as engine:
            assert engine.ticks
            for tick in engine.ticks:
                per_tenant = [report.rounds for report in tick.reports.values()]
                assert tick.rounds == max(per_tenant)
                assert tick.sequential_rounds == sum(per_tenant)
                if len([rounds for rounds in per_tenant if rounds > 0]) > 1:
                    assert tick.rounds < tick.sequential_rounds

    def test_aggregate_summary_rows_mirror_ticks(self):
        with _run_engine(_fleet(), seed=9) as engine:
            assert engine.summary.num_batches == len(engine.ticks)
            for tick, report in zip(engine.ticks, engine.summary.reports):
                assert report.rounds == tick.rounds
                assert report.num_inserts == sum(
                    r.num_inserts for r in tick.reports.values()
                )
                assert report.flips == sum(r.flips for r in tick.reports.values())
            # Structure metrics are engine-wide snapshots at tick time; the
            # final row must describe the final fleet state.
            final = engine.summary.final_report()
            assert final.num_edges == sum(
                engine.tenant_service(name).dynamic.num_edges
                for name in engine.tenant_names()
            )
            assert final.max_outdegree == max(
                engine.tenant_service(name).orientation.max_outdegree()
                for name in engine.tenant_names()
            )

    def test_shared_ledger_covers_builds_plus_tick_folds(self):
        """Tenant construction charges sequentially at registration; every
        tick adds its max-over-tenants fold on top."""
        traces = _fleet(num_tenants=2)
        engine = StreamEngine(seed=9)
        for trace in traces:
            engine.add_tenant(trace.name, trace.initial)
        build_rounds = engine.cluster.stats.num_rounds
        assert build_rounds == sum(
            engine.tenant_service(name).cluster.stats.num_rounds
            for name in engine.tenant_names()
        )
        for trace in traces:
            engine.submit_all(trace.name, trace.batches)
        summary = engine.run_until_drained()
        assert engine.cluster.stats.num_rounds == build_rounds + summary.total_rounds
        engine.close()

    def test_uneven_queues_serve_only_pending_tenants(self):
        """A tick serves the tenants with queued batches; the others idle."""
        trace = uniform_churn_trace(64, num_batches=2, batch_size=30, seed=2)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("busy", trace.initial)
            engine.add_tenant("idle", union_of_random_forests(64, arboricity=2, seed=1))
            engine.submit_all("busy", trace.batches)
            first = engine.tick()
            assert set(first.reports) == {"busy"}
            assert engine.pending() == 1
            assert engine.tick().num_tenants_served == 1
            assert engine.tick() is None
            assert engine.tenant_summary("idle").num_batches == 0

    def test_failed_tenant_batch_leaves_the_engine_consistent(self):
        """A tenant raising mid-tick must not corrupt the engine: its batch
        stays queued (per-batch atomicity), siblings' applied batches are
        consumed, and the rounds they charged fold into a recorded partial
        tick instead of misattributing to the next one."""
        trace = uniform_churn_trace(64, num_batches=1, batch_size=30, seed=2)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("good", trace.initial)
            engine.add_tenant("bad", Graph(64))  # empty: every delete is dead
            engine.submit_all("good", trace.batches)
            engine.submit("bad", UpdateBatch.from_ops([("-", 0, 1)]))
            rounds_before = engine.cluster.stats.num_rounds
            with pytest.raises(GraphError, match="dead edge"):
                engine.tick()
            assert engine.pending("good") == 0
            assert engine.pending("bad") == 1
            assert engine.tenant_summary("good").num_batches == 1
            assert engine.tenant_summary("bad").num_batches == 0
            assert len(engine.ticks) == 1
            assert set(engine.ticks[0].reports) == {"good"}
            assert engine.cluster.stats.num_rounds > rounds_before
            engine.verify()

    def test_tick_memory_fold_sums_idle_tenants_too(self):
        """Co-residency: a tick's memory fold sums every tenant's peaks —
        tenants occupy the fleet whether or not they were served."""
        trace = uniform_churn_trace(64, num_batches=1, batch_size=30, seed=2)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("busy", trace.initial)
            engine.add_tenant("idle", union_of_random_forests(64, arboricity=2, seed=1))
            engine.submit_all("busy", trace.batches)
            engine.tick()
            tenant_peaks = sum(
                engine.tenant_service(name).cluster.stats.peak_global_memory_words
                for name in engine.tenant_names()
            )
            assert engine.cluster.stats.peak_global_memory_words >= tenant_peaks

    def test_run_until_drained_respects_max_ticks(self):
        trace = uniform_churn_trace(64, num_batches=3, batch_size=20, seed=2)
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", trace.initial)
            engine.submit_all("t", trace.batches)
            with pytest.raises(GraphError, match="still queued"):
                engine.run_until_drained(max_ticks=1)


def _absent_edge_ops(graph, count):
    """``count`` insert ops for edges absent from ``graph``, scan order."""
    ops = []
    for u in range(graph.num_vertices):
        for v in range(u + 1, graph.num_vertices):
            if not graph.has_edge(u, v):
                ops.append(("+", u, v))
                if len(ops) == count:
                    return ops
    raise AssertionError("graph too dense to build the insert batch")


def _absent_edge_inserts(graph, count):
    """A batch of ``count`` inserts of edges absent from ``graph``."""
    return UpdateBatch.from_ops(_absent_edge_ops(graph, count))


class TestMemoryQuotas:
    """ISSUE 5: tenant-level memory quotas on the shared ledger."""

    @staticmethod
    def _standalone_peaks(initial, seed):
        """Build peak + steady-state words of a standalone service (the probe
        that sizes quotas without hard-coding provisioning constants)."""
        probe = StreamingService(initial, seed=seed)
        peaks = (
            probe.cluster.stats.peak_global_memory_words,
            probe.cluster.global_memory_in_use(),
        )
        probe.close()
        return peaks

    def test_registration_rejects_a_quota_below_the_initial_graph(self):
        initial = union_of_random_forests(48, arboricity=2, seed=3)
        words = initial.num_vertices + 2 * initial.num_edges
        with StreamEngine(seed=5) as engine:
            with pytest.raises(QuotaExceededError, match="initial graph"):
                engine.add_tenant("hog", initial, memory_quota=words - 1)
            assert engine.tenant_names() == ()
            assert engine.cluster is None  # nothing was provisioned

    def test_registration_admits_a_quota_the_build_fits(self):
        initial = union_of_random_forests(48, arboricity=2, seed=3)
        build_peak, in_use = self._standalone_peaks(initial, derive_seed(5, 0))
        with StreamEngine(seed=5) as engine:
            service = engine.add_tenant(
                "ok", initial, memory_quota=max(build_peak, in_use)
            )
            assert engine.tenant_names() == ("ok",)
            assert service.cluster.memory_quota == max(build_peak, in_use)

    def test_quota_breach_quarantines_the_tenant_and_spares_siblings(self):
        """The acceptance scenario: the offending tenant is quarantined with
        its batch re-queued intact, sibling tenants' results are unchanged,
        and the tick is recorded as partial."""
        hog_initial = union_of_random_forests(48, arboricity=1, seed=3)
        trace = uniform_churn_trace(48, num_batches=2, batch_size=20, seed=2)
        build_peak, in_use = self._standalone_peaks(hog_initial, derive_seed(5, 1))
        quota = max(build_peak, in_use) + 20  # room for ≤10 net inserts
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("good", trace.initial)
            engine.add_tenant("hog", hog_initial, memory_quota=quota)
            engine.submit_all("good", trace.batches)
            hog_batch = _absent_edge_inserts(hog_initial, 30)  # +60 words
            engine.submit("hog", hog_batch)

            with pytest.raises(QuotaExceededError, match="tenant 'hog'"):
                engine.tick()

            # Offender: quarantined, batch intact, state untouched.
            assert set(engine.quarantined()) == {"hog"}
            assert engine.pending("hog") == 1
            assert engine.tenant_summary("hog").num_batches == 0
            assert engine.tenant_service("hog").dynamic.num_edges == (
                hog_initial.num_edges
            )
            # Sibling: served in the same (partial) tick.
            assert engine.tenant_summary("good").num_batches == 1
            assert len(engine.ticks) == 1
            assert engine.ticks[0].quota_breached == ("hog",)
            assert set(engine.ticks[0].reports) == {"good"}
            assert engine.summary.reports[-1].quota_breaches == 1

            # Draining continues for the sibling; the hog's queue survives.
            engine.run_until_drained(max_ticks=20)
            assert engine.tenant_summary("good").num_batches == 2
            assert engine.pending("hog") == 1
            engine.verify()

            # Sibling results are byte-identical to its standalone run.
            standalone = StreamingService(trace.initial, seed=derive_seed(5, 0))
            standalone.apply_all(trace.batches)
            assert _tenant_fingerprint(engine.tenant_service("good")) == (
                _tenant_fingerprint(standalone)
            )
            standalone.close()

    def test_lift_quarantine_resumes_byte_identical(self):
        """ISSUE 6 satellite: after the operator raises the quota, the lifted
        tenant drains its intact queue and ends byte-identical to a
        standalone service that was never quarantined."""
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        build_peak, in_use = self._standalone_peaks(initial, derive_seed(5, 0))
        quota = max(build_peak, in_use) + 20
        ops = _absent_edge_ops(initial, 45)
        batches = [
            UpdateBatch.from_ops(ops[:30]),  # +60 words: breaches the quota
            UpdateBatch.from_ops(  # mixed follow-up once the quota is raised
                [("-", u, v) for _op, u, v in ops[:10]] + ops[30:]
            ),
        ]
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", initial, memory_quota=quota)
            engine.submit_all("t", batches)
            with pytest.raises(QuotaExceededError):
                engine.tick()
            assert set(engine.quarantined()) == {"t"}
            assert engine.pending("t") == 2  # projection path: nothing consumed

            breach = engine.lift_quarantine("t", new_quota=quota + 1000)
            assert isinstance(breach, QuotaExceededError)
            assert engine.quarantined() == {}
            assert engine.tenant_service("t").cluster.memory_quota == quota + 1000

            engine.run_until_drained(max_ticks=10)
            engine.verify()
            assert engine.tenant_summary("t").num_batches == len(batches)

            standalone = StreamingService(initial, seed=derive_seed(5, 0))
            standalone.apply_all(batches)
            standalone.verify()
            assert _tenant_fingerprint(engine.tenant_service("t")) == (
                _tenant_fingerprint(standalone)
            )
            assert _report_rows(engine.tenant_summary("t")) == _report_rows(
                standalone.summary
            )
            standalone.close()

    def test_lift_quarantine_validates_its_inputs(self):
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        build_peak, in_use = self._standalone_peaks(initial, derive_seed(5, 0))
        quota = max(build_peak, in_use) + 20
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", initial, memory_quota=quota)
            with pytest.raises(GraphError, match="unknown tenant"):
                engine.lift_quarantine("ghost")
            with pytest.raises(GraphError, match="not quarantined"):
                engine.lift_quarantine("t")
            engine.submit("t", _absent_edge_inserts(initial, 30))
            with pytest.raises(QuotaExceededError):
                engine.tick()
            with pytest.raises(GraphError, match="at least 1 word"):
                engine.lift_quarantine("t", new_quota=0)
            assert set(engine.quarantined()) == {"t"}  # failed lifts change nothing

    def test_lift_rejects_a_quota_the_frozen_peak_already_breaches(self):
        """The fold-time path applies the batch before the breach is seen, so
        a lift whose quota the recorded peak still exceeds must refuse —
        otherwise the next fold re-quarantines immediately."""
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        build_peak, in_use = self._standalone_peaks(initial, derive_seed(5, 0))
        quota = max(build_peak, in_use) + 20
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("t", initial, memory_quota=quota)
            engine.submit("t", _absent_edge_inserts(initial, 30))
            with pytest.raises(QuotaExceededError):
                engine.tick()
            peak = engine.tenant_service("t").cluster.stats.peak_global_memory_words
            with pytest.raises(QuotaExceededError, match="lifting quarantine"):
                engine.lift_quarantine("t", new_quota=max(1, peak - 1))
            assert set(engine.quarantined()) == {"t"}
            assert engine.tenant_service("t").cluster.memory_quota == quota

    def test_quota_fits_when_growth_stays_inside_the_cap(self):
        """The same shape of batch passes when the quota leaves headroom —
        the admission check is about growth, not about having a quota."""
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        build_peak, in_use = self._standalone_peaks(initial, derive_seed(5, 0))
        with StreamEngine(seed=5) as engine:
            engine.add_tenant(
                "ok", initial, memory_quota=max(build_peak, in_use) + 100
            )
            engine.submit("ok", _absent_edge_inserts(initial, 30))
            engine.run_until_drained(max_ticks=5)
            assert engine.quarantined() == {}
            assert engine.tenant_summary("ok").num_batches == 1
            engine.verify()


class TestEngineDeterminism:
    """ISSUE 4 satellite: same seed ⇒ byte-identical tenant structures and
    aggregate rounds for any worker count, on a rebuild-heavy fleet."""

    @staticmethod
    def _engine_fingerprint(engine):
        return tuple(
            _tenant_fingerprint(engine.tenant_service(name))
            for name in engine.tenant_names()
        ) + (
            engine.cluster.stats.num_rounds,
            tuple(tick.rounds for tick in engine.ticks),
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_counts_are_byte_identical(self, workers, kernel_backend):
        # ``kernel_backend`` (ISSUE 9) re-runs the matrix per kernel backend;
        # the fingerprint must agree across workers *and* kernels.
        with _run_engine(_fleet(), seed=9, workers=1) as reference:
            expected = self._engine_fingerprint(reference)
        with _run_engine(_fleet(), seed=9, workers=workers) as engine:
            assert self._engine_fingerprint(engine) == expected
