"""Checkpoint/restore: byte-identity, the crash matrix, and corruption.

ISSUE 10 acceptance: restore-after-crash is byte-identical to the
uninterrupted run across backends {serial, thread, process} × kernels
{pure, numpy} × workers {1, 2, 4}; a truncated or corrupted snapshot
raises a typed :class:`~repro.errors.CheckpointError` and the engine under
construction is torn down, never half-restored.
"""

from __future__ import annotations

import json
import os
import random
import threading

import pytest

import repro.stream.engine as engine_module
from repro.engine import PROCESS, SERIAL, THREAD, ParallelExecutor, derive_seed
from repro.errors import CheckpointError, GraphError, QuotaExceededError
from repro.graph.generators import union_of_random_forests
from repro.stream import checkpoint
from repro.stream.engine import StreamEngine, TenantState
from repro.stream.service import StreamingService
from repro.stream.updates import UpdateBatch
from repro.stream.workloads import multi_tenant_traces


def _fleet(seed=5):
    return multi_tenant_traces(
        num_tenants=3,
        num_vertices=64,
        num_batches=3,
        batch_size=30,
        seed=seed,
    )


def _loaded_engine(traces, seed=9, **kwargs):
    engine = StreamEngine(seed=seed, **kwargs)
    for trace in traces:
        engine.add_tenant(trace.name, trace.initial)
        engine.submit_all(trace.name, trace.batches)
    return engine


def _reference_fingerprint(traces, seed=9):
    """Fingerprint of the uninterrupted serial/workers=1 run."""
    with _loaded_engine(traces, seed=seed) as engine:
        engine.run_until_drained()
        engine.verify()
        return checkpoint.fingerprint(engine)


def _summary_rows(summary):
    return [tuple(sorted(report.as_dict().items())) for report in summary.reports]


class TestRoundtrip:
    def test_restore_is_byte_identical_at_every_tick_boundary(self, tmp_path):
        """Checkpoint after each tick; every restore must match the original
        engine field-for-field — heads, colors, rounds, queues, ticks."""
        traces = _fleet()
        with _loaded_engine(traces) as engine:
            tick_index = 0
            while engine.pending():
                engine.tick()
                tick_index += 1
                path = tmp_path / f"tick-{tick_index}.json"
                saved = engine.checkpoint(path)
                assert saved["fingerprint"] == checkpoint.fingerprint_digest(engine)
                restored = StreamEngine.restore(path)
                try:
                    assert checkpoint.fingerprint(restored) == (
                        checkpoint.fingerprint(engine)
                    )
                    assert restored.pending() == engine.pending()
                    assert len(restored.ticks) == len(engine.ticks)
                    assert _summary_rows(restored.summary) == (
                        _summary_rows(engine.summary)
                    )
                    for name in engine.tenant_names():
                        assert _summary_rows(restored.tenant_summary(name)) == (
                            _summary_rows(engine.tenant_summary(name))
                        )
                finally:
                    restored.close()

    def test_restored_engine_drains_to_the_uninterrupted_outcome(self, tmp_path):
        traces = _fleet()
        reference = _reference_fingerprint(traces)
        path = tmp_path / "ck.json"
        with _loaded_engine(traces) as engine:
            engine.tick()
            engine.checkpoint(path)
        # the ``with`` closed the engine: that is the crash
        restored = StreamEngine.restore(path)
        try:
            restored.run_until_drained()
            restored.verify()
            assert checkpoint.fingerprint(restored) == reference
        finally:
            restored.close()

    def test_checkpoint_file_is_a_versioned_checksummed_container(self, tmp_path):
        path = tmp_path / "ck.json"
        with _loaded_engine(_fleet()) as engine:
            engine.run_until_drained()
            engine.checkpoint(path)
        container = json.loads(path.read_text())
        assert container["format"] == checkpoint.CHECKPOINT_FORMAT
        assert container["version"] == checkpoint.CHECKPOINT_VERSION
        assert len(container["checksum"]) == 64
        assert container["payload"]["fingerprint"]
        # atomic write: no temp file left behind
        assert os.listdir(tmp_path) == ["ck.json"]

    def test_planner_credits_survive_the_roundtrip(self, tmp_path):
        """DRR deficits and cursor are part of the contract: a restored
        engine must schedule the next tick exactly like the original."""
        traces = _fleet()
        path = tmp_path / "ck.json"
        with _loaded_engine(
            traces, planner="deficit-round-robin", round_budget=40
        ) as engine:
            engine.tick()
            engine.checkpoint(path)
            expected = engine.planner.state_dict()
            restored = StreamEngine.restore(path)
            try:
                assert restored.planner.state_dict() == expected
                restored.run_until_drained()
                restored.verify()
                engine.run_until_drained()
                assert checkpoint.fingerprint(restored) == (
                    checkpoint.fingerprint(engine)
                )
            finally:
                restored.close()


class TestCrashRestoreMatrix:
    """The acceptance matrix: crash at a random tick, restore, drain —
    byte-identical to the uninterrupted run for every backend × worker
    count, re-run per kernel backend via the ``kernel_backend`` fixture."""

    @pytest.mark.parametrize("backend", [SERIAL, THREAD, PROCESS])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_crash_restore_matches_uninterrupted(
        self, backend, workers, kernel_backend, tmp_path
    ):
        traces = _fleet()
        reference = _reference_fingerprint(traces)
        rng = random.Random((workers, backend, kernel_backend).__hash__())
        crash_after = rng.randint(1, 2)
        path = tmp_path / "crash.json"
        executor = ParallelExecutor(workers=workers, backend=backend)
        with _loaded_engine(traces, executor=executor) as engine:
            for _ in range(crash_after):
                engine.tick()
            engine.checkpoint(path)
        executor.close()

        fresh = ParallelExecutor(workers=workers, backend=backend)
        restored = StreamEngine.restore(path, executor=fresh)
        try:
            restored.run_until_drained()
            restored.verify()
            assert checkpoint.fingerprint(restored) == reference
        finally:
            restored.close()
            fresh.close()


class TestCheckpointDuringInFlightTick:
    def test_checkpoint_waits_for_the_tick_boundary(self, tmp_path, monkeypatch):
        """A checkpoint issued while a tick is mid-flight must block on the
        engine lock and snapshot the *post*-tick state."""
        entered = threading.Event()
        original = engine_module._apply_tenant_batch

        def slow_apply(service, batch, **kwargs):
            entered.set()
            # hold the tick (and the engine lock) long enough for the main
            # thread to be blocked inside checkpoint()
            threading.Event().wait(0.2)
            return original(service, batch, **kwargs)

        monkeypatch.setattr(engine_module, "_apply_tenant_batch", slow_apply)
        traces = _fleet()
        path = tmp_path / "inflight.json"
        with _loaded_engine(traces) as engine:
            ticker = threading.Thread(target=engine.tick)
            ticker.start()
            assert entered.wait(5.0)  # the tick holds the lock from here on
            engine.checkpoint(path)
            ticker.join(5.0)
            assert not ticker.is_alive()
            restored = StreamEngine.restore(path)
            try:
                assert len(restored.ticks) == 1  # post-tick, never mid-tick
                assert checkpoint.fingerprint(restored) == (
                    checkpoint.fingerprint(engine)
                )
            finally:
                restored.close()


class TestLifecycleStatesSurvive:
    @staticmethod
    def _quota_for(initial, seed):
        probe = StreamingService(initial, seed=seed)
        peak = probe.cluster.stats.peak_global_memory_words
        in_use = probe.cluster.global_memory_in_use()
        probe.close()
        return max(peak, in_use) + 20

    @staticmethod
    def _breaching_batch(initial, count=30):
        ops = []
        for u in range(initial.num_vertices):
            for v in range(u + 1, initial.num_vertices):
                if not initial.has_edge(u, v):
                    ops.append(("+", u, v))
                    if len(ops) == count:
                        return UpdateBatch.from_ops(ops)
        raise AssertionError("graph too dense")

    def test_quarantine_survives_and_lift_resumes_after_restore(self, tmp_path):
        initial = union_of_random_forests(48, arboricity=1, seed=3)
        quota = self._quota_for(initial, derive_seed(5, 0))
        path = tmp_path / "quarantined.json"
        with StreamEngine(seed=5) as engine:
            engine.add_tenant("hog", initial, memory_quota=quota)
            engine.submit("hog", self._breaching_batch(initial))
            with pytest.raises(QuotaExceededError):
                engine.tick()
            assert engine.tenant_state("hog") is TenantState.QUARANTINED
            engine.checkpoint(path)
            original_breach = str(engine.quarantined()["hog"])
        restored = StreamEngine.restore(path)
        try:
            assert restored.tenant_state("hog") is TenantState.QUARANTINED
            assert str(restored.quarantined()["hog"]) == original_breach
            assert restored.pending("hog") == 1  # the queue survived intact
            restored.lift_quarantine("hog", new_quota=quota + 1000)
            restored.run_until_drained(max_ticks=10)
            restored.verify()
            assert restored.tenant_summary("hog").num_batches == 1
        finally:
            restored.close()

    def test_retired_tenant_survives_with_its_frozen_summary(self, tmp_path):
        traces = _fleet()
        path = tmp_path / "retired.json"
        with _loaded_engine(traces) as engine:
            engine.run_until_drained()
            final = engine.retire_tenant(traces[0].name)
            engine.checkpoint(path)
        restored = StreamEngine.restore(path)
        try:
            name = traces[0].name
            assert restored.tenant_state(name) is TenantState.RETIRED
            assert _summary_rows(restored.tenant_summary(name)) == (
                _summary_rows(final)
            )
            with pytest.raises(GraphError, match="retired"):
                restored.tenant_service(name)
            with pytest.raises(GraphError, match="cannot submit"):
                restored.submit(name, UpdateBatch.from_ops([("+", 0, 1)]))
            # live siblings still drain and verify
            restored.verify()
        finally:
            restored.close()


class TestCorruption:
    """Every malformed snapshot raises a typed CheckpointError, and a failed
    restore leaves nothing behind — no engine, no threads, no segments."""

    @pytest.fixture()
    def snapshot(self, tmp_path):
        path = tmp_path / "good.json"
        with _loaded_engine(_fleet()) as engine:
            engine.tick()
            engine.checkpoint(path)
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            StreamEngine.restore(tmp_path / "absent.json")

    def test_truncated_file(self, snapshot):
        blob = snapshot.read_bytes()
        snapshot.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupted"):
            StreamEngine.restore(snapshot)

    def test_wrong_format_marker(self, snapshot):
        container = json.loads(snapshot.read_text())
        container["format"] = "not-a-checkpoint"
        snapshot.write_text(json.dumps(container))
        with pytest.raises(CheckpointError, match="is not a"):
            StreamEngine.restore(snapshot)

    def test_unsupported_version(self, snapshot):
        container = json.loads(snapshot.read_text())
        container["version"] = checkpoint.CHECKPOINT_VERSION + 1
        snapshot.write_text(json.dumps(container))
        with pytest.raises(CheckpointError, match="version"):
            StreamEngine.restore(snapshot)

    def test_missing_checksum(self, snapshot):
        container = json.loads(snapshot.read_text())
        del container["checksum"]
        snapshot.write_text(json.dumps(container))
        with pytest.raises(CheckpointError, match="missing payload or checksum"):
            StreamEngine.restore(snapshot)

    def test_bit_rot_fails_the_checksum(self, snapshot):
        container = json.loads(snapshot.read_text())
        container["payload"]["seed"] += 1  # payload altered, checksum stale
        snapshot.write_text(json.dumps(container))
        with pytest.raises(CheckpointError, match="failed its checksum"):
            StreamEngine.restore(snapshot)

    @staticmethod
    def _reseal(snapshot, container):
        """Recompute the checksum after a hand-edit (a plausible attacker /
        fat-fingered operator) so only the deeper defenses can catch it."""
        container["checksum"] = checkpoint.fingerprint_digest(container["payload"])
        snapshot.write_text(json.dumps(container))

    def test_resealed_edit_fails_the_fingerprint_check(self, snapshot):
        container = json.loads(snapshot.read_text())
        tenants = container["payload"]["tenants"]
        tenants[0]["service"]["coloring"]["colors"][0] += 1
        self._reseal(snapshot, container)
        with pytest.raises(CheckpointError, match="does not match"):
            StreamEngine.restore(snapshot)

    def test_live_tenant_without_service_state_is_rejected(self, snapshot):
        container = json.loads(snapshot.read_text())
        container["payload"]["tenants"][0]["service"] = None
        self._reseal(snapshot, container)
        with pytest.raises(CheckpointError, match="not retired"):
            StreamEngine.restore(snapshot)

    def test_unknown_planner_policy_is_a_checkpoint_error(self, snapshot):
        container = json.loads(snapshot.read_text())
        container["payload"]["planner"]["policy"] = "bogus-policy"
        self._reseal(snapshot, container)
        with pytest.raises(CheckpointError, match="malformed"):
            StreamEngine.restore(snapshot)

    def test_structurally_broken_payload_is_a_checkpoint_error(self, snapshot):
        container = json.loads(snapshot.read_text())
        service = container["payload"]["tenants"][0]["service"]
        del service["dynamic"]["journal_ops"]
        self._reseal(snapshot, container)
        with pytest.raises(CheckpointError, match="malformed"):
            StreamEngine.restore(snapshot)

    def test_failed_restores_leak_no_threads(self, snapshot):
        container = json.loads(snapshot.read_text())
        container["payload"]["tenants"][0]["service"]["coloring"]["colors"][0] += 1
        self._reseal(snapshot, container)
        before = threading.active_count()
        for _ in range(3):
            with pytest.raises(CheckpointError):
                StreamEngine.restore(snapshot)
        assert threading.active_count() == before
