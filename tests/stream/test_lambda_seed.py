"""Coreness-guess λ̂ seeding (``lambda_seed="coreness"``).

The default IncrementalOrientation seeds λ̂ with the snapshot's exact
degeneracy; the opt-in coreness path runs the guess-ladder peel and seeds
``2·g*`` instead — always ≥ the degeneracy, usually above it by the
ladder's round-up.  These tests pin the seed's value, its plumbing through
the service and the engine, and the regression it was built for: fewer
``"saturated"`` rebuilds on a densifying trace.
"""

from __future__ import annotations

import pytest

from repro.engine import ParallelExecutor
from repro.errors import GraphError
from repro.graph.arboricity import arboricity_upper_bound
from repro.graph.generators import complete_graph, union_of_random_forests
from repro.mpc.cluster import MPCCluster
from repro.mpc.config import MPCConfig
from repro.stream.engine import StreamEngine
from repro.stream.orientation import seed_lambda_from_coreness
from repro.stream.service import StreamingService
from repro.stream.workloads import densifying_core_trace


class TestSeedValue:
    def test_clique_seed_lands_in_the_ladder_band(self):
        # K6: degeneracy 5; ε=0.5 ladder 1,2,3,4,6 → smallest clearing guess
        # is g*=3 (threshold 2g=6 ≥ 5), so the seed is 6 — above the exact
        # degeneracy by the round-up, within the (1+ε) band.
        k6 = complete_graph(6)
        seed = seed_lambda_from_coreness(k6)
        assert seed == 6
        assert arboricity_upper_bound(k6) <= seed <= 1.5 * arboricity_upper_bound(k6) + 2

    def test_seed_never_undershoots_the_degeneracy(self):
        for graph in (
            complete_graph(9),
            union_of_random_forests(100, arboricity=4, seed=1),
        ):
            assert seed_lambda_from_coreness(graph) >= arboricity_upper_bound(graph)

    def test_empty_and_edgeless_graphs_seed_one(self):
        from repro.graph.graph import Graph

        assert seed_lambda_from_coreness(Graph.empty(0)) == 1
        assert seed_lambda_from_coreness(Graph.empty(5)) == 1

    def test_executor_fanout_matches_serial(self):
        graph = union_of_random_forests(200, arboricity=3, seed=7)
        with ParallelExecutor(workers=2) as executor:
            assert seed_lambda_from_coreness(graph, executor=executor) == (
                seed_lambda_from_coreness(graph)
            )

    def test_ladder_rounds_are_charged_to_the_cluster(self):
        graph = complete_graph(8)
        cluster = MPCCluster(MPCConfig.for_graph(graph))
        before = cluster.stats.num_rounds
        seed_lambda_from_coreness(graph, cluster=cluster)
        assert cluster.stats.num_rounds > before


class TestServicePlumbing:
    def test_unknown_lambda_seed_is_rejected(self):
        graph = complete_graph(4)
        with pytest.raises(GraphError, match="lambda_seed"):
            StreamingService(graph, lambda_seed="degeneracy++")

    def test_coreness_seed_widens_the_cap(self):
        k6 = complete_graph(6)
        default = StreamingService(k6)
        seeded = StreamingService(k6, lambda_seed="coreness")
        assert default.orientation.lambda_bound == 5
        assert seeded.orientation.lambda_bound == 6
        assert seeded.orientation.outdegree_cap > default.orientation.outdegree_cap

    def test_engine_forwards_lambda_seed_to_the_tenant(self):
        k6 = complete_graph(6)
        with StreamEngine(seed=0) as engine:
            plain = engine.add_tenant("plain", k6)
            seeded = engine.add_tenant("seeded", k6, lambda_seed="coreness")
            assert plain.orientation.lambda_bound == 5
            assert seeded.orientation.lambda_bound == 6


class TestSaturationRegression:
    def test_fewer_saturation_rebuilds_on_a_densifying_trace(self):
        trace = densifying_core_trace(
            64, core_size=16, num_batches=6, batch_size=120, seed=3
        )
        default = StreamingService(trace.initial, seed=0)
        default.apply_all(trace.batches)
        default.verify()
        seeded = StreamingService(trace.initial, seed=0, lambda_seed="coreness")
        seeded.apply_all(trace.batches)
        seeded.verify()
        default_saturations = default.orientation.rebuild_reasons.get("saturated", 0)
        seeded_saturations = seeded.orientation.rebuild_reasons.get("saturated", 0)
        assert default_saturations > 0, (
            "trace no longer saturates the default cap; regression test is vacuous"
        )
        assert seeded_saturations < default_saturations
